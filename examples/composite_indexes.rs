//! Multi-column indices — the paper's stated future work, implemented:
//! the advisor mines co-occurring predicates from a workload, suggests
//! composite indices, and the engine plans and executes prefix scans
//! over them.
//!
//! Run with: `cargo run --release --example composite_indexes`

use colt_repro::engine::{Executor, IndexSetView, Optimizer, Query, SelPred};
use colt_repro::offline::suggest_composites;
use colt_repro::prelude::*;

fn main() {
    let data = generate(0.01, 7);
    let db = &data.db;
    let inst = &data.instances[0];
    let lineitem = inst.table("lineitem");
    let suppkey = inst.col(db, "lineitem", "l_suppkey");
    let shipdate = inst.col(db, "lineitem", "l_shipdate");

    // An analyst keeps asking: "line items of supplier X shipped in
    // window W" — two predicates that always co-occur.
    let workload: Vec<Query> = (0..60i64)
        .map(|i| {
            Query::single(
                lineitem,
                vec![
                    SelPred::eq(suppkey, i % 40),
                    SelPred::between(shipdate, Value::Date((i * 40 % 2000) as i32), Value::Date((i * 40 % 2000 + 90) as i32)),
                ],
            )
        })
        .collect();

    // 1. Ask the advisor.
    let suggestions = suggest_composites(db, &workload, 3);
    println!("advisor suggestions:");
    for s in &suggestions {
        println!(
            "  {}  serves {} queries, extra benefit {:.0} cost units, ~{} pages",
            s.key, s.occurrences, s.extra_benefit, s.pages
        );
    }
    let top = suggestions.first().expect("co-occurring predicates must yield a suggestion");

    // 2. Compare three configurations: bare, best single-column, composite.
    let bare = PhysicalConfig::new();
    let mut single = PhysicalConfig::new();
    single.create_index(db, suppkey, IndexOrigin::Online);
    let mut composite = PhysicalConfig::new();
    composite.create_composite(db, top.key.clone());

    let opt = Optimizer::new(db);
    let mut totals = [0.0f64; 3];
    for q in &workload {
        for (i, cfg) in [&bare, &single, &composite].iter().enumerate() {
            let plan = opt.optimize(q, IndexSetView::real(cfg));
            totals[i] += Executor::new(db, cfg)
                .execute(q, &plan, Collect::CountOnly)
                .expect("plan matches query")
                .millis();
        }
    }
    println!();
    println!("workload time (60 queries, simulated ms):");
    println!("  no index:              {:>8.1}", totals[0]);
    println!("  single-column (l_suppkey): {:>4.1}", totals[1]);
    println!("  composite {}: {:>8.1}", top.key, totals[2]);
    if (totals[1] - totals[0]).abs() < 1e-6 {
        println!();
        println!("  (note: the single-column index is never chosen here — 2.5%");
        println!("   selectivity is past the random-page break-even — while the");
        println!("   composite resolves both predicates inside the index)");
    }
    assert!(totals[2] < totals[0] && totals[2] < totals[1]);

    // 3. Show the plan the optimizer picks with the composite available.
    let plan = opt.optimize(&workload[0], IndexSetView::real(&composite));
    println!();
    println!("plan with the composite materialized:");
    print!("{}", plan.explain());
    let (res, text) = Executor::new(db, &composite).explain_analyze(&workload[0], &plan).expect("plan matches query");
    println!();
    println!("EXPLAIN ANALYZE:");
    print!("{text}");
    let _ = res;
}
