//! Interactive data analysis — the paper's motivating scenario (§1).
//!
//! An analyst explores the TPC-H data set hypothesis by hypothesis.
//! Queries within one hypothesis share their shape (same tables, same
//! attributes, similar selectivities), but each hypothesis focuses on a
//! different slice of the schema. Off-line tuning can only serve the
//! *average* of this session; COLT re-tunes per hypothesis.
//!
//! Run with: `cargo run --release --example interactive_analysis`

use colt_repro::prelude::*;
use colt_repro::workload::{QueryDistribution, QueryTemplate, SelSpec, TemplateSelection};
use colt_repro::storage::Prng;

fn main() {
    // The four-instance TPC-H data set at a small scale.
    let data = generate(0.01, 7);
    let db = &data.db;
    let inst = &data.instances[0];

    let sel = |t: &str, c: &str, spec: SelSpec| TemplateSelection { col: inst.col(db, t, c), spec };
    let narrow = SelSpec::RangeFrac { lo_frac: 0.001, hi_frac: 0.004 };

    // Three analysis sessions ("hypotheses"), 80 queries each.
    let hypotheses: Vec<(&str, QueryDistribution)> = vec![
        (
            "H1: are recent shipments delayed?",
            QueryDistribution::new().with(
                1.0,
                QueryTemplate::single(
                    inst.table("lineitem"),
                    vec![sel("lineitem", "l_shipdate", narrow.clone())],
                ),
            ),
        ),
        (
            "H2: which customers drive large orders?",
            QueryDistribution::new()
                .with(
                    1.0,
                    QueryTemplate::single(
                        inst.table("orders"),
                        vec![sel("orders", "o_totalprice", narrow.clone())],
                    ),
                )
                .with(
                    1.0,
                    QueryTemplate::single(
                        inst.table("orders"),
                        vec![sel("orders", "o_custkey", SelSpec::Eq)],
                    ),
                ),
        ),
        (
            "H3: is part pricing consistent?",
            QueryDistribution::new().with(
                1.0,
                QueryTemplate::single(
                    inst.table("partsupp"),
                    vec![sel("partsupp", "ps_supplycost", narrow)],
                ),
            ),
        ),
    ];

    let mut physical = PhysicalConfig::new();
    let mut tuner = ColtTuner::new(ColtConfig { storage_budget_pages: 3_000, ..Default::default() });
    let mut eqo = Eqo::new(db);
    let mut rng = Prng::new(99);

    for (title, dist) in &hypotheses {
        println!("== {title}");
        let mut session_ms = 0.0;
        let mut tail_ms = 0.0;
        for i in 0..80 {
            let q = dist.sample(db, &mut rng);
            let plan = eqo.optimize(&q, &physical);
            let result = Executor::new(db, &physical)
                .execute(&q, &plan, Collect::CountOnly)
                .expect("plan matches query")
                .result;
            let step = tuner.on_query(db, &mut physical, &mut eqo, &q, &plan);
            session_ms += result.millis;
            if i >= 60 {
                tail_ms += result.millis;
            }
            for c in &step.created {
                let t = db.table(c.table);
                println!(
                    "   query {i:>2}: materialized index on {}.{}",
                    t.schema.name, t.schema.columns[c.column as usize].name
                );
            }
            for c in &step.dropped {
                let t = db.table(c.table);
                println!(
                    "   query {i:>2}: dropped index on {}.{}",
                    t.schema.name, t.schema.columns[c.column as usize].name
                );
            }
        }
        println!(
            "   session: {session_ms:.0} simulated ms total, last-quarter average {:.1} ms/query",
            tail_ms / 20.0
        );
    }

    println!();
    println!(
        "materialized at the end: {:?}",
        physical
            .online_columns()
            .map(|c| {
                let t = db.table(c.table);
                format!("{}.{}", t.schema.name, t.schema.columns[c.column as usize].name)
            })
            .collect::<Vec<_>>()
    );
    println!(
        "what-if calls across the whole session: {} (budget was {} per epoch)",
        tuner.trace().total_whatif(),
        tuner.config().max_whatif_per_epoch
    );
}
