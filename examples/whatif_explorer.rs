//! What-if exploration: use the extended query optimizer directly to
//! ask "how much would this index help this query?" — the same
//! interface COLT profiles through (paper §3, EQO).
//!
//! Run with: `cargo run --release --example whatif_explorer`

use colt_repro::prelude::*;

fn main() {
    let data = generate(0.01, 7);
    let db = &data.db;
    let inst = &data.instances[0];

    let lineitem = inst.table("lineitem");
    let orders = inst.table("orders");
    let l_shipdate = inst.col(db, "lineitem", "l_shipdate");
    let l_quantity = inst.col(db, "lineitem", "l_quantity");
    let o_custkey = inst.col(db, "orders", "o_custkey");
    let o_orderkey = inst.col(db, "orders", "o_orderkey");
    let l_orderkey = inst.col(db, "lineitem", "l_orderkey");

    // A two-table join: recent line items of one customer's orders.
    let query = Query::join(
        vec![lineitem, orders],
        vec![colt_repro::engine::JoinPred::new(l_orderkey, o_orderkey)],
        vec![
            SelPred::between(l_shipdate, Value::Date(100), Value::Date(400)),
            SelPred::eq(o_custkey, 42i64),
        ],
    );
    println!("query: {query}");
    println!();

    let config = PhysicalConfig::new();
    let mut eqo = Eqo::new(db);

    // The plan with no indexes at all.
    let base = eqo.optimize(&query, &config);
    println!("plan without indexes (estimated cost {:.1}):", base.est_cost());
    println!("{}", base.explain());

    // Ask the what-if interface about every candidate index at once.
    let candidates = vec![l_shipdate, l_quantity, o_custkey];
    let gains = eqo.what_if_optimize(&query, &candidates, &config);
    println!("what-if gains (cost units saved if materialized):");
    for g in &gains {
        let t = db.table(g.col.table);
        println!(
            "  {}.{:<14} {:>10.1}",
            t.schema.name, t.schema.columns[g.col.column as usize].name, g.gain
        );
    }
    println!();

    // Materialize the best one and show the new plan — and the reverse
    // what-if (gain of a *materialized* index).
    let best = gains
        .iter()
        .max_by(|a, b| a.gain.total_cmp(&b.gain))
        .expect("non-empty candidates");
    let mut config = PhysicalConfig::new();
    let build_io = config.create_index(db, best.col, IndexOrigin::Online);
    println!(
        "materialized the best candidate ({} pages written); new plan:",
        build_io.pages_written
    );
    let indexed = eqo.optimize(&query, &config);
    println!("{}", indexed.explain());
    println!(
        "estimated cost {:.1} → {:.1} (gain matches the what-if answer: {:.1})",
        base.est_cost(),
        indexed.est_cost(),
        best.gain
    );

    // Execute both ways and verify the engine agrees with the estimates
    // in *direction* (estimates are statistics-based, execution is real).
    let no_index = PhysicalConfig::new();
    let plan_seq = Optimizer::new(db).optimize(&query, IndexSetView::real(&no_index));
    let seq_out = Executor::new(db, &no_index)
        .execute(&query, &plan_seq, Collect::Rows)
        .expect("plan matches query");
    let idx_out = Executor::new(db, &config)
        .execute(&query, &indexed, Collect::Rows)
        .expect("plan matches query");
    let (seq_res, mut rows_seq) = (seq_out.result, seq_out.rows);
    let (idx_res, mut rows_idx) = (idx_out.result, idx_out.rows);
    rows_seq.sort();
    rows_idx.sort();
    assert_eq!(rows_seq, rows_idx, "same answer either way");
    println!();
    println!(
        "executed: {} rows; {:.1} simulated ms without the index, {:.1} with it",
        seq_res.row_count, seq_res.millis, idx_res.millis
    );
    println!("what-if calls spent: {}", eqo.counters().whatif_calls);
}
