//! Quickstart: build a small database, stream queries through the
//! engine, and let COLT discover and materialize the right index.
//!
//! Run with: `cargo run --release --example quickstart`

use colt_repro::prelude::*;

fn main() {
    // 1. A small database: one table of 50k "order" rows.
    let mut db = Database::new();
    let orders = db.add_table(TableSchema::new(
        "orders",
        vec![
            Column::new("id", ValueType::Int),
            Column::new("customer", ValueType::Int),
            Column::new("status", ValueType::Int),
        ],
    ));
    db.insert_rows(
        orders,
        (0..50_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 2_000), Value::Int(i % 4)])),
    );
    db.analyze_all(); // gather statistics, as a DBA would run ANALYZE

    // 2. An initially empty physical design and a COLT tuner with a
    //    2 000-page on-line budget.
    let mut physical = PhysicalConfig::new();
    let mut tuner = ColtTuner::new(ColtConfig { storage_budget_pages: 2_000, ..Default::default() });
    let mut eqo = Eqo::new(&db);

    // 3. Stream 120 selective point lookups on `customer`. Each query is
    //    optimized, executed, and handed to the tuner.
    let customer = ColRef::new(orders, 1);
    let mut first_epoch_ms = 0.0;
    let mut last_epoch_ms = 0.0;
    for i in 0..120i64 {
        let q = Query::single(orders, vec![SelPred::eq(customer, i * 37 % 2_000)]);
        let plan = eqo.optimize(&q, &physical);
        let result = Executor::new(&db, &physical)
            .execute(&q, &plan, Collect::CountOnly)
            .expect("plan matches query")
            .result;
        let step = tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);

        if i < 10 {
            first_epoch_ms += result.millis;
        }
        if i >= 110 {
            last_epoch_ms += result.millis;
        }
        if !step.created.is_empty() {
            println!("query {i:>3}: COLT materialized {:?}", step.created);
        }
    }

    // 4. COLT noticed the pattern and installed the index on its own.
    assert!(physical.contains(customer), "COLT should have materialized orders.customer");
    println!();
    println!("first 10 queries (no index): {first_epoch_ms:>8.1} simulated ms");
    println!("last 10 queries (indexed):   {last_epoch_ms:>8.1} simulated ms");
    println!("speedup: {:.0}x", first_epoch_ms / last_epoch_ms);
    println!();
    println!("epoch trace:");
    for e in &tuner.trace().epochs {
        println!(
            "  epoch {:>2}: {:>2} what-if calls (budget {:>2}), next budget {:>2}",
            e.epoch, e.whatif_used, e.whatif_limit, e.next_budget
        );
    }
}
