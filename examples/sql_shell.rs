//! A tiny interactive SQL shell over the TPC-H×4 data set, with COLT
//! tuning the physical design behind your back.
//!
//! Run with: `cargo run --release --example sql_shell`
//!
//! Commands:
//!   SELECT ...;          run a query (the supported grammar is in
//!                        `colt_engine::sql`)
//!   \d                   list tables
//!   \indexes             show the indices COLT has materialized
//!   \trace               show the tuner's epoch trace
//!   \q                   quit
//!
//! Piped input works too:
//!   echo "SELECT COUNT(*) FROM lineitem0" | cargo run --example sql_shell

use colt_repro::engine::{parse_sql, Executor};
use colt_repro::prelude::*;
use std::io::{BufRead, Write as _};

fn main() {
    eprintln!("loading TPC-H x4 (scale 0.01)...");
    let data = generate(0.01, 42);
    let db = &data.db;
    let mut physical = PhysicalConfig::new();
    let mut tuner =
        ColtTuner::new(ColtConfig { storage_budget_pages: 4_000, ..Default::default() });
    let mut eqo = Eqo::new(db);
    eprintln!("{} tables, {} tuples. Try: SELECT COUNT(*) FROM lineitem0 WHERE l_shipdate BETWEEN 100 AND 130", db.table_count(), db.total_tuples());

    let stdin = std::io::stdin();
    loop {
        eprint!("colt> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim().trim_end_matches(';').trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\q" => break,
            "\\d" => {
                for t in db.tables() {
                    println!("  {} ({} rows, {} columns)", t.schema.name, t.heap.row_count(), t.schema.arity());
                }
                continue;
            }
            "\\indexes" => {
                let cols: Vec<String> = physical
                    .online_columns()
                    .map(|c| {
                        let t = db.table(c.table);
                        format!("{}.{}", t.schema.name, t.schema.columns[c.column as usize].name)
                    })
                    .collect();
                println!("  materialized by COLT: {cols:?} ({} pages used)", physical.online_pages());
                continue;
            }
            "\\trace" => {
                for e in &tuner.trace().epochs {
                    println!(
                        "  epoch {:>3}: what-if {:>2}/{:<2} next {:>2} built {} dropped {}",
                        e.epoch, e.whatif_used, e.whatif_limit, e.next_budget,
                        e.created.len(), e.dropped.len()
                    );
                }
                continue;
            }
            _ => {}
        }

        let parsed = match parse_sql(db, line) {
            Ok(p) => p,
            Err(e) => {
                println!("  {e}");
                continue;
            }
        };
        let plan = eqo.optimize(&parsed.query, &physical);
        println!("{}", plan.explain().trim_end().lines().map(|l| format!("  | {l}")).collect::<Vec<_>>().join("\n"));
        let exec = Executor::new(db, &physical);
        let (result, rows) = match &parsed.agg {
            Some(spec) => exec.execute_aggregate(&parsed.query, &plan, spec),
            None => exec
                .execute(&parsed.query, &plan, Collect::Rows)
                .map(|o| (o.result, o.rows)),
        }
        .expect("plan matches query");
        for r in rows.iter().take(10) {
            println!("  {}", r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" | "));
        }
        if rows.len() > 10 {
            println!("  ... ({} rows total)", rows.len());
        }
        println!("  [{} rows, {:.2} simulated ms]", result.row_count, result.millis);

        let step = tuner.on_query(db, &mut physical, &mut eqo, &parsed.query, &plan);
        for c in &step.created {
            let t = db.table(c.table);
            println!(
                "  ** COLT materialized an index on {}.{}",
                t.schema.name, t.schema.columns[c.column as usize].name
            );
        }
        for c in &step.dropped {
            let t = db.table(c.table);
            println!(
                "  ** COLT dropped the index on {}.{}",
                t.schema.name, t.schema.columns[c.column as usize].name
            );
        }
    }
}
