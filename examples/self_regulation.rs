//! Self-regulation in action: watch COLT's what-if budget hibernate on
//! a stable workload and wake up the moment the workload shifts —
//! the paper's distinguishing mechanism (§5, re-budgeting).
//!
//! Run with: `cargo run --release --example self_regulation`

use colt_repro::prelude::*;
use colt_repro::workload::{QueryDistribution, QueryTemplate, SelSpec, TemplateSelection};
use colt_repro::storage::Prng;

fn main() {
    let data = generate(0.01, 7);
    let db = &data.db;
    let inst = &data.instances[0];
    let other = &data.instances[1];

    let dist_for = |i: &colt_repro::workload::Instance, table: &str, column: &str| {
        QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(
                i.table(table),
                vec![TemplateSelection {
                    col: i.col(db, table, column),
                    spec: SelSpec::RangeFrac { lo_frac: 0.001, hi_frac: 0.004 },
                }],
            ),
        )
    };
    // Phase A: 200 queries on instance 0; phase B: 200 on instance 1.
    let phase_a = dist_for(inst, "lineitem", "l_shipdate");
    let phase_b = dist_for(other, "orders", "o_totalprice");

    let mut physical = PhysicalConfig::new();
    let mut tuner = ColtTuner::new(ColtConfig { storage_budget_pages: 5_000, ..Default::default() });
    let mut eqo = Eqo::new(db);
    let mut rng = Prng::new(3);

    for i in 0..400usize {
        let dist = if i < 200 { &phase_a } else { &phase_b };
        let q = dist.sample(db, &mut rng);
        let plan = eqo.optimize(&q, &physical);
        let _ =
            Executor::new(db, &physical).execute(&q, &plan, Collect::CountOnly).expect("plan matches query");
        tuner.on_query(db, &mut physical, &mut eqo, &q, &plan);
    }

    println!("what-if budget per epoch (the workload shifts at epoch 20):");
    println!("  epoch  used/limit  next   r      activity");
    for e in &tuner.trace().epochs {
        let marker = if e.epoch == 19 { "  <-- shift arrives next epoch" } else { "" };
        let activity = if !e.created.is_empty() {
            format!("built {:?}", e.created.len())
        } else if e.whatif_used == 0 && e.whatif_limit == 0 {
            "hibernating".to_string()
        } else {
            String::new()
        };
        println!(
            "  {:>5}  {:>4}/{:<5} {:>4}  {:>5.2}  {activity}{marker}",
            e.epoch, e.whatif_used, e.whatif_limit, e.next_budget, e.ratio
        );
    }

    let spent: Vec<u64> = tuner.trace().whatif_per_epoch();
    let stable_spend: u64 = spent[10..19].iter().sum();
    let shift_spend: u64 = spent[20..29].iter().sum();
    println!();
    println!("what-if calls in the 9 epochs before the shift: {stable_spend}");
    println!("what-if calls in the 9 epochs after the shift:  {shift_spend}");
    assert!(
        shift_spend > stable_spend,
        "profiling must intensify at the shift ({shift_spend} vs {stable_spend})"
    );
}
