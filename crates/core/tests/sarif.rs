//! The analyzer's SARIF export must round-trip through the same strict
//! JSON parser CI uses for every other artifact (`colt_core::json`) —
//! a hand-rolled serializer that emits un-parseable output would fail
//! silently only at upload time.

use colt_core::json::{parse, Json};

#[test]
fn sarif_export_parses_with_the_strict_parser() {
    // A snippet that trips a real lint (wall-clock in a non-allowlisted
    // crate), whose message text exercises the SARIF string escaper.
    let src = "pub fn f() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n";
    let violations = colt_analyze::analyze_source("crates/core/src/fixture.rs", src);
    assert!(!violations.is_empty(), "fixture snippet must trip at least one lint");

    let report = colt_analyze::Report {
        files_scanned: 1,
        violations,
        ..colt_analyze::Report::default()
    };
    let doc = parse(&report.to_sarif()).expect("SARIF must parse with colt_core::json");

    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let run = doc.get("runs").and_then(|r| r.idx(0)).expect("one run");
    let driver = run.get("tool").and_then(|t| t.get("driver")).expect("tool.driver");
    assert_eq!(driver.get("name").and_then(Json::as_str), Some("colt-analyze"));

    // Every lint in the engine is declared as a SARIF rule.
    let rules = driver.get("rules").expect("driver.rules");
    let mut n_rules = 0usize;
    while rules.idx(n_rules).is_some() {
        n_rules += 1;
    }
    assert!(n_rules >= 15, "expected all lints declared as rules, got {n_rules}");

    // Each violation becomes a result carrying its file and line.
    let result = run.get("results").and_then(|r| r.idx(0)).expect("first result");
    assert_eq!(result.get("level").and_then(Json::as_str), Some("error"));
    assert!(result.get("ruleId").and_then(Json::as_str).is_some());
    let loc = result
        .get("locations")
        .and_then(|l| l.idx(0))
        .and_then(|l| l.get("physicalLocation"))
        .expect("physicalLocation");
    assert_eq!(
        loc.get("artifactLocation").and_then(|a| a.get("uri")).and_then(Json::as_str),
        Some("crates/core/src/fixture.rs")
    );
    assert!(loc.get("region").and_then(|r| r.get("startLine")).and_then(Json::as_u64).is_some());
}

#[test]
fn clean_report_sarif_still_parses() {
    // The common CI case: zero violations must still produce a valid
    // document (empty results array), not a degenerate one.
    let report = colt_analyze::Report { files_scanned: 1, ..colt_analyze::Report::default() };
    let doc = parse(&report.to_sarif()).expect("empty SARIF must parse");
    let run = doc.get("runs").and_then(|r| r.idx(0)).expect("one run");
    assert!(run.get("results").and_then(|r| r.idx(0)).is_none(), "no results expected");
}
