//! Randomized property tests for COLT's decision machinery: the
//! knapsack solver against brute force, hot-set selection axioms,
//! gain-statistics algebra, the forecaster, and full-tuner safety
//! invariants. Cases come from the in-repo seeded PRNG
//! (`colt_core::prng::Prng`), so every run checks the same inputs.

use colt_core::knapsack::{self, Item};
use colt_core::prng::Prng;
use colt_core::{forecast, hotset, GainStats};

const CASES: u64 = 64;

fn brute_force_value(items: &[Item], capacity: u64) -> f64 {
    let n = items.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut size = 0u64;
        let mut value = 0.0;
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                size += it.size;
                value += it.value;
            }
        }
        if size <= capacity && value > best {
            best = value;
        }
    }
    best
}

/// The knapsack DP is exact on arbitrary small instances.
#[test]
fn knapsack_exact() {
    let mut rng = Prng::new(0xC02E_0001);
    for case in 0..CASES {
        let items: Vec<Item> = (0..rng.below(12))
            .map(|_| Item { size: 1 + rng.below_u64(59), value: rng.f64_range(0.0, 100.0) })
            .collect();
        let capacity = rng.below_u64(150);
        let chosen = knapsack::solve(&items, capacity);
        assert!(knapsack::total_size(&items, &chosen) <= capacity, "case {case}");
        let got = knapsack::total_value(&items, &chosen);
        let want = brute_force_value(&items, capacity);
        assert!((got - want).abs() < 1e-9, "case {case}: got {got}, want {want}");
        // No duplicates, indices in range.
        let mut sorted = chosen.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), chosen.len(), "case {case}");
        assert!(chosen.iter().all(|&i| i < items.len()), "case {case}");
    }
}

/// Large-capacity instances with few items are solved *exactly* (the
/// solver falls back to subset enumeration instead of the
/// precision-losing rescaled DP).
#[test]
fn knapsack_large_capacity_exact_for_small_pools() {
    let mut rng = Prng::new(0xC02E_0002);
    for case in 0..CASES {
        let items: Vec<Item> = (0..1 + rng.below(11))
            .map(|_| Item {
                size: 1_000 + rng.below_u64(199_000),
                value: rng.f64_range(1.0, 100.0),
            })
            .collect();
        let cap_frac = rng.f64_range(0.2, 0.9);
        let total: u64 = items.iter().map(|i| i.size).sum();
        let capacity = (total as f64 * cap_frac) as u64;
        let chosen = knapsack::solve(&items, capacity);
        assert!(knapsack::total_size(&items, &chosen) <= capacity, "case {case}");
        let got = knapsack::total_value(&items, &chosen);
        let want = brute_force_value(&items, capacity);
        assert!((got - want).abs() < 1e-9, "case {case}: got {got}, want {want}");
    }
}

/// Hot-set selection: returns a subset of the positive candidates,
/// respects the cap, and is exactly the top-k by benefit (the fill rule
/// makes the top cluster a prefix of the ranking).
#[test]
fn hotset_is_topk() {
    use colt_catalog::{ColRef, TableId};
    let mut rng = Prng::new(0xC02E_0003);
    for case in 0..CASES {
        let benefits: Vec<f64> =
            (0..rng.below(40)).map(|_| rng.f64_range(-10.0, 100.0)).collect();
        let max_hot = rng.below(15);
        let cands: Vec<(ColRef, f64)> = benefits
            .iter()
            .enumerate()
            .map(|(i, &b)| (ColRef::new(TableId(0), i as u32), b))
            .collect();
        let hot = hotset::select_hot(&cands, max_hot);
        let positive: Vec<_> = cands.iter().filter(|(_, b)| *b > 0.0).collect();
        assert!(hot.len() <= max_hot.min(positive.len()), "case {case}");
        // Every hot member has benefit >= every positive non-member.
        let min_hot = hot
            .iter()
            .map(|c| cands.iter().find(|(cc, _)| cc == c).unwrap().1)
            .fold(f64::INFINITY, f64::min);
        for (c, b) in &positive {
            if !hot.contains(c) && !hot.is_empty() {
                assert!(*b <= min_hot + 1e-9, "case {case}: excluded {b} > min hot {min_hot}");
            }
        }
        // Cap binds exactly when there are enough positives.
        if positive.len() >= max_hot {
            assert_eq!(hot.len(), max_hot, "case {case}");
        }
    }
}

/// Gain statistics match naive mean/variance and keep the interval
/// ordered around the mean.
#[test]
fn gain_stats_algebra() {
    let mut rng = Prng::new(0xC02E_0004);
    for case in 0..CASES {
        let samples: Vec<f64> =
            (0..2 + rng.below(48)).map(|_| rng.f64_range(0.0, 1000.0)).collect();
        let mut s = GainStats::new(0);
        for &x in &samples {
            s.add(x, 0);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0), "case {case}");
        assert!((s.variance() - var).abs() < 1e-6 * var.abs().max(1.0), "case {case}");
        let z = 1.645;
        assert!(s.low(z) <= s.mean() + 1e-9, "case {case}");
        assert!(s.high(z) >= s.mean() - 1e-9, "case {case}");
        assert!(s.low(z) >= 0.0, "case {case}");
    }
}

/// The forecast level is bounded by the series extremes (zero padded)
/// and scales linearly.
#[test]
fn forecast_bounds() {
    let mut rng = Prng::new(0xC02E_0005);
    for case in 0..CASES {
        let series: Vec<f64> = (0..rng.below(12)).map(|_| rng.f64_range(0.0, 100.0)).collect();
        let decay = rng.f64_range(0.5, 1.0);
        let horizon = 1 + rng.below(23);
        let lvl = forecast::level(&series, decay, horizon);
        let max = series.iter().copied().fold(0.0f64, f64::max);
        assert!((0.0..=max + 1e-9).contains(&lvl), "case {case}");
        let total = forecast::predicted_total(&series, decay, horizon);
        assert!((total - lvl * horizon as f64).abs() < 1e-9, "case {case}");
        // Scaling the series scales the level.
        let scaled: Vec<f64> = series.iter().map(|x| x * 3.0).collect();
        let lvl3 = forecast::level(&scaled, decay, horizon);
        assert!((lvl3 - 3.0 * lvl).abs() < 1e-6, "case {case}");
    }
}

mod tuner_safety {
    use colt_catalog::{ColRef, Column, Database, PhysicalConfig, TableId, TableSchema};
    use colt_core::prng::Prng;
    use colt_core::{ColtConfig, ColtTuner};
    use colt_engine::{Eqo, Query, SelPred};
    use colt_storage::{row_from, Value, ValueType};

    fn build_db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let a = db.add_table(TableSchema::new(
            "a",
            vec![
                Column::new("x", ValueType::Int),
                Column::new("y", ValueType::Int),
                Column::new("z", ValueType::Int),
            ],
        ));
        let b = db.add_table(TableSchema::new(
            "b",
            vec![Column::new("u", ValueType::Int), Column::new("v", ValueType::Int)],
        ));
        db.insert_rows(
            a,
            (0..8_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 40), Value::Int(i % 3)])),
        );
        db.insert_rows(b, (0..500i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 7)])));
        db.analyze_all();
        (db, a, b)
    }

    /// Safety under arbitrary query streams: the tuner never panics,
    /// the what-if budget is respected every epoch, and the on-line
    /// index footprint never exceeds the storage budget by more than
    /// the estimate/actual gap of a single index.
    #[test]
    fn tuner_invariants_hold_on_random_streams() {
        let mut rng = Prng::new(0xC02E_0006);
        for case in 0..12u64 {
            let choices: Vec<(u8, i64)> = (0..50 + rng.below(150))
                .map(|_| (rng.below(6) as u8, rng.int_range(0, 7999)))
                .collect();
            let budget = 50 + rng.below_u64(1_950);
            let (db, a, b) = build_db();
            let cfg = ColtConfig { storage_budget_pages: budget, ..Default::default() };
            let max_wi = cfg.max_whatif_per_epoch;
            let mut physical = PhysicalConfig::new();
            let mut tuner = ColtTuner::new(cfg);
            let mut eqo = Eqo::new(&db);

            for (kind, x) in choices {
                let q = match kind {
                    0 => Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), x)]),
                    1 => Query::single(a, vec![SelPred::eq(ColRef::new(a, 1), x % 40)]),
                    2 => Query::single(a, vec![SelPred::between(ColRef::new(a, 0), x, x + 50)]),
                    3 => Query::single(b, vec![SelPred::eq(ColRef::new(b, 0), x % 500)]),
                    4 => Query::single(a, vec![]),
                    _ => Query::join(
                        vec![a, b],
                        vec![colt_engine::JoinPred::new(ColRef::new(a, 1), ColRef::new(b, 1))],
                        vec![SelPred::eq(ColRef::new(b, 0), x % 500)],
                    ),
                };
                let plan = eqo.optimize(&q, &physical);
                tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);
            }
            for e in &tuner.trace().epochs {
                assert!(e.whatif_used <= e.whatif_limit, "case {case}");
                assert!(e.whatif_limit <= max_wi, "case {case}");
                assert!(e.next_budget <= max_wi, "case {case}");
                assert!(e.ratio >= 1.0 - 1e-9, "case {case}");
            }
            // Footprint: estimated sizes guide the knapsack; the real
            // trees may differ slightly, so allow 30% slack.
            assert!(
                physical.online_pages() as f64 <= budget as f64 * 1.3 + 8.0,
                "case {case}: footprint {} vs budget {budget}",
                physical.online_pages()
            );
        }
    }
}
