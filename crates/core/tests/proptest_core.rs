//! Property tests for COLT's decision machinery: the knapsack solver
//! against brute force, hot-set selection axioms, gain-statistics
//! algebra, the forecaster, and full-tuner safety invariants.

use colt_core::knapsack::{self, Item};
use colt_core::{forecast, hotset, GainStats};
use proptest::prelude::*;

fn brute_force_value(items: &[Item], capacity: u64) -> f64 {
    let n = items.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut size = 0u64;
        let mut value = 0.0;
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                size += it.size;
                value += it.value;
            }
        }
        if size <= capacity && value > best {
            best = value;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The knapsack DP is exact on arbitrary small instances.
    #[test]
    fn knapsack_exact(
        items in prop::collection::vec((1u64..60, 0.0f64..100.0), 0..12),
        capacity in 0u64..150,
    ) {
        let items: Vec<Item> =
            items.into_iter().map(|(size, value)| Item { size, value }).collect();
        let chosen = knapsack::solve(&items, capacity);
        prop_assert!(knapsack::total_size(&items, &chosen) <= capacity);
        let got = knapsack::total_value(&items, &chosen);
        let want = brute_force_value(&items, capacity);
        prop_assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        // No duplicates, indices in range.
        let mut sorted = chosen.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), chosen.len());
        prop_assert!(chosen.iter().all(|&i| i < items.len()));
    }

    /// Large-capacity instances with few items are solved *exactly*
    /// (the solver falls back to subset enumeration instead of the
    /// precision-losing rescaled DP).
    #[test]
    fn knapsack_large_capacity_exact_for_small_pools(
        items in prop::collection::vec((1_000u64..200_000, 1.0f64..100.0), 1..12),
        cap_frac in 0.2f64..0.9,
    ) {
        let items: Vec<Item> =
            items.into_iter().map(|(size, value)| Item { size, value }).collect();
        let total: u64 = items.iter().map(|i| i.size).sum();
        let capacity = (total as f64 * cap_frac) as u64;
        let chosen = knapsack::solve(&items, capacity);
        prop_assert!(knapsack::total_size(&items, &chosen) <= capacity);
        let got = knapsack::total_value(&items, &chosen);
        let want = brute_force_value(&items, capacity);
        prop_assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    }

    /// Hot-set selection: returns a subset of the positive candidates,
    /// respects the cap, and is exactly the top-k by benefit (the fill
    /// rule makes the top cluster a prefix of the ranking).
    #[test]
    fn hotset_is_topk(
        benefits in prop::collection::vec(-10.0f64..100.0, 0..40),
        max_hot in 0usize..15,
    ) {
        use colt_catalog::{ColRef, TableId};
        let cands: Vec<(ColRef, f64)> = benefits
            .iter()
            .enumerate()
            .map(|(i, &b)| (ColRef::new(TableId(0), i as u32), b))
            .collect();
        let hot = hotset::select_hot(&cands, max_hot);
        let positive: Vec<_> = cands.iter().filter(|(_, b)| *b > 0.0).collect();
        prop_assert!(hot.len() <= max_hot.min(positive.len()));
        // Every hot member has benefit >= every positive non-member.
        let min_hot = hot
            .iter()
            .map(|c| cands.iter().find(|(cc, _)| cc == c).unwrap().1)
            .fold(f64::INFINITY, f64::min);
        for (c, b) in &positive {
            if !hot.contains(c) && !hot.is_empty() {
                prop_assert!(*b <= min_hot + 1e-9, "excluded {b} > min hot {min_hot}");
            }
        }
        // Cap binds exactly when there are enough positives.
        if positive.len() >= max_hot {
            prop_assert_eq!(hot.len(), max_hot);
        }
    }

    /// Gain statistics match naive mean/variance and keep the interval
    /// ordered around the mean.
    #[test]
    fn gain_stats_algebra(samples in prop::collection::vec(0.0f64..1000.0, 2..50)) {
        let mut s = GainStats::new(0);
        for &x in &samples {
            s.add(x, 0);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-6 * var.abs().max(1.0));
        let z = 1.645;
        prop_assert!(s.low(z) <= s.mean() + 1e-9);
        prop_assert!(s.high(z) >= s.mean() - 1e-9);
        prop_assert!(s.low(z) >= 0.0);
    }

    /// The forecast level is bounded by the series extremes (zero padded)
    /// and scales linearly.
    #[test]
    fn forecast_bounds(
        series in prop::collection::vec(0.0f64..100.0, 0..12),
        decay in 0.5f64..1.0,
        horizon in 1usize..24,
    ) {
        let lvl = forecast::level(&series, decay, horizon);
        let max = series.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((0.0..=max + 1e-9).contains(&lvl));
        let total = forecast::predicted_total(&series, decay, horizon);
        prop_assert!((total - lvl * horizon as f64).abs() < 1e-9);
        // Scaling the series scales the level.
        let scaled: Vec<f64> = series.iter().map(|x| x * 3.0).collect();
        let lvl3 = forecast::level(&scaled, decay, horizon);
        prop_assert!((lvl3 - 3.0 * lvl).abs() < 1e-6);
    }
}

mod tuner_safety {
    use colt_catalog::{ColRef, Column, Database, PhysicalConfig, TableId, TableSchema};
    use colt_core::{ColtConfig, ColtTuner};
    use colt_engine::{Eqo, Query, SelPred};
    use colt_storage::{row_from, Value, ValueType};
    use proptest::prelude::*;

    fn build_db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let a = db.add_table(TableSchema::new(
            "a",
            vec![
                Column::new("x", ValueType::Int),
                Column::new("y", ValueType::Int),
                Column::new("z", ValueType::Int),
            ],
        ));
        let b = db.add_table(TableSchema::new(
            "b",
            vec![Column::new("u", ValueType::Int), Column::new("v", ValueType::Int)],
        ));
        db.insert_rows(
            a,
            (0..8_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 40), Value::Int(i % 3)])),
        );
        db.insert_rows(b, (0..500i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 7)])));
        db.analyze_all();
        (db, a, b)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Safety under arbitrary query streams: the tuner never panics,
        /// the what-if budget is respected every epoch, and the on-line
        /// index footprint never exceeds the storage budget by more than
        /// the estimate/actual gap of a single index.
        #[test]
        fn tuner_invariants_hold_on_random_streams(
            choices in prop::collection::vec((0u8..6, 0i64..8000), 50..200),
            budget in 50u64..2_000,
        ) {
            let (db, a, b) = build_db();
            let cfg = ColtConfig { storage_budget_pages: budget, ..Default::default() };
            let max_wi = cfg.max_whatif_per_epoch;
            let mut physical = PhysicalConfig::new();
            let mut tuner = ColtTuner::new(cfg);
            let mut eqo = Eqo::new(&db);

            for (kind, x) in choices {
                let q = match kind {
                    0 => Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), x)]),
                    1 => Query::single(a, vec![SelPred::eq(ColRef::new(a, 1), x % 40)]),
                    2 => Query::single(a, vec![SelPred::between(ColRef::new(a, 0), x, x + 50)]),
                    3 => Query::single(b, vec![SelPred::eq(ColRef::new(b, 0), x % 500)]),
                    4 => Query::single(a, vec![]),
                    _ => Query::join(
                        vec![a, b],
                        vec![colt_engine::JoinPred::new(ColRef::new(a, 1), ColRef::new(b, 1))],
                        vec![SelPred::eq(ColRef::new(b, 0), x % 500)],
                    ),
                };
                let plan = eqo.optimize(&q, &physical);
                tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);
            }
            for e in &tuner.trace().epochs {
                prop_assert!(e.whatif_used <= e.whatif_limit);
                prop_assert!(e.whatif_limit <= max_wi);
                prop_assert!(e.next_budget <= max_wi);
                prop_assert!(e.ratio >= 1.0 - 1e-9);
            }
            // Footprint: estimated sizes guide the knapsack; the real
            // trees may differ slightly, so allow 30% slack.
            prop_assert!(
                physical.online_pages() as f64 <= budget as f64 * 1.3 + 8.0,
                "footprint {} vs budget {budget}",
                physical.online_pages()
            );
        }
    }
}
