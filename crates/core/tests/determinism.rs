//! Insertion-order-independence regression tests.
//!
//! These pin the fixes for the determinism hazards colt-analyze's
//! `hash-iteration` lint surfaced: cluster bookkeeping, group-by
//! aggregation, and knapsack selection must produce the same answer no
//! matter what order their inputs arrive in. Before the `BTreeMap`
//! conversions, each of these could leak `HashMap` iteration order (a
//! per-process random seed) into results.

use std::collections::BTreeMap;

use colt_catalog::{ColRef, Column, Database, PhysicalConfig, TableId, TableSchema};
use colt_core::cluster::{ClusterKey, ClusterSet};
use colt_core::knapsack::{self, Item};
use colt_engine::{AggExpr, AggSpec, Executor, IndexSetView, Optimizer, Query, SelPred};
use colt_storage::{row_from, Value, ValueType};

fn build_db(rows: &[(i64, i64, f64)]) -> (Database, TableId) {
    let mut db = Database::new();
    let t = db.add_table(TableSchema::new(
        "sales",
        vec![
            Column::new("id", ValueType::Int),
            Column::new("region", ValueType::Int),
            Column::new("amount", ValueType::Float),
        ],
    ));
    db.insert_rows(
        t,
        rows.iter().map(|&(id, region, amount)| {
            row_from(vec![Value::Int(id), Value::Int(region), Value::Float(amount)])
        }),
    );
    db.analyze_all();
    (db, t)
}

/// The queries a shifting workload might produce, in some order.
fn query_mix(t: TableId) -> Vec<Query> {
    let id = ColRef::new(t, 0);
    let region = ColRef::new(t, 1);
    vec![
        Query::single(t, vec![SelPred::eq(id, 5i64)]),
        Query::single(t, vec![SelPred::eq(region, 2i64)]),
        Query::single(t, vec![SelPred::eq(id, 99i64)]),
        Query::single(t, vec![SelPred::between(id, 0i64, 9i64)]),
        Query::single(t, vec![SelPred::eq(region, 0i64)]),
        Query::single(t, vec![SelPred::eq(id, 5i64), SelPred::eq(region, 1i64)]),
        Query::single(t, vec![]),
    ]
}

/// Per-key window counts of a cluster set — the order-free summary of
/// what clustering learned.
fn counts_by_key(cs: &ClusterSet) -> BTreeMap<ClusterKey, u64> {
    cs.live().map(|(_, c)| (c.key.clone(), c.window_count())).collect()
}

#[test]
fn cluster_counts_independent_of_insertion_order() {
    let rows: Vec<(i64, i64, f64)> =
        (0..1_000).map(|i| (i, i % 4, (i % 10) as f64)).collect();
    let (db, t) = build_db(&rows);
    let queries = query_mix(t);

    let mut forward = ClusterSet::new(12, 0.02);
    for q in &queries {
        forward.assign(&db, q);
    }
    let mut reversed = ClusterSet::new(12, 0.02);
    for q in queries.iter().rev() {
        reversed.assign(&db, q);
    }

    assert_eq!(forward.len(), reversed.len());
    assert_eq!(counts_by_key(&forward), counts_by_key(&reversed));
}

#[test]
fn aggregate_rows_independent_of_insertion_order() {
    let forward: Vec<(i64, i64, f64)> =
        (0..500).map(|i| (i, i % 7, (i % 13) as f64)).collect();
    let mut shuffled = forward.clone();
    // Deterministic shuffle: LCG-driven Fisher–Yates.
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for i in (1..shuffled.len()).rev() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        shuffled.swap(i, ((x >> 33) as usize) % (i + 1));
    }
    assert_ne!(forward, shuffled, "shuffle must actually permute");

    let run = |rows: &[(i64, i64, f64)]| -> Vec<Vec<Value>> {
        let (db, t) = build_db(rows);
        let q = Query::single(t, vec![]);
        let spec = AggSpec {
            group_by: vec![ColRef::new(t, 1)],
            exprs: vec![
                AggExpr::count_star(),
                AggExpr::over(colt_engine::AggFunc::Sum, ColRef::new(t, 2)),
            ],
        };
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        Executor::new(&db, &cfg).execute_aggregate(&q, &plan, &spec).unwrap().1
    };

    let a = run(&forward);
    let b = run(&shuffled);
    assert_eq!(a, b, "group-by output must not depend on heap insertion order");
    assert_eq!(a.len(), 7);
}

#[test]
fn knapsack_selection_stable_under_input_permutation() {
    // Distinct values so the optimum is unique and permutation cannot
    // legitimately change the chosen set.
    let items: Vec<Item> = (0..12)
        .map(|i| Item { size: 7 + (i * 13) % 40, value: 10.0 + i as f64 * 3.5 })
        .collect();
    let capacity = 120u64;

    let baseline: Vec<(u64, u64)> = {
        let chosen = knapsack::solve(&items, capacity);
        let mut picked: Vec<(u64, u64)> =
            chosen.iter().map(|&i| (items[i].size, items[i].value as u64)).collect();
        picked.sort_unstable();
        picked
    };

    // Try several rotations and a reversal of the item list.
    let mut variants: Vec<Vec<Item>> = (1..items.len())
        .map(|r| {
            let mut v = items.clone();
            v.rotate_left(r);
            v
        })
        .collect();
    variants.push(items.iter().rev().copied().collect());

    for v in variants {
        let chosen = knapsack::solve(&v, capacity);
        let mut picked: Vec<(u64, u64)> =
            chosen.iter().map(|&i| (v[i].size, v[i].value as u64)).collect();
        picked.sort_unstable();
        assert_eq!(picked, baseline, "selection changed under input permutation");
    }
}
