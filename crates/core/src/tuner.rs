//! The COLT tuner: orchestration of profiling epochs, reorganization,
//! and scheduling (the outer loop of the architecture in Figure 1).
//!
//! Drive it by calling [`ColtTuner::on_query`] once per executed query,
//! passing the query's optimized plan. The tuner profiles the query; at
//! every `w`-th query it closes the epoch: the Self-Organizer picks the
//! new materialized and hot sets and the next what-if budget, and the
//! Scheduler applies the physical changes. The returned [`TunerStep`]
//! carries the build cost so the driver can charge it to the simulated
//! clock, as the paper's measurements do.

use crate::composite_ext::CompositeTuner;
use crate::config::ColtConfig;
use crate::organizer::SelfOrganizer;
use crate::profiler::Profiler;
use crate::scheduler::{MaterializationStrategy, Scheduler};
use crate::trace::{EpochRecord, Trace};
use colt_catalog::{ColRef, Database, PhysicalConfig};
use colt_engine::{Eqo, Plan, Query};
use colt_storage::IoStats;
use std::collections::BTreeSet;

/// What happened while the tuner processed one query.
#[derive(Debug, Clone, Default)]
pub struct TunerStep {
    /// Physical cost of index builds triggered by this query (zero for
    /// most queries; non-zero at epoch boundaries that materialize).
    pub build_io: IoStats,
    /// Whether an epoch boundary (reorganization) happened.
    pub epoch_closed: bool,
    /// Indices created at this step.
    pub created: Vec<ColRef>,
    /// Indices dropped at this step.
    pub dropped: Vec<ColRef>,
}

/// The continuous on-line tuner.
///
/// # Examples
///
/// ```
/// use colt_catalog::{ColRef, Column, Database, PhysicalConfig, TableSchema};
/// use colt_core::{ColtConfig, ColtTuner};
/// use colt_engine::{Collect, Eqo, Executor, Query, SelPred};
/// use colt_storage::{row_from, Value, ValueType};
///
/// let mut db = Database::new();
/// let t = db.add_table(TableSchema::new("t", vec![Column::new("k", ValueType::Int)]));
/// db.insert_rows(t, (0..5_000i64).map(|i| row_from(vec![Value::Int(i)])));
/// db.analyze_all();
///
/// let mut physical = PhysicalConfig::new();
/// let mut tuner = ColtTuner::new(ColtConfig {
///     storage_budget_pages: 10_000,
///     ..Default::default()
/// });
/// let mut eqo = Eqo::new(&db);
/// let col = ColRef::new(t, 0);
/// for i in 0..60i64 {
///     let q = Query::single(t, vec![SelPred::eq(col, i * 83 % 5_000)]);
///     let plan = eqo.optimize(&q, &physical);
///     let _ = Executor::new(&db, &physical).execute(&q, &plan, Collect::CountOnly);
///     tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);
/// }
/// // The repeated selective lookups earned the column an index.
/// assert!(physical.contains(col));
/// ```
#[derive(Debug)]
pub struct ColtTuner {
    config: ColtConfig,
    profiler: Profiler,
    organizer: SelfOrganizer,
    scheduler: Scheduler,
    composites: CompositeTuner,
    hot: BTreeSet<ColRef>,
    queries_in_epoch: usize,
    epoch: u64,
    trace: Trace,
}

impl ColtTuner {
    /// Create a tuner with the given configuration (validated) and the
    /// paper's immediate materialization strategy.
    pub fn new(config: ColtConfig) -> Self {
        Self::with_strategy(config, MaterializationStrategy::Immediate)
    }

    /// Create a tuner with an explicit materialization strategy.
    pub fn with_strategy(config: ColtConfig, strategy: MaterializationStrategy) -> Self {
        // colt: allow(panic-policy) — constructor contract: an invalid config is a startup programming error
        config.validate().expect("invalid COLT configuration");
        ColtTuner {
            profiler: Profiler::new(&config),
            organizer: SelfOrganizer::new(&config),
            scheduler: Scheduler::new(strategy),
            composites: CompositeTuner::new(&config),
            hot: BTreeSet::new(),
            queries_in_epoch: 0,
            epoch: 0,
            config,
            trace: Trace::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ColtConfig {
        &self.config
    }

    /// The current hot set `H`.
    pub fn hot_set(&self) -> &BTreeSet<ColRef> {
        &self.hot
    }

    /// The run trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The number of epochs closed so far (the current epoch's index).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The profiler (read access for inspection and experiments).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Process one executed query: profile it and, at epoch boundaries,
    /// reorganize the physical configuration.
    pub fn on_query(
        &mut self,
        db: &Database,
        physical: &mut PhysicalConfig,
        eqo: &mut Eqo<'_>,
        query: &Query,
        plan: &Plan,
    ) -> TunerStep {
        self.profiler.profile_query(db, physical, eqo, query, plan, &self.hot);
        self.composites.observe(query);

        // Piggybacking: a pending build can ride on this query's scans.
        let piggy = self.scheduler.on_seq_scan(db, physical, &plan.seq_scanned_tables());

        self.queries_in_epoch += 1;
        let mut step = if self.queries_in_epoch < self.config.epoch_length {
            TunerStep::default()
        } else {
            self.queries_in_epoch = 0;
            self.close_epoch(db, physical, eqo)
        };
        if !piggy.built.is_empty() {
            for (col, io) in &piggy.built {
                colt_obs::emit(
                    colt_obs::Event::new("index_create")
                        .field("epoch", self.epoch)
                        .field("index", col.to_string())
                        .field("via", "piggyback"),
                );
                colt_obs::decision(
                    colt_obs::DecisionRecord::new("index_create")
                        .field("index", col.to_string())
                        .field("via", "piggyback")
                        .field("build_millis", db.cost.millis_of(io)),
                );
            }
            step.build_io.accumulate(&piggy.total_build_io());
            step.created.extend(piggy.built.iter().map(|(c, _)| *c));
        }
        step
    }

    /// Signal idle time to the scheduler (only meaningful under
    /// [`MaterializationStrategy::IdleTime`]). Returns the build cost of
    /// any deferred materializations executed now.
    pub fn on_idle(&mut self, db: &Database, physical: &mut PhysicalConfig) -> IoStats {
        self.scheduler.on_idle(db, physical).total_build_io()
    }

    fn close_epoch(
        &mut self,
        db: &Database,
        physical: &mut PhysicalConfig,
        eqo: &mut Eqo<'_>,
    ) -> TunerStep {
        let _span = colt_obs::span("tuner.epoch");
        let whatif_used = self.profiler.whatif_used();
        let whatif_limit = self.profiler.whatif_limit();
        let whatif_skipped = self.profiler.whatif_skipped();

        let decision = self.organizer.reorganize(db, physical, &self.profiler, &self.hot);
        let changes =
            self.scheduler.submit(db, physical, &decision.to_create, &decision.to_drop);
        let mut build_io = changes.total_build_io();

        // The opt-in multi-column extension maintains its own set within
        // its own budget; its builds are charged like any others.
        let comp = self.composites.reorganize(db, physical);
        for (_, io) in &comp.built {
            build_io.accumulate(io);
        }

        let build_millis = db.cost.millis_of(&build_io);
        for (col, io) in &changes.built {
            colt_obs::emit(
                colt_obs::Event::new("index_create")
                    .field("epoch", self.epoch)
                    .field("index", col.to_string()),
            );
            colt_obs::decision(
                colt_obs::DecisionRecord::new("index_create")
                    .field("index", col.to_string())
                    .field("via", "reorganize")
                    .field("build_millis", db.cost.millis_of(io)),
            );
        }
        for col in &changes.dropped {
            colt_obs::emit(
                colt_obs::Event::new("index_drop")
                    .field("epoch", self.epoch)
                    .field("index", col.to_string()),
            );
            colt_obs::decision(
                colt_obs::DecisionRecord::new("index_drop")
                    .field("index", col.to_string())
                    .field("via", "reorganize"),
            );
        }
        colt_obs::emit(
            colt_obs::Event::new("budget")
                .field("epoch", self.epoch)
                .field("next_budget", decision.next_budget)
                .field("ratio", decision.ratio),
        );
        colt_obs::decision(
            colt_obs::DecisionRecord::new("budget_change")
                .field("whatif_used", whatif_used)
                .field("whatif_limit", whatif_limit)
                .field("next_budget", decision.next_budget)
                .field("ratio", decision.ratio)
                .field("net_benefit_m", decision.net_benefit_m)
                .field("net_benefit_m_prime", decision.net_benefit_m_prime),
        );
        colt_obs::emit(
            colt_obs::Event::new("epoch")
                .field("epoch", self.epoch)
                .field("whatif_used", whatif_used)
                .field("whatif_limit", whatif_limit)
                .field("next_budget", decision.next_budget)
                .field("ratio", decision.ratio)
                .field("created", changes.built.len())
                .field("dropped", changes.dropped.len())
                .field("materialized", physical.online_columns().count())
                .field("build_millis", build_millis),
        );

        self.trace.push(EpochRecord {
            epoch: self.epoch,
            whatif_used,
            whatif_limit,
            whatif_skipped,
            next_budget: decision.next_budget,
            ratio: decision.ratio,
            net_benefit_m: decision.net_benefit_m,
            net_benefit_m_prime: decision.net_benefit_m_prime,
            materialized: physical.online_columns().collect(),
            created: changes.built.iter().map(|(c, _)| *c).collect(),
            dropped: changes.dropped.clone(),
            hot: decision.new_hot.iter().copied().collect(),
            build_millis,
            candidate_count: self.profiler.candidates().len(),
            cluster_count: self.profiler.clusters().len(),
        });

        self.hot = decision.new_hot;
        self.profiler.end_epoch(decision.next_budget);
        // The boundary's value intervals become next epoch's skip-proof
        // frame (after end_epoch, which drops the stale one).
        self.profiler.install_context(decision.context);
        // Sweep the what-if memo against the post-reorganization
        // configuration: entries on tables this epoch touched drop,
        // everything else carries into the next epoch.
        eqo.end_epoch(physical);
        // Close the epoch in the flight recorder too: the time series
        // takes this epoch's metric deltas, and later decision records
        // (piggyback builds, next epoch's probes) stamp epoch + 1 —
        // matching the `self.epoch` increment below.
        colt_obs::epoch_mark(self.epoch);
        self.epoch += 1;

        TunerStep {
            build_io,
            epoch_closed: true,
            created: changes.built.iter().map(|(c, _)| *c).collect(),
            dropped: changes.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableId, TableSchema};
    use colt_engine::{Collect, Executor, SelPred};
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("grp", ValueType::Int),
            ],
        ));
        db.insert_rows(t, (0..20_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 20)])));
        db.analyze_all();
        (db, t)
    }

    /// Run `n` identical selective queries through optimize → execute →
    /// tune, returning the tuner and final config.
    fn drive(db: &Database, q: &colt_engine::Query, n: usize) -> (ColtTuner, PhysicalConfig) {
        let mut physical = PhysicalConfig::new();
        let mut tuner = ColtTuner::new(ColtConfig {
            storage_budget_pages: 10_000,
            ..Default::default()
        });
        let mut eqo = Eqo::new(db);
        for _ in 0..n {
            let plan = eqo.optimize(q, &physical);
            let _res = Executor::new(db, &physical).execute(q, &plan, Collect::CountOnly);
            tuner.on_query(db, &mut physical, &mut eqo, q, &plan);
        }
        (tuner, physical)
    }

    #[test]
    fn tuner_materializes_beneficial_index_within_few_epochs() {
        let (db, t) = setup();
        let col = ColRef::new(t, 0);
        let q = colt_engine::Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let (tuner, physical) = drive(&db, &q, 60);
        assert!(
            physical.contains(col),
            "after 6 epochs of identical selective queries the index must exist; trace: {}",
            tuner.trace().to_json()
        );
        assert_eq!(tuner.trace().epochs.len(), 6);
        assert!(tuner.trace().total_builds() >= 1);
    }

    #[test]
    fn tuner_hibernates_once_tuned() {
        let (db, t) = setup();
        let col = ColRef::new(t, 0);
        let q = colt_engine::Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let (tuner, _) = drive(&db, &q, 150);
        let epochs = &tuner.trace().epochs;
        // The final epochs should run with (almost) no what-if budget.
        let tail_budget: u64 = epochs.iter().rev().take(3).map(|e| e.next_budget).sum();
        assert_eq!(tail_budget, 0, "stable+tuned → hibernation; trace: {}", tuner.trace().to_json());
        // And profiling must have happened at some point (the first
        // epoch has no hot set yet, so it starts in epoch 1).
        assert!(epochs.iter().any(|e| e.whatif_used > 0));
    }

    #[test]
    fn build_cost_charged_at_epoch_boundary() {
        let (db, t) = setup();
        let col = ColRef::new(t, 0);
        let q = colt_engine::Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let mut physical = PhysicalConfig::new();
        let mut tuner = ColtTuner::new(ColtConfig {
            storage_budget_pages: 10_000,
            ..Default::default()
        });
        let mut eqo = Eqo::new(&db);
        let mut total_build = IoStats::new();
        for _ in 0..60 {
            let plan = eqo.optimize(&q, &physical);
            let step = tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);
            total_build.accumulate(&step.build_io);
        }
        assert!(total_build.pages_written > 0, "index build cost must be charged");
    }

    #[test]
    fn piggyback_strategy_builds_on_scans() {
        let (db, t) = setup();
        let col = ColRef::new(t, 0);
        let q = colt_engine::Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let mut physical = PhysicalConfig::new();
        let mut tuner = ColtTuner::with_strategy(
            ColtConfig { storage_budget_pages: 10_000, ..Default::default() },
            MaterializationStrategy::Piggyback,
        );
        let mut eqo = Eqo::new(&db);
        let mut piggybacked = Vec::new();
        for _ in 0..80 {
            let plan = eqo.optimize(&q, &physical);
            let step = tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);
            for (i, c) in step.created.iter().enumerate() {
                // Piggybacked builds charge no sequential heap pages.
                if *c == col {
                    piggybacked.push(step.build_io.seq_pages == 0 || i > 0);
                }
            }
        }
        assert!(physical.contains(col), "index must eventually materialize via piggyback");
        // The queries seq-scan `t` while the index is pending, so the
        // build must have ridden on one of them.
        assert!(!piggybacked.is_empty());
    }

    #[test]
    fn no_tuning_for_empty_epochs() {
        let (db, t) = setup();
        // Queries with no selections: no candidates, nothing to do.
        let q = colt_engine::Query::single(t, vec![]);
        let (tuner, physical) = drive(&db, &q, 40);
        assert!(physical.is_empty());
        assert_eq!(tuner.trace().total_builds(), 0);
        for e in &tuner.trace().epochs {
            assert_eq!(e.whatif_used, 0);
        }
    }
}
