//! Dynamic what-if budget reallocation: skip-proofs over per-candidate
//! gain intervals (in the spirit of Wii's "what-if call interception").
//!
//! At each epoch boundary the Self-Organizer already prices every index
//! in `H ∪ M` twice — once with conservative estimates (the values the
//! reorganization knapsack actually used) and once with optimistic upper
//! bounds (the re-budgeting best case). Those two prices bracket the
//! knapsack value the candidate can take once a what-if probe refines
//! its statistics. This module packages that bracket as a
//! [`DecisionContext`] the Profiler consults *before* issuing a probe:
//! if solving the knapsack with the candidate pinned at either end of
//! its interval yields the same chosen set, no measurement inside the
//! interval can alter the decision, so the probe is provably redundant
//! this epoch and its budget is freed for less certain candidates.
//!
//! The soundness argument is elementary: fixing all other item values,
//! the value of any index set containing candidate `c` is affine and
//! strictly increasing in `c`'s value while sets without `c` are
//! constant — all `c`-sets shift *uniformly*. Hence if the optimum at
//! `lo` and at `hi` is the same set, it is optimal for every value in
//! `[lo, hi]` (the `skip_proof_is_sound_on_random_instances` property
//! test below re-derives this empirically on seeded random instances).
//!
//! The interval can be tightened mid-epoch with per-query evidence: the
//! engine's what-if memo exposes a sound upper bound on the gain one
//! probe can report (`Eqo::gain_upper_bound`), which the context
//! projects onto the net-benefit scale before re-running the proof.
//!
//! The outer `r`-ratio control loop is untouched: skip-proofs only
//! decide *which* probes to spend `#WI_lim` on, never how large
//! `#WI_lim` is, so self-regulation semantics are unchanged whenever
//! bounds are uninformative (fresh candidates carry the degenerate
//! interval `[0, ∞)`-like crude projection and are always probed).

use crate::knapsack::{self, Item};
use colt_catalog::ColRef;
use std::collections::BTreeMap;

/// The bracket of knapsack values one candidate could take after a
/// what-if probe, plus the constants needed to project per-query gain
/// bounds onto the same scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateInterval {
    /// Pages the index (would) occupy in the knapsack.
    pub size: u64,
    /// Conservative net benefit — the value the reorganization knapsack
    /// used for this candidate.
    pub lo: f64,
    /// Optimistic net benefit — the re-budgeting best-case value.
    pub hi: f64,
    /// Estimated materialization cost (0 for already-materialized
    /// indices), subtracted when projecting per-query gain bounds.
    pub mat_cost: f64,
}

/// Cached proof outcome for one candidate, remembering the tightest
/// upper bound it was established under.
#[derive(Debug, Clone, Copy)]
struct Verdict {
    skip: bool,
    hi: f64,
}

/// One epoch's knapsack decision frame: every priced candidate with its
/// value interval, the storage budget, and memoized proof verdicts.
///
/// Built by [`SelfOrganizer::reorganize`](crate::organizer::SelfOrganizer)
/// and installed into the [`Profiler`](crate::profiler::Profiler) for
/// the following epoch.
#[derive(Debug, Clone, Default)]
pub struct DecisionContext {
    // BTreeMap: iterated when assembling knapsack instances, and kernel
    // state must never depend on hash order.
    items: BTreeMap<ColRef, CandidateInterval>,
    budget_pages: u64,
    /// Scale from a per-query gain bound to a net-benefit upper bound:
    /// the window query count (`Σ_clusters Count(Q_i)` — the per-epoch
    /// benefit is at most `total/h · g`, projected over the `h`-epoch
    /// horizon).
    gain_scale: f64,
    verdicts: BTreeMap<ColRef, Verdict>,
    /// Lazily computed all-conservative solution. `solve_with(c, lo_c)`
    /// pins every item (including `c`) at its conservative price, so it
    /// is the *same* knapsack instance for every candidate — one solve
    /// serves the lo side of every proof in the epoch.
    base_solution: Option<Vec<ColRef>>,
}

/// A failed proof is only re-attempted when the new upper bound is
/// tighter than the failed one by at least this fraction of the
/// candidate's interval width. Re-proving on every epsilon improvement
/// would re-solve the knapsack once per query; deferring until the
/// bound has moved materially costs nothing but a few extra issued
/// probes (the conservative direction — skipping still requires a
/// fresh successful proof).
const REPROOF_MARGIN: f64 = 0.05;

impl DecisionContext {
    /// Empty context over a storage budget; `gain_scale` projects a
    /// per-query gain bound onto the net-benefit scale (see field doc).
    pub fn new(budget_pages: u64, gain_scale: f64) -> Self {
        DecisionContext {
            items: BTreeMap::new(),
            budget_pages,
            gain_scale: gain_scale.max(0.0),
            verdicts: BTreeMap::new(),
            base_solution: None,
        }
    }

    /// Price a candidate into the frame (intervals are normalized so
    /// `hi >= lo`).
    pub fn insert(&mut self, col: ColRef, interval: CandidateInterval) {
        let hi = interval.hi.max(interval.lo);
        self.items.insert(col, CandidateInterval { hi, ..interval });
        self.base_solution = None;
    }

    /// Number of priced candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the frame prices no candidates.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The priced interval of a candidate, if any.
    pub fn interval(&self, col: ColRef) -> Option<&CandidateInterval> {
        self.items.get(&col)
    }

    /// Interval width — the candidate's decision uncertainty. Unpriced
    /// candidates are maximally uncertain (infinite width), which sorts
    /// them first when freed budget is reallocated.
    pub fn width(&self, col: ColRef) -> f64 {
        match self.items.get(&col) {
            Some(it) => it.hi - it.lo,
            None => f64::INFINITY,
        }
    }

    /// Solve the frame's knapsack with `col` pinned at `value` and every
    /// other candidate at its conservative price, returning the chosen
    /// set of columns.
    fn solve_with(&self, col: ColRef, value: f64) -> Vec<ColRef> {
        let mut order = Vec::with_capacity(self.items.len());
        let mut items = Vec::with_capacity(self.items.len());
        for (&c, it) in &self.items {
            order.push(c);
            items.push(Item { size: it.size, value: if c == col { value } else { it.lo } });
        }
        knapsack::solve(&items, self.budget_pages).into_iter().map(|i| order[i]).collect()
    }

    /// Run the skip-proof for `col`, optionally tightening the upper
    /// bound with a per-query gain bound from the engine's what-if memo.
    ///
    /// Returns `Some((lo, hi))` — the interval the proof fired over —
    /// when no value in the candidate's interval can change the knapsack
    /// solution, so the probe can be skipped without charging the
    /// budget; `None` when the probe must be issued (including for
    /// unpriced candidates, whose bounds are uninformative).
    ///
    /// Verdicts are memoized per epoch: a candidate already proven
    /// skippable stays skipped, and a failed proof is only re-attempted
    /// when a materially tighter upper bound arrives (see
    /// [`REPROOF_MARGIN`]).
    pub fn skip_proof(&mut self, col: ColRef, gain_bound: Option<f64>) -> Option<(f64, f64)> {
        let it = *self.items.get(&col)?;
        let mut hi = it.hi;
        if let Some(g) = gain_bound {
            let projected = self.gain_scale * g.max(0.0) - it.mat_cost;
            hi = hi.min(projected.max(it.lo));
        }
        if let Some(v) = self.verdicts.get(&col) {
            if v.skip {
                return Some((it.lo, v.hi));
            }
            if hi >= v.hi - 1e-12 - REPROOF_MARGIN * (it.hi - it.lo) {
                return None; // not materially tighter than the failed proof
            }
        }
        // A zero-width interval cannot straddle a decision boundary: both
        // endpoint solves are the same instance, so skip without solving.
        let skip = hi <= it.lo || {
            if self.base_solution.is_none() {
                let base = self.solve_with(col, it.lo);
                self.base_solution = Some(base);
            }
            self.base_solution.as_deref() == Some(&self.solve_with(col, hi)[..])
        };
        self.verdicts.insert(col, Verdict { skip, hi });
        if skip {
            Some((it.lo, hi))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Prng;
    use colt_catalog::TableId;

    fn col(i: u32) -> ColRef {
        ColRef::new(TableId(0), i)
    }

    fn iv(size: u64, lo: f64, hi: f64) -> CandidateInterval {
        CandidateInterval { size, lo, hi, mat_cost: 0.0 }
    }

    #[test]
    fn hopeless_candidate_is_skipped() {
        // Budget fits one index; the incumbent's value dwarfs the
        // candidate's whole interval, so probing cannot matter.
        let mut ctx = DecisionContext::new(10, 0.0);
        ctx.insert(col(0), iv(10, 100.0, 100.0));
        ctx.insert(col(1), iv(10, 1.0, 5.0));
        assert_eq!(ctx.skip_proof(col(1), None), Some((1.0, 5.0)));
    }

    #[test]
    fn locked_in_candidate_is_skipped() {
        // The candidate wins at both ends of its interval: equally
        // decided, equally skippable.
        let mut ctx = DecisionContext::new(10, 0.0);
        ctx.insert(col(0), iv(10, 1.0, 1.0));
        ctx.insert(col(1), iv(10, 50.0, 80.0));
        assert_eq!(ctx.skip_proof(col(1), None), Some((50.0, 80.0)));
    }

    #[test]
    fn straddling_candidate_must_be_probed() {
        // At lo the incumbent wins, at hi the candidate displaces it:
        // the probe decides the epoch.
        let mut ctx = DecisionContext::new(10, 0.0);
        ctx.insert(col(0), iv(10, 10.0, 10.0));
        ctx.insert(col(1), iv(10, 5.0, 50.0));
        assert_eq!(ctx.skip_proof(col(1), None), None);
    }

    #[test]
    fn unpriced_candidate_is_never_skipped() {
        let mut ctx = DecisionContext::new(10, 0.0);
        ctx.insert(col(0), iv(10, 10.0, 10.0));
        assert_eq!(ctx.skip_proof(col(9), None), None);
        assert!(ctx.width(col(9)).is_infinite(), "unpriced = maximally uncertain");
    }

    #[test]
    fn engine_bound_tightens_the_proof() {
        // Same straddling instance as above, but the engine's memoized
        // base cost caps the reachable gain below the decision boundary.
        let mut ctx = DecisionContext::new(10, 2.0);
        ctx.insert(col(0), iv(10, 10.0, 10.0));
        ctx.insert(col(1), iv(10, 5.0, 50.0));
        // projected hi = 2.0 * 4.0 - 0 = 8.0 < 10.0: cannot displace.
        assert_eq!(ctx.skip_proof(col(1), Some(4.0)), Some((5.0, 8.0)));
    }

    #[test]
    fn verdicts_are_memoized_and_upgrade_on_tighter_bounds() {
        let mut ctx = DecisionContext::new(10, 2.0);
        ctx.insert(col(0), iv(10, 10.0, 10.0));
        ctx.insert(col(1), iv(10, 5.0, 50.0));
        assert_eq!(ctx.skip_proof(col(1), None), None);
        // A looser (or equal) bound reuses the failed verdict.
        assert_eq!(ctx.skip_proof(col(1), Some(30.0)), None);
        // A strictly tighter bound re-runs the proof and flips it.
        assert_eq!(ctx.skip_proof(col(1), Some(4.0)), Some((5.0, 8.0)));
        // The skip verdict then sticks, even if later bounds are loose.
        assert_eq!(ctx.skip_proof(col(1), None), Some((5.0, 8.0)));
    }

    #[test]
    fn mat_cost_is_subtracted_from_projected_bounds() {
        let mut ctx = DecisionContext::new(10, 2.0);
        ctx.insert(col(0), iv(10, 10.0, 10.0));
        ctx.insert(
            col(1),
            CandidateInterval { size: 10, lo: 5.0, hi: 50.0, mat_cost: 3.0 },
        );
        // projected hi = 2.0 * 4.0 - 3.0 = 5.0: pinned at lo, skip.
        assert_eq!(ctx.skip_proof(col(1), Some(4.0)), Some((5.0, 5.0)));
    }

    /// Seeded property test (the soundness theorem, empirically): on
    /// random candidate frames, whenever the skip-proof fires for a
    /// candidate, the knapsack solved with that candidate at *any* value
    /// inside its interval yields exactly the chosen set of the
    /// conservative solution — i.e. the skipped probe could not have
    /// changed the decision, so knapsacks with and without the skipped
    /// probe agree.
    #[test]
    fn skip_proof_is_sound_on_random_instances() {
        let mut prng = Prng::new(0x5EED_5EED);
        let mut fired = 0usize;
        let mut cases = 0usize;
        while cases < 40 {
            cases += 1;
            let n = 2 + (prng.next_u64() % 7) as usize;
            let budget = 10 + prng.next_u64() % 90;
            let mut ctx = DecisionContext::new(budget, 0.0);
            for i in 0..n {
                let size = 1 + prng.next_u64() % 40;
                let lo = (prng.next_u64() % 1000) as f64 / 10.0;
                let hi = lo + (prng.next_u64() % 500) as f64 / 10.0;
                ctx.insert(col(i as u32), CandidateInterval { size, lo, hi, mat_cost: 0.0 });
            }
            for i in 0..n {
                let c = col(i as u32);
                let Some((lo, hi)) = ctx.skip_proof(c, None) else { continue };
                fired += 1;
                let baseline = ctx.solve_with(c, lo);
                // Endpoints plus interior samples of the interval.
                for k in 0..=4 {
                    let v = lo + (hi - lo) * k as f64 / 4.0;
                    assert_eq!(
                        ctx.solve_with(c, v),
                        baseline,
                        "case {cases}: probe at {v} in [{lo}, {hi}] changed the decision"
                    );
                }
            }
        }
        assert!(fired > 10, "proof must fire on a healthy fraction of instances, got {fired}");
    }
}
