//! Per-(index, cluster) gain statistics with CLT confidence intervals
//! (paper §4.1).
//!
//! For a hot or materialized index `I` and a cluster `Q_i`, the Profiler
//! accumulates the `QueryGain` measurements obtained through what-if
//! calls and summarizes them as a confidence interval
//! `[LowGain(I, Q_i), HighGain(I, Q_i)]` around the sample mean, using
//! CLT-style bounds at a fixed confidence level.
//!
//! Measurements are *time-sensitive*: they were taken against a specific
//! materialized set. A measurement is consistent only while the
//! materialized indices on the measured table are unchanged, so the
//! statistics carry the table's materialization version and reset when
//! it moves on (paper §4.1, last paragraph of `QueryGain_H`).


/// Streaming mean/variance (Welford) over gain samples, tagged with the
/// materialization version they are consistent with.
#[derive(Debug, Clone, PartialEq)]
pub struct GainStats {
    n: u64,
    mean: f64,
    m2: f64,
    /// Materialization version of the index's table at sampling time.
    version: u64,
}

impl GainStats {
    /// Empty statistics pinned to a materialization version.
    pub fn new(version: u64) -> Self {
        GainStats { n: 0, mean: 0.0, m2: 0.0, version }
    }

    /// Record one gain measurement taken under `version`. If the version
    /// moved since the last samples were taken, the stale samples are
    /// soft-discarded first (see [`GainStats::ensure_version`]).
    pub fn add(&mut self, gain: f64, version: u64) {
        self.ensure_version(version);
        self.n += 1;
        let delta = gain - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (gain - self.mean);
    }

    /// Ensure the statistics are consistent with `version`. Returns
    /// whether a (soft) reset happened.
    ///
    /// On a version change the stale samples are collapsed into a single
    /// pseudo-sample that keeps the old mean as a prior. Discarding the
    /// mean entirely would make a freshly changed configuration read as
    /// "zero benefit" until re-profiling catches up — and since every
    /// create/drop on a table invalidates its *sibling* columns, a hard
    /// reset makes each reorganization sabotage the evidence behind the
    /// next one, causing materialization churn. The pseudo-sample keeps
    /// the level while widening the confidence interval back to the
    /// single-sample state, so the adaptive sampler re-profiles the pair
    /// aggressively.
    pub fn ensure_version(&mut self, version: u64) -> bool {
        if version != self.version {
            let prior = self.mean;
            *self = GainStats::new(version);
            if prior != 0.0 {
                self.n = 1;
                self.mean = prior;
            }
            true
        } else {
            false
        }
    }

    /// Number of (consistent) samples.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Half-width of the CLT confidence interval `z · s / √n`.
    ///
    /// With fewer than two samples the width is infinite — the estimate
    /// carries no confidence yet, which makes unprofiled pairs maximally
    /// attractive to the adaptive sampler.
    pub fn ci_half_width(&self, z: f64) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        z * (self.variance() / self.n as f64).sqrt()
    }

    /// `LowGain`: conservative lower confidence bound, clamped at zero
    /// (a gain cannot be negative). Zero when no samples exist.
    pub fn low(&self, z: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let hw = self.ci_half_width(z);
        if hw.is_infinite() {
            // Single sample: no spread information; be conservative but
            // keep the one observation at half weight.
            return (self.mean * 0.5).max(0.0);
        }
        (self.mean - hw).max(0.0)
    }

    /// `HighGain`: optimistic upper confidence bound. With fewer than
    /// two samples, an aggressive multiple of the observed mean (or zero
    /// if nothing was observed) stands in for the unbounded interval.
    pub fn high(&self, z: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let hw = self.ci_half_width(z);
        if hw.is_infinite() {
            return (self.mean * 2.0).max(0.0);
        }
        (self.mean + hw).max(0.0)
    }
}

/// Statistics tying one index to one cluster: the gain samples plus
/// usage counters.
///
/// For *materialized* indices the paper tracks the average **positive**
/// benefit per query: gains are only measured (via reverse what-if) on
/// queries whose plan actually uses the index, and the per-query benefit
/// over the cluster is the positive mean scaled by the fraction of
/// cluster queries that used it.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexClusterStats {
    /// Gain samples from what-if calls.
    pub gains: GainStats,
    /// Cluster queries observed while the index was materialized.
    pub seen: u64,
    /// Of those, queries whose plan used the index.
    pub used: u64,
}

impl IndexClusterStats {
    /// Empty statistics pinned to a materialization version.
    pub fn new(version: u64) -> Self {
        IndexClusterStats { gains: GainStats::new(version), seen: 0, used: 0 }
    }

    /// Record that a cluster query was observed; `used` notes whether
    /// the materialized index appeared in its plan.
    pub fn observe(&mut self, used: bool) {
        self.seen += 1;
        if used {
            self.used += 1;
        }
    }

    /// Fraction of cluster queries that used the index (1 when nothing
    /// was observed yet, the optimistic default for fresh indices).
    pub fn used_fraction(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            self.used as f64 / self.seen as f64
        }
    }

    /// Reset usage counters (at version changes).
    pub fn reset_usage(&mut self) {
        self.seen = 0;
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let mut s = GainStats::new(0);
        for g in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(g, 0);
        }
        assert_eq!(s.n(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn interval_tightens_with_samples() {
        let mut s = GainStats::new(0);
        s.add(10.0, 0);
        s.add(12.0, 0);
        let wide = s.ci_half_width(1.645);
        for _ in 0..50 {
            s.add(11.0, 0);
        }
        let narrow = s.ci_half_width(1.645);
        assert!(narrow < wide);
        assert!(s.low(1.645) <= s.mean());
        assert!(s.high(1.645) >= s.mean());
    }

    #[test]
    fn version_change_soft_resets_to_prior() {
        let mut s = GainStats::new(1);
        s.add(100.0, 1);
        s.add(100.0, 1);
        assert_eq!(s.n(), 2);
        // Configuration changed: the old mean survives as a single
        // pseudo-sample prior, then the new measurement folds in.
        s.add(5.0, 2);
        assert_eq!(s.n(), 2);
        assert!((s.mean() - 52.5).abs() < 1e-12);
        assert!(!s.ensure_version(2));
        assert!(s.ensure_version(3));
        assert_eq!(s.n(), 1, "prior kept as pseudo-sample");
        assert!((s.mean() - 52.5).abs() < 1e-12);
        // The interval is wide again: re-profiling is urgent.
        assert!(s.ci_half_width(1.645).is_infinite());
        // A stats object that never saw data resets to empty.
        let mut empty = GainStats::new(0);
        assert!(empty.ensure_version(5));
        assert_eq!(empty.n(), 0);
    }

    #[test]
    fn low_never_negative_high_never_below_zero_mean() {
        let mut s = GainStats::new(0);
        s.add(1.0, 0);
        s.add(100.0, 0);
        assert!(s.low(1.645) >= 0.0);
        assert!(s.high(1.645) >= s.mean());
    }

    #[test]
    fn empty_and_single_sample_bounds() {
        let s = GainStats::new(0);
        assert_eq!(s.low(1.645), 0.0);
        assert_eq!(s.high(1.645), 0.0);
        let mut s = GainStats::new(0);
        s.add(10.0, 0);
        assert!((s.low(1.645) - 5.0).abs() < 1e-12);
        assert!((s.high(1.645) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_sample_estimator_paths() {
        // Every accessor must be well-defined (finite or the documented
        // sentinel) on an empty estimator — no 0/0 or 0-1 underflow.
        let s = GainStats::new(0);
        assert_eq!(s.n(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.ci_half_width(1.645).is_infinite(), "no confidence yet");
        assert_eq!(s.low(1.645), 0.0);
        assert_eq!(s.high(1.645), 0.0);
    }

    #[test]
    fn single_sample_estimator_paths() {
        let mut s = GainStats::new(0);
        s.add(8.0, 0);
        assert_eq!(s.n(), 1);
        assert_eq!(s.mean(), 8.0);
        assert_eq!(s.variance(), 0.0, "unbiased variance undefined at n=1, reported as 0");
        assert!(s.ci_half_width(1.645).is_infinite());
        assert!((s.low(1.645) - 4.0).abs() < 1e-12, "half-weight single observation");
        assert!((s.high(1.645) - 16.0).abs() < 1e-12, "aggressive upper stand-in");
        // A negative single sample (cost regression) clamps both bounds
        // to zero — a gain cannot be negative.
        let mut neg = GainStats::new(0);
        neg.add(-3.0, 0);
        assert_eq!(neg.low(1.645), 0.0);
        assert_eq!(neg.high(1.645), 0.0);
    }

    #[test]
    fn usage_fraction() {
        let mut ics = IndexClusterStats::new(0);
        assert_eq!(ics.used_fraction(), 1.0);
        ics.observe(true);
        ics.observe(false);
        ics.observe(false);
        ics.observe(true);
        assert!((ics.used_fraction() - 0.5).abs() < 1e-12);
        ics.reset_usage();
        assert_eq!(ics.used_fraction(), 1.0);
    }
}
