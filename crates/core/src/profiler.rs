//! The Profiler (paper §4): gathers performance statistics for candidate
//! indices at two levels of fidelity.
//!
//! * **Level 1 — `BenefitC`** for every candidate in `C`: a crude,
//!   cost-formula-based estimate (`QueryGain_C = u_{q,I} · Δcost`) that
//!   is cheap enough to maintain for every query and every candidate.
//! * **Level 2 — `BenefitH` / `BenefitM`** for hot and materialized
//!   indices: accurate gains measured through what-if optimizer calls on
//!   a *sample* of each query cluster, summarized as CLT confidence
//!   intervals per `(index, cluster)` pair.
//!
//! The per-epoch what-if budget `#WI_lim` (set by the Self-Organizer's
//! re-budgeting step) is enforced exactly as in Figure 2 of the paper:
//! materialized indices are given precedence over hot ones, and the
//! probation set is cut off once the budget is exhausted.

use crate::cluster::{ClusterId, ClusterSet};
use crate::config::ColtConfig;
use crate::crude::CandidateSet;
use crate::gain::IndexClusterStats;
use crate::prng::Prng;
use crate::rebudget::DecisionContext;
use colt_catalog::{ColRef, Database, PhysicalConfig};
use colt_engine::cost::delta_cost;
use colt_engine::selectivity::predicate_selectivity;
use colt_engine::{Eqo, Plan, Query};
use std::collections::{BTreeMap, BTreeSet};

/// Which estimate of a per-query cluster gain to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GainMode {
    /// Conservative lower confidence bound — used when scoring hot
    /// indices for materialization (paper: "an index is selected only if
    /// there is strong evidence of its good performance").
    HotConservative,
    /// Optimistic upper confidence bound — used by re-budgeting's
    /// best-case scenario.
    HotOptimistic,
    /// Materialized-index estimate: mean positive gain scaled by the
    /// fraction of cluster queries that actually used the index.
    Materialized,
}

/// Outcome of profiling one query, for tracing.
#[derive(Debug, Clone, Default)]
pub struct ProfileOutcome {
    /// The cluster the query was assigned to.
    pub cluster: Option<ClusterId>,
    /// Indices probed through the what-if interface for this query.
    pub probed: Vec<ColRef>,
}

/// The Profiler.
#[derive(Debug)]
pub struct Profiler {
    clusters: ClusterSet,
    candidates: CandidateSet,
    // BTreeMap: iterated by `profiled_index_count`, and kernel state must
    // never depend on hash order.
    stats: BTreeMap<(ColRef, ClusterId), IndexClusterStats>,
    prng: Prng,
    z: f64,
    /// What-if calls performed in the epoch in progress (`#WI_cur`).
    wi_cur: u64,
    /// Budget for the epoch in progress (`#WI_lim`).
    wi_lim: u64,
    /// Hard cap (`#WI_max`).
    wi_max: u64,
    /// Probes skipped by skip-proofs in the epoch in progress.
    wi_skipped: u64,
    /// Whether skip-proofs run at all (`ColtConfig::dynamic_rebudget`).
    dynamic_rebudget: bool,
    /// The epoch's knapsack decision frame, installed by the tuner from
    /// the previous boundary's [`ReorgDecision`](crate::organizer::ReorgDecision).
    context: Option<DecisionContext>,
}

impl Profiler {
    /// Build a profiler from the COLT configuration. The first epoch
    /// starts with `initial_whatif_limit` (by default the full budget —
    /// the system knows nothing yet).
    pub fn new(config: &ColtConfig) -> Self {
        Profiler {
            clusters: ClusterSet::new(config.history_epochs, config.selective_boundary),
            candidates: CandidateSet::new(
                config.history_epochs,
                config.smoothing_alpha,
                config.candidate_ttl_epochs,
            ),
            stats: BTreeMap::new(),
            prng: Prng::new(config.seed),
            z: config.confidence_z,
            wi_cur: 0,
            wi_lim: config.initial_whatif_limit(),
            wi_max: config.max_whatif_per_epoch,
            wi_skipped: 0,
            dynamic_rebudget: config.dynamic_rebudget,
            context: None,
        }
    }

    /// What-if calls used in the epoch in progress.
    pub fn whatif_used(&self) -> u64 {
        self.wi_cur
    }

    /// Probes proven redundant (and skipped) in the epoch in progress.
    pub fn whatif_skipped(&self) -> u64 {
        self.wi_skipped
    }

    /// Install the knapsack decision frame for the epoch that is
    /// starting (ignored when skip-proofs are disabled).
    pub fn install_context(&mut self, context: DecisionContext) {
        if self.dynamic_rebudget {
            self.context = Some(context);
        }
    }

    /// Budget of the epoch in progress.
    pub fn whatif_limit(&self) -> u64 {
        self.wi_lim
    }

    /// The candidate set `C`.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// The query clustering.
    pub fn clusters(&self) -> &ClusterSet {
        &self.clusters
    }

    /// Profile the current query given its optimized plan (Figure 2).
    pub fn profile_query(
        &mut self,
        db: &Database,
        config: &PhysicalConfig,
        eqo: &mut Eqo<'_>,
        query: &Query,
        plan: &Plan,
        hot: &BTreeSet<ColRef>,
    ) -> ProfileOutcome {
        let _span = colt_obs::span("profiler.profile");
        let cluster = {
            let _s = colt_obs::span("profiler.cluster");
            self.clusters.assign(db, query)
        };
        let restricted = query.candidate_columns();
        let used = plan.used_indices();
        if colt_obs::is_enabled() {
            colt_obs::decision(
                colt_obs::DecisionRecord::new("cluster_assign")
                    .field("cluster", cluster.0)
                    .field("window_count", self.clusters.get(cluster).window_count())
                    .field("candidate_columns", restricted.len()),
            );
        }

        // Track usage of every relevant materialized index — this is
        // free (derived from the plan) and feeds `used_fraction`.
        for &col in &restricted {
            if config.contains(col) {
                let version = config.version_excluding(col);
                let s = self
                    .stats
                    .entry((col, cluster))
                    .or_insert_with(|| IndexClusterStats::new(version));
                if s.gains.ensure_version(version) {
                    s.reset_usage();
                }
                s.observe(used.contains(&col));
            }
        }

        // Form the probation set P: materialized indices used in the
        // plan first, then hot indices relevant to the cluster, each
        // admitted with its adaptive sampling probability while the
        // epoch's budget lasts.
        let mut im: Vec<ColRef> = used.iter().copied().filter(|c| config.contains(*c)).collect();
        let mut ih: Vec<ColRef> =
            restricted.iter().copied().filter(|c| hot.contains(c) && !config.contains(*c)).collect();
        self.prng.shuffle(&mut im);
        self.prng.shuffle(&mut ih);
        if self.dynamic_rebudget {
            if let Some(ctx) = &self.context {
                // Budget freed by skip-proofs flows to the least certain
                // candidates: widest decision interval first, ColRef
                // order as the deterministic tie-break.
                ih.sort_by(|a, b| {
                    ctx.width(*b)
                        .partial_cmp(&ctx.width(*a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                });
            }
        }

        let mut probation: Vec<ColRef> = Vec::new();
        for col in im.into_iter().chain(ih) {
            if self.wi_cur + probation.len() as u64 >= self.wi_lim {
                break;
            }
            let rate = self.sample_rate(col, cluster);
            if !self.prng.chance(rate) {
                continue;
            }
            // Skip-proof: a candidate whose value interval cannot alter
            // the epoch's knapsack solution is recorded but not probed,
            // charging nothing against `#WI_lim`. This covers reverse
            // probes on materialized indices too — their usage
            // accounting is plan-derived (`observe`, above) and does not
            // depend on the probe, and a probe is still issued whenever
            // the proof fails (a drop boundary genuinely in play). The
            // paper's materialized-before-hot precedence is preserved
            // for the probes that do issue.
            if self.dynamic_rebudget {
                let proof = self
                    .context
                    .as_mut()
                    .and_then(|ctx| ctx.skip_proof(col, eqo.gain_upper_bound(query, col, config)));
                if let Some((lo, hi)) = proof {
                    self.wi_skipped += 1;
                    colt_obs::counter("tuner.whatif.considered", 1);
                    colt_obs::counter("tuner.whatif.skipped", 1);
                    if colt_obs::is_enabled() {
                        colt_obs::decision(
                            colt_obs::DecisionRecord::new("whatif_skip")
                                .field("index", col.to_string())
                                .field("cluster", cluster.0)
                                .field("lo", lo)
                                .field("hi", hi)
                                .field("budget_used", self.wi_cur + probation.len() as u64)
                                .field("budget_limit", self.wi_lim),
                        );
                    }
                    continue;
                }
            }
            colt_obs::counter("tuner.whatif.considered", 1);
            colt_obs::counter("tuner.whatif.issued", 1);
            probation.push(col);
        }

        // Call the what-if optimizer and fold the measured gains into
        // the per-(index, cluster) statistics.
        if !probation.is_empty() {
            let _s = colt_obs::span("profiler.whatif");
            let gains = eqo.what_if_optimize(query, &probation, config);
            for g in &gains {
                let version = config.version_excluding(g.col);
                let s = self
                    .stats
                    .entry((g.col, cluster))
                    .or_insert_with(|| IndexClusterStats::new(version));
                s.gains.add(g.gain, version);
                if colt_obs::is_enabled() {
                    colt_obs::decision(
                        colt_obs::DecisionRecord::new("whatif_probe")
                            .field("index", g.col.to_string())
                            .field("cluster", cluster.0)
                            .field("gain", g.gain)
                            .field("budget_used", self.wi_cur + probation.len() as u64)
                            .field("budget_limit", self.wi_lim),
                    );
                }
            }
            self.wi_cur += probation.len() as u64;
        }

        // Level 1: update the crude BenefitC estimate of every candidate
        // column the query restricts.
        let _crude = colt_obs::span("profiler.crude");
        for &col in &restricted {
            self.candidates.touch(col);
            let u = self.usage_indicator(col, config, hot, &used, &probation);
            if u {
                let crude = self.crude_gain(db, query, col);
                self.candidates.add_gain(col, crude);
            }
        }

        ProfileOutcome { cluster: Some(cluster), probed: probation }
    }

    /// The indicator `u_{q,I}`: 1 when the optimizer (would) use `I` for
    /// this query. Known exactly for materialized indices (from the
    /// plan); optimistic (1) for everything else, as in the paper.
    fn usage_indicator(
        &self,
        col: ColRef,
        config: &PhysicalConfig,
        _hot: &BTreeSet<ColRef>,
        used: &[ColRef],
        _probed: &[ColRef],
    ) -> bool {
        if config.contains(col) {
            used.contains(&col)
        } else {
            true
        }
    }

    /// Crude `QueryGain_C(q, I) = Δcost(R, σ, I)` from standard cost
    /// formulas. When several predicates restrict the same column, the
    /// most selective one drives the estimate.
    fn crude_gain(&self, db: &Database, query: &Query, col: ColRef) -> f64 {
        let sel = query
            .selections
            .iter()
            .filter(|p| p.col == col)
            .map(|p| predicate_selectivity(db, p))
            .fold(f64::INFINITY, f64::min);
        if !sel.is_finite() {
            return 0.0;
        }
        let t = db.table(col.table);
        let est = db.index_estimate(col);
        delta_cost(&db.cost, &est, sel, t.heap.row_count() as f64, t.heap.page_count() as f64)
    }

    /// Adaptive sampling probability for an `(index, cluster)` pair
    /// (paper §4.2): the what-if allocation is proportional to the
    /// pair's estimated contribution to the error of `Benefit(I)`, which
    /// grows with the cluster's popularity and the variance of profiled
    /// gains, and shrinks as more of the cluster is profiled.
    fn sample_rate(&self, col: ColRef, cluster: ClusterId) -> f64 {
        let Some(s) = self.stats.get(&(col, cluster)) else {
            return 1.0; // never profiled: maximal uncertainty
        };
        let n = s.gains.n();
        if n < 2 {
            return 1.0;
        }
        let hw = s.gains.ci_half_width(self.z);
        let relative_error = hw / s.gains.mean().abs().max(1e-6);
        let popularity = (self.clusters.get(cluster).window_count() as f64).sqrt();
        let e = relative_error * popularity / (n as f64).sqrt();
        e.clamp(0.05, 1.0)
    }

    /// Per-query gain estimate of `I` for queries of `cluster`, under the
    /// requested estimation mode.
    pub fn cluster_gain(&self, col: ColRef, cluster: ClusterId, mode: GainMode) -> f64 {
        let Some(s) = self.stats.get(&(col, cluster)) else { return 0.0 };
        match mode {
            GainMode::HotConservative => s.gains.low(self.z),
            GainMode::HotOptimistic => s.gains.high(self.z),
            GainMode::Materialized => s.gains.mean().max(0.0) * s.used_fraction(),
        }
    }

    /// Total per-epoch benefit of `I`:
    /// `Σ_clusters (Count(Q_i)/h) · per-query-gain(I, Q_i)`
    /// — the un-normalized form of the paper's `Benefit(I)`, with the
    /// cluster popularity taken over the whole memory window `S_h`
    /// (paper §4.1: `Count(Q_i)` records the queries the cluster
    /// represents). Window-averaged counts make the benefit series far
    /// less sensitive to the per-epoch query mix than raw per-epoch
    /// counts, which stabilizes the knapsack when indices are near-tied.
    pub fn epoch_benefit(&self, col: ColRef, mode: GainMode) -> f64 {
        let h = self.clusters.history_epochs() as f64;
        self.clusters
            .live()
            .map(|(id, c)| {
                let count = c.window_count();
                if count == 0 {
                    0.0
                } else {
                    count as f64 / h * self.cluster_gain(col, id, mode)
                }
            })
            .sum()
    }

    /// Number of distinct indices that have at least one accurate
    /// (what-if-measured) sample — the paper reports COLT profiles only
    /// ~11% of the relevant indices.
    pub fn profiled_index_count(&self) -> usize {
        // BTreeMap keys arrive ordered by (ColRef, ClusterId), so distinct
        // columns are already adjacent.
        let mut cols: Vec<ColRef> =
            self.stats.iter().filter(|(_, s)| s.gains.n() > 0).map(|((c, _), _)| *c).collect();
        cols.dedup();
        cols.len()
    }

    /// Close the epoch: roll cluster counts and crude candidate
    /// statistics, reset the what-if and skip counters, drop the stale
    /// decision frame, and install the next epoch's budget (clamped to
    /// `#WI_max`).
    pub fn end_epoch(&mut self, next_budget: u64) {
        self.clusters.roll_epoch();
        self.candidates.roll_epoch();
        self.wi_cur = 0;
        self.wi_skipped = 0;
        self.wi_lim = next_budget.min(self.wi_max);
        self.context = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, IndexOrigin, TableId, TableSchema};
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("grp", ValueType::Int),
                Column::new("w", ValueType::Int),
            ],
        ));
        db.insert_rows(
            t,
            (0..30_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 30), Value::Int(i % 3)])),
        );
        db.analyze_all();
        (db, t)
    }

    fn run_query(
        profiler: &mut Profiler,
        db: &Database,
        cfg: &PhysicalConfig,
        q: &Query,
        hot: &BTreeSet<ColRef>,
    ) -> ProfileOutcome {
        let mut eqo = Eqo::new(db);
        let plan = eqo.optimize(q, cfg);
        profiler.profile_query(db, cfg, &mut eqo, q, &plan, hot)
    }

    #[test]
    fn candidates_mined_from_selections() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let mut p = Profiler::new(&ColtConfig::default());
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        run_query(&mut p, &db, &cfg, &q, &BTreeSet::new());
        assert!(p.candidates().contains(col));
        assert_eq!(p.candidates().len(), 1);
    }

    #[test]
    fn hot_indices_get_whatif_samples() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let mut p = Profiler::new(&ColtConfig::default());
        let col = ColRef::new(t, 0);
        let hot = BTreeSet::from([col]);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let out = run_query(&mut p, &db, &cfg, &q, &hot);
        assert_eq!(out.probed, vec![col], "fresh hot index must be sampled at rate 1");
        assert_eq!(p.whatif_used(), 1);
        let cluster = out.cluster.unwrap();
        assert!(p.cluster_gain(col, cluster, GainMode::HotConservative) > 0.0);
        assert!(
            p.cluster_gain(col, cluster, GainMode::HotOptimistic)
                >= p.cluster_gain(col, cluster, GainMode::HotConservative)
        );
    }

    #[test]
    fn budget_limits_probing() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let config = ColtConfig { max_whatif_per_epoch: 2, ..Default::default() };
        let mut p = Profiler::new(&config);
        let hot = BTreeSet::from([ColRef::new(t, 0), ColRef::new(t, 1), ColRef::new(t, 2)]);
        let q = Query::single(
            t,
            vec![
                SelPred::eq(ColRef::new(t, 0), 7i64),
                SelPred::eq(ColRef::new(t, 1), 3i64),
                SelPred::eq(ColRef::new(t, 2), 1i64),
            ],
        );
        run_query(&mut p, &db, &cfg, &q, &hot);
        assert!(p.whatif_used() <= 2, "budget respected, used {}", p.whatif_used());
        // Next query in the same epoch cannot exceed the budget either.
        run_query(&mut p, &db, &cfg, &q, &hot);
        assert!(p.whatif_used() <= 2);
    }

    #[test]
    fn zero_budget_suspends_profiling() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let mut p = Profiler::new(&ColtConfig::default());
        p.end_epoch(0);
        let col = ColRef::new(t, 0);
        let hot = BTreeSet::from([col]);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let out = run_query(&mut p, &db, &cfg, &q, &hot);
        assert!(out.probed.is_empty());
        assert_eq!(p.whatif_used(), 0);
        // Crude profiling continues regardless.
        assert!(p.candidates().contains(col));
    }

    #[test]
    fn materialized_usage_tracked() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(t, 0);
        cfg.create_index(&db, col, IndexOrigin::Online);
        let mut p = Profiler::new(&ColtConfig::default());
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let out = run_query(&mut p, &db, &cfg, &q, &BTreeSet::new());
        let cluster = out.cluster.unwrap();
        // The materialized index is used and (being in the plan) is a
        // probation candidate; its gain estimate must be positive.
        let gain = p.cluster_gain(col, cluster, GainMode::Materialized);
        assert!(gain > 0.0, "materialized gain {gain}");
    }

    #[test]
    fn epoch_benefit_weights_by_popularity() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let mut p = Profiler::new(&ColtConfig::default());
        let col = ColRef::new(t, 0);
        let hot = BTreeSet::from([col]);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        for _ in 0..5 {
            run_query(&mut p, &db, &cfg, &q, &hot);
        }
        let b = p.epoch_benefit(col, GainMode::HotConservative);
        assert!(b > 0.0);
        // Five queries of one cluster in a 12-epoch window: the benefit
        // is the window-averaged popularity times the per-query gain.
        let cluster = p.clusters().live().next().unwrap().0;
        let per_query = p.cluster_gain(col, cluster, GainMode::HotConservative);
        assert!((b - 5.0 / 12.0 * per_query).abs() < 1e-9);
    }

    #[test]
    fn end_epoch_resets_and_caps_budget() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let mut p = Profiler::new(&ColtConfig::default());
        let col = ColRef::new(t, 0);
        let hot = BTreeSet::from([col]);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        run_query(&mut p, &db, &cfg, &q, &hot);
        assert!(p.whatif_used() > 0);
        p.end_epoch(10_000);
        assert_eq!(p.whatif_used(), 0);
        assert_eq!(p.whatif_limit(), ColtConfig::default().max_whatif_per_epoch);
    }

    #[test]
    fn skip_proof_spares_redundant_probes_and_counters_balance() {
        use crate::rebudget::{CandidateInterval, DecisionContext};
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let mut p = Profiler::new(&ColtConfig::default());
        let skippable = ColRef::new(t, 0);
        let fresh = ColRef::new(t, 1);
        let hot = BTreeSet::from([skippable, fresh]);
        // Price `skippable` so it cannot fit the storage budget: the
        // knapsack is identical at both interval ends, the probe is
        // provably redundant. `fresh` stays unpriced (uninformative
        // bounds) and must be probed.
        let mut ctx = DecisionContext::new(1, 0.0);
        ctx.insert(
            skippable,
            CandidateInterval { size: 100, lo: 0.0, hi: 1e12, mat_cost: 0.0 },
        );
        p.install_context(ctx);
        let q = Query::single(
            t,
            vec![SelPred::eq(skippable, 7i64), SelPred::eq(fresh, 3i64)],
        );
        colt_obs::install(colt_obs::Recorder::new(colt_obs::Level::Summary));
        let out = run_query(&mut p, &db, &cfg, &q, &hot);
        let snap = colt_obs::take().unwrap().into_snapshot();

        assert_eq!(out.probed, vec![fresh], "only the uninformative candidate is probed");
        assert_eq!(p.whatif_used(), 1, "the skipped probe charged nothing");
        assert_eq!(p.whatif_skipped(), 1);
        // Pinned counter invariant: every considered candidate is either
        // issued or skipped.
        let issued = snap.counters.get("tuner.whatif.issued").copied().unwrap_or(0);
        let skipped = snap.counters.get("tuner.whatif.skipped").copied().unwrap_or(0);
        let considered = snap.counters.get("tuner.whatif.considered").copied().unwrap_or(0);
        assert_eq!(issued, 1);
        assert_eq!(skipped, 1);
        assert_eq!(issued + skipped, considered);
        // The skip leaves an auditable ledger record.
        assert_eq!(snap.ledger.of_kind("whatif_skip").count(), 1);
        // Epoch close resets the per-epoch skip counter and drops the
        // stale frame.
        p.end_epoch(10);
        assert_eq!(p.whatif_skipped(), 0);
    }

    #[test]
    fn dynamic_rebudget_off_ignores_installed_contexts() {
        use crate::rebudget::{CandidateInterval, DecisionContext};
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let config = ColtConfig { dynamic_rebudget: false, ..Default::default() };
        let mut p = Profiler::new(&config);
        let col = ColRef::new(t, 0);
        let mut ctx = DecisionContext::new(1, 0.0);
        ctx.insert(col, CandidateInterval { size: 100, lo: 0.0, hi: 1e12, mat_cost: 0.0 });
        p.install_context(ctx);
        let hot = BTreeSet::from([col]);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let out = run_query(&mut p, &db, &cfg, &q, &hot);
        assert_eq!(out.probed, vec![col], "with skip-proofs off every probe is issued");
        assert_eq!(p.whatif_skipped(), 0);
    }

    #[test]
    fn freed_budget_flows_to_widest_interval_candidates() {
        use crate::rebudget::{CandidateInterval, DecisionContext};
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        // Budget of one probe, two hot candidates: the narrower-interval
        // candidate must yield to the wider one under the context sort.
        let config = ColtConfig { max_whatif_per_epoch: 1, ..Default::default() };
        let mut p = Profiler::new(&config);
        let narrow = ColRef::new(t, 0);
        let wide = ColRef::new(t, 1);
        let hot = BTreeSet::from([narrow, wide]);
        // One slot in the frame's knapsack, held by an incumbent both
        // candidates straddle: neither proof fires, so admission order
        // is purely the uncertainty sort.
        let mut ctx = DecisionContext::new(10, 0.0);
        ctx.insert(
            ColRef::new(t, 2),
            CandidateInterval { size: 10, lo: 100.0, hi: 100.0, mat_cost: 0.0 },
        );
        ctx.insert(narrow, CandidateInterval { size: 10, lo: 50.0, hi: 150.0, mat_cost: 0.0 });
        ctx.insert(wide, CandidateInterval { size: 10, lo: 10.0, hi: 400.0, mat_cost: 0.0 });
        p.install_context(ctx);
        let q = Query::single(t, vec![SelPred::eq(narrow, 7i64), SelPred::eq(wide, 3i64)]);
        let out = run_query(&mut p, &db, &cfg, &q, &hot);
        assert_eq!(out.probed, vec![wide], "widest interval is probed first");
    }

    #[test]
    fn profiled_index_count_counts_sampled_only() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let mut p = Profiler::new(&ColtConfig::default());
        assert_eq!(p.profiled_index_count(), 0);
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        // Not hot, not materialized → crude only, no accurate profile.
        run_query(&mut p, &db, &cfg, &q, &BTreeSet::new());
        assert_eq!(p.profiled_index_count(), 0);
        run_query(&mut p, &db, &cfg, &q, &BTreeSet::from([col]));
        assert_eq!(p.profiled_index_count(), 1);
    }
}
