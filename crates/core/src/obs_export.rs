//! Bridging `colt_obs` snapshots into the repo's [`Json`] writer.
//!
//! `colt-obs` sits below every other crate and cannot depend on the
//! JSON module; this adapter lives in `colt-core` instead, so harness
//! and bench code can embed metrics snapshots in EXPERIMENTS.md-style
//! artifacts and CI can round-trip the event sink's output through the
//! same strict parser that validates run summaries.

use crate::json::Json;
use colt_obs::{DecisionRecord, Event, FieldValue, Histogram, Snapshot};

/// An event as a JSON value: `{"event": kind, ...fields}` — the same
/// shape [`Event::jsonl`] prints, built structurally.
pub fn event_json(event: &Event) -> Json {
    let mut pairs: Vec<(String, Json)> =
        vec![("event".to_string(), Json::Str(event.kind.to_string()))];
    for (k, v) in &event.fields {
        let j = match v {
            FieldValue::U64(n) => Json::UInt(*n),
            FieldValue::I64(n) => Json::Int(*n),
            FieldValue::F64(f) if f.is_finite() => Json::Float(*f),
            FieldValue::F64(_) => Json::Null,
            FieldValue::Str(s) => Json::Str(s.clone()),
            FieldValue::Bool(b) => Json::Bool(*b),
        };
        pairs.push((k.to_string(), j));
    }
    Json::Obj(pairs)
}

fn histogram_json(h: &Histogram) -> Json {
    let cumulative = h.cumulative();
    let buckets: Vec<Json> = cumulative
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let le = match h.bounds().get(i) {
                Some(b) => Json::Float(*b),
                None => Json::Str("+Inf".to_string()),
            };
            Json::obj(vec![("le", le), ("count", Json::UInt(c))])
        })
        .collect();
    Json::obj(vec![
        ("buckets", Json::Arr(buckets)),
        ("sum", Json::Float(h.sum())),
        ("count", Json::UInt(h.count())),
    ])
}

/// A decision-ledger record as a JSON value:
/// `{"decision": kind, "epoch": N, ...fields}` — the same shape
/// [`DecisionRecord::jsonl`] prints, built structurally.
pub fn decision_json(record: &DecisionRecord) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("decision".to_string(), Json::Str(record.kind.to_string())),
        ("epoch".to_string(), Json::UInt(record.epoch)),
    ];
    for (k, v) in &record.fields {
        let j = match v {
            FieldValue::U64(n) => Json::UInt(*n),
            FieldValue::I64(n) => Json::Int(*n),
            FieldValue::F64(f) if f.is_finite() => Json::Float(*f),
            FieldValue::F64(_) => Json::Null,
            FieldValue::Str(s) => Json::Str(s.clone()),
            FieldValue::Bool(b) => Json::Bool(*b),
        };
        pairs.push((k.to_string(), j));
    }
    Json::Obj(pairs)
}

/// The decision kinds the snapshot serializer accounts for, written
/// out literally — not borrowed from `colt_obs::LEDGER_KINDS` — so the
/// `decision-kind` lint can hold this serializer to the full kind set;
/// the `ledger_counts_cover_every_kind` test keeps the two tables in
/// lockstep.
const LEDGER_COUNT_KINDS: &[&str] = &[
    "whatif_probe",
    "whatif_skip",
    "cluster_assign",
    "knapsack",
    "index_create",
    "index_drop",
    "budget_change",
];

/// Record counts per decision kind, every kind always present (zero
/// when unseen): a kind whose records stop flowing diffs as `0`, not as
/// a silently missing key.
fn ledger_counts_json(snap: &Snapshot) -> Json {
    Json::Obj(
        LEDGER_COUNT_KINDS
            .iter()
            .map(|k| (k.to_string(), Json::UInt(snap.ledger.of_kind(k).count() as u64)))
            .collect(),
    )
}

/// A full metrics snapshot as one JSON object: counters, gauges,
/// histograms, span timings, the retained event stream, and the flight
/// recorder (decision ledger + per-kind counts + per-epoch time
/// series).
pub fn snapshot_json(snap: &Snapshot) -> Json {
    let counters =
        Json::Obj(snap.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect());
    let gauges = Json::Obj(snap.gauges.iter().map(|(k, v)| (k.clone(), Json::Float(*v))).collect());
    let hists =
        Json::Obj(snap.hists.iter().map(|(k, h)| (k.clone(), histogram_json(h))).collect());
    let spans = Json::Obj(
        snap.spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("count", Json::UInt(s.count)),
                        ("wall_ms", Json::Float(s.wall_ms())),
                        ("sim_ms", Json::Float(s.sim_ms)),
                    ]),
                )
            })
            .collect(),
    );
    let events = Json::Arr(snap.events.iter().map(event_json).collect());
    let ledger = Json::Arr(snap.ledger.records().map(decision_json).collect());
    let series = Json::Arr(
        snap.series
            .points()
            .map(|p| {
                Json::obj(vec![
                    ("epoch", Json::UInt(p.epoch)),
                    (
                        "counters",
                        Json::Obj(
                            p.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect(),
                        ),
                    ),
                    (
                        "sim_ms",
                        Json::Obj(
                            p.sim_ms.iter().map(|(k, v)| (k.clone(), Json::Float(*v))).collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", hists),
        ("spans", spans),
        ("events", events),
        ("ledger", ledger),
        ("ledger_counts", ledger_counts_json(snap)),
        ("series", series),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_obs::{Level, Recorder};

    #[test]
    fn snapshot_round_trips_through_parser() {
        let mut r = Recorder::new(Level::Full);
        r.add_counter("storage.btree.lookups", 41);
        r.set_gauge("threads", 2.0);
        r.observe("h", 12.0);
        r.record_span("engine.execute", 3_000_000);
        r.record_span_sim("engine.execute", 7.5);
        r.record_event(Event::new("epoch").field("epoch", 0u64).field("ratio", 1.5));
        let snap = r.into_snapshot();
        let text = snapshot_json(&snap).pretty();
        let back = crate::json::parse(&text).expect("snapshot JSON must parse");
        assert_eq!(
            back.get("counters").and_then(|c| c.get("storage.btree.lookups")).and_then(Json::as_u64),
            Some(41)
        );
        let span = back.get("spans").and_then(|s| s.get("engine.execute")).unwrap();
        assert_eq!(span.get("count").and_then(Json::as_u64), Some(1));
        let ev = back.get("events").and_then(|e| e.idx(0)).unwrap();
        assert_eq!(ev.get("event").and_then(Json::as_str), Some("epoch"));
    }

    #[test]
    fn event_json_matches_jsonl_bytes() {
        // The structural and textual renderings must agree, because CI
        // parses the textual sink with the strict parser.
        let e = Event::new("cell_finish")
            .field("cell", 3u64)
            .field("label", "COLT")
            .field("wall_ms", 12.5)
            .field("ok", true)
            .field("delta", -1i64);
        let parsed = crate::json::parse(&e.jsonl()).expect("jsonl must parse");
        assert_eq!(parsed, event_json(&e));
    }

    #[test]
    fn flight_recorder_round_trips_through_parser() {
        let mut r = Recorder::new(Level::Summary);
        r.record_decision(
            DecisionRecord::new("knapsack")
                .field("chosen", "t0.c0")
                .field("budget_pages", 34u64)
                .field("free_value", 1.5),
        );
        r.add_counter("engine.op.seq_scan", 4);
        r.mark_epoch(0);
        let snap = r.into_snapshot();
        let text = snapshot_json(&snap).pretty();
        let back = crate::json::parse(&text).expect("snapshot JSON must parse");
        let d = back.get("ledger").and_then(|l| l.idx(0)).unwrap();
        assert_eq!(d.get("decision").and_then(Json::as_str), Some("knapsack"));
        assert_eq!(d.get("budget_pages").and_then(Json::as_u64), Some(34));
        let p = back.get("series").and_then(|s| s.idx(0)).unwrap();
        assert_eq!(p.get("epoch").and_then(Json::as_u64), Some(0));
        assert_eq!(
            p.get("counters").and_then(|c| c.get("engine.op.seq_scan")).and_then(Json::as_u64),
            Some(4)
        );
        // Structural and textual renderings agree record-for-record.
        for rec in snap.ledger.records() {
            let parsed = crate::json::parse(&rec.jsonl()).expect("record jsonl parses");
            assert_eq!(parsed, decision_json(rec));
        }
    }

    #[test]
    fn ledger_counts_cover_every_kind() {
        let ours: Vec<&str> = LEDGER_COUNT_KINDS.to_vec();
        let theirs: Vec<&str> = colt_obs::LEDGER_KINDS.iter().map(|(k, _)| *k).collect();
        assert_eq!(ours, theirs, "obs_export must count exactly colt_obs::LEDGER_KINDS");

        let mut r = Recorder::new(Level::Summary);
        r.record_decision(DecisionRecord::new("index_create").field("index", "t0.c0"));
        let snap = r.into_snapshot();
        let back = crate::json::parse(&snapshot_json(&snap).pretty()).unwrap();
        let counts = back.get("ledger_counts").unwrap();
        assert_eq!(counts.get("index_create").and_then(Json::as_u64), Some(1));
        assert_eq!(counts.get("whatif_probe").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn whole_float_fields_survive_the_round_trip() {
        let e = Event::new("t").field("ms", 5.0);
        let parsed = crate::json::parse(&e.jsonl()).unwrap();
        assert_eq!(parsed.get("ms"), Some(&Json::Float(5.0)));
        assert_eq!(parsed, event_json(&e));
    }
}
