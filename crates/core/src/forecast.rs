//! Benefit forecasting for `NetBenefit` (paper §5).
//!
//! The Self-Organizer predicts, from the benefit an index delivered in
//! the past `h` epochs, the benefit it will deliver in each of the next
//! `h` epochs:
//!
//! ```text
//! NetBenefit(I) = Σ_{j=1..h} PredBenefit_j(I) − MatCost(I)
//! ```
//!
//! The paper's exact forecasting function lives in an unavailable tech
//! report; DESIGN.md documents this reconstruction. We use a
//! recency-weighted level estimate: the per-epoch benefit series
//! `b_1 … b_k` (most recent first) is averaged with geometric weights
//! `λ^(i-1)` and the level is projected flat over the horizon. The
//! reconstruction preserves the three observable properties the paper
//! pins down: (a) the forecast of an unused index converges to zero,
//! (b) the estimator's memory window is `h` epochs — which is why noise
//! bursts comparable to the window length hurt (paper §6.2, "Effect of
//! Noise"), and (c) recent epochs dominate, enabling fast adaptation.

/// Recency-weighted level of a benefit series (most recent first) over
/// a window of `window` epochs. A series shorter than the window is
/// implicitly padded with zeros: an index whose measurements only
/// started a few epochs ago had zero benefit before that, and treating
/// the missing history as anything else would extrapolate a single
/// bursty epoch over the whole forecast horizon.
pub fn level(series: &[f64], decay: f64, window: usize) -> f64 {
    let window = window.max(series.len());
    if window == 0 {
        // No history and no window: the weighted sum would be 0/0. An
        // index nobody measured over zero epochs has level zero, and
        // returning NaN here would poison `predicted_total` and
        // `net_benefit` downstream.
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    let mut w = 1.0;
    for i in 0..window {
        num += w * series.get(i).copied().unwrap_or(0.0);
        den += w;
        w *= decay;
    }
    num / den
}

/// `Σ_{j=1..horizon} PredBenefit_j`: total benefit forecast over the next
/// `horizon` epochs (a flat projection of the level).
pub fn predicted_total(series: &[f64], decay: f64, horizon: usize) -> f64 {
    level(series, decay, horizon) * horizon as f64
}

/// `NetBenefit(I)`: forecasted total benefit minus the materialization
/// cost (`mat_cost` must be 0 for an already-materialized index).
pub fn net_benefit(series: &[f64], decay: f64, horizon: usize, mat_cost: f64) -> f64 {
    predicted_total(series, decay, horizon) - mat_cost
}

/// Forecast from a series whose entries are already window-smoothed
/// (each entry is `Count(Q_i)/h`-weighted, i.e. averaged over the
/// memory window): the most recent entry *is* the level, and smoothing
/// it again would double-damp the forecast — reaction to a workload
/// shift would ramp quadratically instead of linearly with the shift's
/// age. Projects the latest level flat over the horizon.
pub fn net_benefit_from_smoothed(series: &[f64], horizon: usize, mat_cost: f64) -> f64 {
    series.first().copied().unwrap_or(0.0) * horizon as f64 - mat_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_predicts_zero() {
        assert_eq!(level(&[], 0.8, 12), 0.0);
        assert_eq!(predicted_total(&[], 0.8, 12), 0.0);
    }

    #[test]
    fn zero_window_empty_series_is_zero_not_nan() {
        // Regression: with no history AND a zero window nothing clamps
        // the denominator, so this used to rely on an implicit max(1);
        // the contract is an explicit 0.0, never NaN.
        let l = level(&[], 0.8, 0);
        assert_eq!(l, 0.0);
        assert!(l.is_finite());
        assert_eq!(predicted_total(&[], 0.8, 0), 0.0);
        // NaN would propagate into NetBenefit and wreck the knapsack
        // ordering; an empty forecast must cost exactly the mat cost.
        assert_eq!(net_benefit(&[], 0.8, 0, 5.0), -5.0);
    }

    #[test]
    fn constant_series_predicts_constant() {
        let s = [5.0; 12];
        assert!((level(&s, 0.8, 12) - 5.0).abs() < 1e-12);
        assert!((predicted_total(&s, 0.8, 12) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn recent_epochs_dominate() {
        // Benefit just appeared (recent high, old zero) vs just vanished.
        let rising = [10.0, 10.0, 0.0, 0.0, 0.0, 0.0];
        let falling = [0.0, 0.0, 0.0, 0.0, 10.0, 10.0];
        assert!(level(&rising, 0.8, 6) > level(&falling, 0.8, 6) * 2.0);
    }

    #[test]
    fn unused_index_converges_to_zero() {
        // An index that stopped being useful: zeros keep arriving at the
        // front and old benefits age out of the h-window.
        let mut series: Vec<f64> = vec![10.0; 12];
        for _ in 0..12 {
            series.insert(0, 0.0);
            series.truncate(12);
        }
        assert_eq!(level(&series, 0.8, 12), 0.0);
    }

    #[test]
    fn net_benefit_subtracts_mat_cost() {
        let s = [10.0; 12];
        let nb = net_benefit(&s, 0.8, 12, 50.0);
        assert!((nb - 70.0).abs() < 1e-9);
        // Materialized index (mat_cost = 0) keeps the full forecast.
        assert!((net_benefit(&s, 0.8, 12, 0.0) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn decay_one_is_plain_average() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert!((level(&s, 1.0, 4) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn smoothed_series_uses_latest_level() {
        assert_eq!(net_benefit_from_smoothed(&[], 12, 5.0), -5.0);
        let s = [30.0, 90.0, 120.0];
        // 30 × 12 − 60 = 300.
        assert!((net_benefit_from_smoothed(&s, 12, 60.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn short_series_padded_with_zeros() {
        // One strong epoch must NOT be extrapolated over the horizon.
        let s = [1200.0];
        assert!((level(&s, 1.0, 12) - 100.0).abs() < 1e-9);
        assert!((predicted_total(&s, 1.0, 12) - 1200.0).abs() < 1e-9);
    }
}
