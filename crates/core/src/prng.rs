//! COLT's deterministic PRNG — a re-export of the shared SplitMix64
//! generator in [`colt_storage::prng`].
//!
//! COLT's adaptive profiling samples `(index, cluster)` pairs with
//! computed probabilities (paper §4.2). Using the workspace's
//! self-contained generator keeps the tuner's decisions bit-reproducible
//! and keeps the whole build free of third-party runtime dependencies.

pub use colt_storage::prng::Prng;
