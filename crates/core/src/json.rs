//! A minimal, dependency-free JSON value: writer and parser.
//!
//! The reproduction's only serialization needs are the EXPERIMENTS.md
//! artifacts — run summaries and epoch traces. A ~200-line hand-rolled
//! JSON module keeps those artifacts while letting the whole workspace
//! build with no registry access (no `serde`). The writer is
//! deterministic: identical values render to identical bytes, which is
//! what the parallel harness's byte-identity guarantee rests on.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without a decimal point).
    Int(i64),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A float (always rendered with a decimal point or exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-print with two-space indentation (the artifact format).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(f) => out.push_str(&format_float(*f)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` iff this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Json::Arr(_))
    }

    /// Numeric value as `f64` (from any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, when non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::UInt(u) => Some(*u),
            Json::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn format_float(f: f64) -> String {
    if !f.is_finite() {
        // JSON has no infinities; artifacts never produce them, but
        // render something parseable rather than panicking.
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (strict enough for the artifacts we emit).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 sequences from the raw input.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>().map(Json::Float).map_err(|e| e.to_string())
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Json::Int).map_err(|e| e.to_string())
        } else {
            text.parse::<u64>().map(Json::UInt).map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fig5".into())),
            ("count", Json::UInt(20)),
            ("delta", Json::Int(-3)),
            ("ratio", Json::Float(1.25)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("series", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(vec![])),
            ("child", Json::obj(vec![("x", Json::Float(2.0))])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn writer_is_deterministic() {
        let doc = Json::obj(vec![("a", Json::Float(0.1 + 0.2)), ("b", Json::UInt(7))]);
        assert_eq!(doc.pretty(), doc.pretty());
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(Json::Float(3.0).pretty(), "3.0");
        assert_eq!(Json::Float(3.5).pretty(), "3.5");
        assert_eq!(Json::UInt(3).pretty(), "3");
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let doc = Json::Str("a\"b\\c\nd\tµß€".into());
        let back = parse(&doc.pretty()).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"policy": "COLT", "queries": 60, "whatif": [20, 5], "t": 1.5}"#)
            .expect("parses");
        assert_eq!(doc.get("policy").and_then(Json::as_str), Some("COLT"));
        assert_eq!(doc.get("queries").and_then(Json::as_u64), Some(60));
        assert!(doc.get("whatif").is_some_and(Json::is_array));
        assert_eq!(doc.get("whatif").and_then(|w| w.idx(1)).and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("t").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{} extra").is_err());
    }
}
