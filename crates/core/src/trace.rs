//! Run tracing: per-epoch records of COLT's internal decisions.
//!
//! The trace is what the benchmark harness reads to regenerate the
//! paper's Figure 5 (what-if calls per epoch) and to audit
//! materialization churn, budget regulation, and profiling coverage.

use crate::json::Json;
use colt_catalog::ColRef;

/// One epoch's worth of tuner activity.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// What-if calls performed during the epoch.
    pub whatif_used: u64,
    /// The budget `#WI_lim` that was in force.
    pub whatif_limit: u64,
    /// Probes proven redundant by skip-proofs and skipped (charging
    /// nothing against the budget).
    pub whatif_skipped: u64,
    /// Budget granted to the next epoch by re-budgeting.
    pub next_budget: u64,
    /// Re-budgeting ratio `r`.
    pub ratio: f64,
    /// Aggregate `NetBenefit(M)`.
    pub net_benefit_m: f64,
    /// Aggregate best-case `NetBenefit(M′)`.
    pub net_benefit_m_prime: f64,
    /// Materialized set after reorganization.
    pub materialized: Vec<ColRef>,
    /// Indices built at this boundary.
    pub created: Vec<ColRef>,
    /// Indices dropped at this boundary.
    pub dropped: Vec<ColRef>,
    /// Hot set for the next epoch.
    pub hot: Vec<ColRef>,
    /// Simulated milliseconds spent building indices at this boundary.
    pub build_millis: f64,
    /// Live candidates in `C`.
    pub candidate_count: usize,
    /// Query clusters tracked.
    pub cluster_count: usize,
}

/// A complete run trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an epoch record.
    pub fn push(&mut self, record: EpochRecord) {
        self.epochs.push(record);
    }

    /// What-if calls per epoch — the series of the paper's Figure 5.
    pub fn whatif_per_epoch(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.whatif_used).collect()
    }

    /// Total what-if calls over the run.
    pub fn total_whatif(&self) -> u64 {
        self.epochs.iter().map(|e| e.whatif_used).sum()
    }

    /// Total index builds over the run.
    pub fn total_builds(&self) -> usize {
        self.epochs.iter().map(|e| e.created.len()).sum()
    }

    /// Serialize to JSON (for EXPERIMENTS.md artifacts).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![(
            "epochs".to_string(),
            Json::Arr(self.epochs.iter().map(EpochRecord::to_json_value).collect()),
        )])
        .pretty()
    }

    /// The epoch axis a per-epoch table must span: the trace's closed
    /// epochs, extended to cover every epoch the flight recorder saw
    /// (the ledger and time series also record the trailing partial
    /// epoch — queries after the last boundary — which closes no
    /// [`EpochRecord`]).
    pub fn epoch_axis(&self, obs: &colt_obs::Snapshot) -> u64 {
        let ledger = obs.ledger.max_epoch().map_or(0, |e| e + 1);
        let series = obs.series.max_epoch().map_or(0, |e| e + 1);
        (self.epochs.len() as u64).max(ledger).max(series)
    }

    /// Fold a run's span timings into the per-epoch records: each epoch's
    /// JSON gains an `"overhead_wall_ms"` field (the run's total
    /// tuner-side wall time — profiling plus epoch closing — amortized
    /// evenly over the epochs; spans are run-scoped, not epoch-tagged),
    /// and the summary carries the raw per-span totals alongside.
    ///
    /// The rows span [`Trace::epoch_axis`]: epochs the flight recorder
    /// saw but that closed no trace record (the trailing partial epoch,
    /// or runs shorter than one epoch) appear as explicit zero rows, so
    /// this table always aligns row-for-row with the ledger's and time
    /// series' epoch axis.
    pub fn overhead_summary(&self, obs: &colt_obs::Snapshot) -> Json {
        // Top-level tuner spans only: `profiler.profile` covers the
        // per-query work (clustering, crude and what-if profiling are
        // nested inside it) and `tuner.epoch` covers boundary work
        // (reorganization, knapsack, re-budgeting). Summing nested spans
        // too would double-count.
        let tuner_wall_ms = obs.span_wall_ms("profiler.profile") + obs.span_wall_ms("tuner.epoch");
        let axis = self.epoch_axis(obs);
        let per_epoch = tuner_wall_ms / axis.max(1) as f64;
        let epochs: Vec<Json> = (0..axis)
            .map(|i| {
                let mut v = match self.epochs.get(i as usize) {
                    Some(e) => e.to_json_value(),
                    None => EpochRecord::zero(i).to_json_value(),
                };
                if let Json::Obj(pairs) = &mut v {
                    pairs.push(("overhead_wall_ms".to_string(), Json::Float(per_epoch)));
                }
                v
            })
            .collect();
        let spans = Json::Obj(
            obs.spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("count", Json::UInt(s.count)),
                            ("wall_ms", Json::Float(s.wall_ms())),
                            ("sim_ms", Json::Float(s.sim_ms)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("tuner_wall_ms", Json::Float(tuner_wall_ms)),
            ("epochs", Json::Arr(epochs)),
            ("spans", spans),
        ])
    }
}

/// Render a column reference as `{"table": t, "column": c}`.
fn colref_json(c: &ColRef) -> Json {
    Json::obj(vec![
        ("table", Json::UInt(c.table.0 as u64)),
        ("column", Json::UInt(c.column as u64)),
    ])
}

fn colrefs_json(cols: &[ColRef]) -> Json {
    Json::Arr(cols.iter().map(colref_json).collect())
}

impl EpochRecord {
    /// An explicit zero row for an epoch with no closed trace record
    /// (used to pad per-epoch tables out to the flight recorder's
    /// epoch axis).
    pub fn zero(epoch: u64) -> Self {
        EpochRecord {
            epoch,
            whatif_used: 0,
            whatif_limit: 0,
            whatif_skipped: 0,
            next_budget: 0,
            ratio: 0.0,
            net_benefit_m: 0.0,
            net_benefit_m_prime: 0.0,
            materialized: vec![],
            created: vec![],
            dropped: vec![],
            hot: vec![],
            build_millis: 0.0,
            candidate_count: 0,
            cluster_count: 0,
        }
    }

    /// The record as a JSON value (one element of the trace artifact).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("epoch", Json::UInt(self.epoch)),
            ("whatif_used", Json::UInt(self.whatif_used)),
            ("whatif_limit", Json::UInt(self.whatif_limit)),
            ("whatif_skipped", Json::UInt(self.whatif_skipped)),
            ("next_budget", Json::UInt(self.next_budget)),
            ("ratio", Json::Float(self.ratio)),
            ("net_benefit_m", Json::Float(self.net_benefit_m)),
            ("net_benefit_m_prime", Json::Float(self.net_benefit_m_prime)),
            ("materialized", colrefs_json(&self.materialized)),
            ("created", colrefs_json(&self.created)),
            ("dropped", colrefs_json(&self.dropped)),
            ("hot", colrefs_json(&self.hot)),
            ("build_millis", Json::Float(self.build_millis)),
            ("candidate_count", Json::UInt(self.candidate_count as u64)),
            ("cluster_count", Json::UInt(self.cluster_count as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::TableId;

    fn record(epoch: u64, whatif: u64, created: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            whatif_used: whatif,
            whatif_limit: 20,
            whatif_skipped: 0,
            next_budget: 10,
            ratio: 1.1,
            net_benefit_m: 100.0,
            net_benefit_m_prime: 110.0,
            materialized: vec![],
            created: (0..created).map(|i| ColRef::new(TableId(0), i as u32)).collect(),
            dropped: vec![],
            hot: vec![],
            build_millis: 0.0,
            candidate_count: 3,
            cluster_count: 2,
        }
    }

    #[test]
    fn aggregations() {
        let mut t = Trace::new();
        t.push(record(0, 20, 2));
        t.push(record(1, 5, 0));
        t.push(record(2, 0, 1));
        assert_eq!(t.whatif_per_epoch(), vec![20, 5, 0]);
        assert_eq!(t.total_whatif(), 25);
        assert_eq!(t.total_builds(), 3);
    }

    #[test]
    fn overhead_summary_pads_to_the_flight_recorder_axis() {
        let mut t = Trace::new();
        t.push(record(0, 20, 1));
        // The flight recorder saw a trailing partial epoch (epoch 1)
        // that closed no trace record.
        let mut rec = colt_obs::Recorder::new(colt_obs::Level::Summary);
        rec.add_counter("engine.op.hash_join", 3);
        rec.mark_epoch(0);
        rec.add_counter("engine.op.hash_join", 1);
        rec.mark_epoch(1);
        let obs = rec.into_snapshot();
        assert_eq!(t.epoch_axis(&obs), 2);
        let summary = t.overhead_summary(&obs);
        let epochs = summary.get("epochs").and_then(Json::as_array).unwrap();
        assert_eq!(epochs.len(), 2, "zero row for the partial epoch");
        assert_eq!(epochs[1].get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(epochs[1].get("whatif_used").and_then(Json::as_u64), Some(0));
        // Without flight-recorder data the axis is just the trace.
        assert_eq!(t.epoch_axis(&colt_obs::Snapshot::default()), 1);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Trace::new();
        t.push(record(0, 7, 1));
        let json = t.to_json();
        let back = crate::json::parse(&json).unwrap();
        let epochs = back.get("epochs").expect("epochs key");
        assert_eq!(epochs.as_array().unwrap().len(), 1);
        let first = epochs.idx(0).unwrap();
        assert_eq!(first.get("whatif_used").and_then(Json::as_u64), Some(7));
        assert_eq!(
            first.get("created").and_then(|c| c.idx(0)).and_then(|c| c.get("column")).and_then(Json::as_u64),
            Some(0)
        );
    }
}
