//! Query clustering (paper §4.1, `QueryGain_H`).
//!
//! The Profiler maintains a clustering `Q_1 … Q_K` of query occurrences
//! in the memory window `S_h`: two queries belong to the same cluster
//! when they access the same tables, have the same join predicates, and
//! restrict the same attributes with selectivity factors in the same
//! range. The paper uses two ranges — 0–2% ("selective") and 2–100% —
//! and so do we.
//!
//! Each cluster tracks how many queries it represented in each of the
//! last `h` epochs, so `Count(Q_i)` (its popularity within the memory
//! window) and the current-epoch count are both cheap to read.

use colt_catalog::{ColRef, Database, TableId};
use colt_engine::selectivity::predicate_selectivity;
use colt_engine::{JoinPred, Query};
use std::collections::{BTreeMap, VecDeque};

/// Identifier of a cluster within a [`ClusterSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

/// Selectivity bucket of one restricted attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SelBucket {
    /// Selectivity in `[0, boundary)` — the paper's 0–2% range.
    Selective,
    /// Selectivity in `[boundary, 1]`.
    NonSelective,
}

/// The identity of a cluster.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterKey {
    /// Accessed tables, sorted.
    pub tables: Vec<TableId>,
    /// Join predicates, sorted (already normalized by `JoinPred::new`).
    pub joins: Vec<JoinPred>,
    /// Restricted attributes with their selectivity buckets, sorted.
    pub attrs: Vec<(ColRef, SelBucket)>,
}

impl ClusterKey {
    /// Derive the key of a query, bucketing each selection predicate's
    /// estimated selectivity at `boundary`.
    pub fn of(db: &Database, query: &Query, boundary: f64) -> Self {
        let mut tables = query.tables.clone();
        tables.sort_unstable();
        let mut joins = query.joins.clone();
        joins.sort_unstable();
        let mut attrs: Vec<(ColRef, SelBucket)> = query
            .selections
            .iter()
            .map(|p| {
                let sel = predicate_selectivity(db, p);
                let bucket =
                    if sel < boundary { SelBucket::Selective } else { SelBucket::NonSelective };
                (p.col, bucket)
            })
            .collect();
        attrs.sort_unstable_by_key(|(c, b)| (*c, matches!(b, SelBucket::NonSelective)));
        attrs.dedup();
        ClusterKey { tables, joins, attrs }
    }

    /// Columns this cluster restricts — the indices "relevant to" the
    /// cluster in the profiling algorithm.
    pub fn restricted_columns(&self) -> impl Iterator<Item = ColRef> + '_ {
        self.attrs.iter().map(|(c, _)| *c)
    }
}

/// One cluster with its per-epoch popularity counts.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Cluster identity.
    pub key: ClusterKey,
    /// Per-epoch counts, most recent epoch first; index 0 is the epoch
    /// in progress. Bounded by the history depth `h`.
    counts: VecDeque<u64>,
}

impl Cluster {
    /// Queries of this cluster seen in the epoch in progress.
    pub fn current_epoch_count(&self) -> u64 {
        self.counts.front().copied().unwrap_or(0)
    }

    /// `Count(Q_i)`: queries represented within the whole memory window.
    pub fn window_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-epoch counts, most recent first.
    pub fn epoch_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.iter().copied()
    }
}

/// The set of clusters over the memory window.
#[derive(Debug, Clone)]
pub struct ClusterSet {
    // BTreeMap rather than HashMap: the map is lookup-only today, but a
    // hash-keyed field in a kernel crate is one refactor away from
    // reintroducing nondeterministic iteration (colt-analyze enforces this).
    by_key: BTreeMap<ClusterKey, ClusterId>,
    clusters: Vec<Cluster>,
    history_epochs: usize,
    selective_boundary: f64,
}

impl ClusterSet {
    /// Empty set with the given memory depth and selectivity boundary.
    pub fn new(history_epochs: usize, selective_boundary: f64) -> Self {
        ClusterSet {
            by_key: BTreeMap::new(),
            clusters: Vec::new(),
            history_epochs: history_epochs.max(1),
            selective_boundary,
        }
    }

    /// Assign a query to its (unique) cluster, creating the cluster on
    /// first sight, and bump the current epoch count.
    pub fn assign(&mut self, db: &Database, query: &Query) -> ClusterId {
        let key = ClusterKey::of(db, query, self.selective_boundary);
        let id = match self.by_key.get(&key) {
            Some(&id) => id,
            None => {
                let id = ClusterId(self.clusters.len() as u32);
                let mut counts = VecDeque::with_capacity(self.history_epochs);
                counts.push_front(0);
                self.clusters.push(Cluster { key: key.clone(), counts });
                self.by_key.insert(key, id);
                id
            }
        };
        // colt: allow(panic-policy) — counts is non-empty by construction (push_front on creation and in roll_epoch)
        *self.clusters[id.0 as usize].counts.front_mut().expect("current epoch slot") += 1;
        id
    }

    /// Borrow a cluster.
    pub fn get(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0 as usize]
    }

    /// All clusters with a nonzero window count.
    pub fn live(&self) -> impl Iterator<Item = (ClusterId, &Cluster)> + '_ {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.window_count() > 0)
            .map(|(i, c)| (ClusterId(i as u32), c))
    }

    /// Number of clusters ever created (the paper bounds this by `w·h`).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether no cluster exists yet.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The memory depth `h`.
    pub fn history_epochs(&self) -> usize {
        self.history_epochs
    }

    /// Close the epoch: open a fresh per-epoch slot on every cluster and
    /// drop counts older than `h` epochs.
    pub fn roll_epoch(&mut self) {
        for c in &mut self.clusters {
            c.counts.push_front(0);
            while c.counts.len() > self.history_epochs {
                c.counts.pop_back();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableSchema};
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let a = db.add_table(TableSchema::new(
            "a",
            vec![Column::new("id", ValueType::Int), Column::new("g", ValueType::Int)],
        ));
        let b = db.add_table(TableSchema::new("b", vec![Column::new("id", ValueType::Int)]));
        db.insert_rows(a, (0..10_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 4)])));
        db.insert_rows(b, (0..100i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();
        (db, a, b)
    }

    #[test]
    fn same_shape_same_cluster() {
        let (db, a, _) = db();
        let mut cs = ClusterSet::new(12, 0.02);
        let q1 = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 5i64)]);
        let q2 = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 999i64)]);
        let c1 = cs.assign(&db, &q1);
        let c2 = cs.assign(&db, &q2);
        assert_eq!(c1, c2, "same table/attr/selectivity bucket");
        assert_eq!(cs.get(c1).current_epoch_count(), 2);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn different_selectivity_bucket_splits_cluster() {
        let (db, a, _) = db();
        let mut cs = ClusterSet::new(12, 0.02);
        // id is unique → eq is selective (1e-4 < 2%).
        let sel = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 5i64)]);
        // g has 4 distinct values → eq is 25% (non-selective).
        let unsel = Query::single(a, vec![SelPred::eq(ColRef::new(a, 1), 2i64)]);
        let c1 = cs.assign(&db, &sel);
        let c2 = cs.assign(&db, &unsel);
        assert_ne!(c1, c2);
    }

    #[test]
    fn same_attr_different_bucket_splits() {
        let (db, a, _) = db();
        let mut cs = ClusterSet::new(12, 0.02);
        let narrow = Query::single(a, vec![SelPred::between(ColRef::new(a, 0), 0i64, 9i64)]);
        let wide = Query::single(a, vec![SelPred::between(ColRef::new(a, 0), 0i64, 9000i64)]);
        assert_ne!(cs.assign(&db, &narrow), cs.assign(&db, &wide));
    }

    #[test]
    fn joins_distinguish_clusters() {
        let (db, a, b) = db();
        let mut cs = ClusterSet::new(12, 0.02);
        let solo = Query::single(a, vec![]);
        let joined = Query::join(
            vec![a, b],
            vec![JoinPred::new(ColRef::new(a, 0), ColRef::new(b, 0))],
            vec![],
        );
        assert_ne!(cs.assign(&db, &solo), cs.assign(&db, &joined));
    }

    #[test]
    fn window_counts_roll_and_expire() {
        let (db, a, _) = db();
        let mut cs = ClusterSet::new(3, 0.02);
        let q = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 1i64)]);
        let id = cs.assign(&db, &q);
        cs.assign(&db, &q);
        assert_eq!(cs.get(id).window_count(), 2);
        cs.roll_epoch();
        cs.assign(&db, &q);
        assert_eq!(cs.get(id).current_epoch_count(), 1);
        assert_eq!(cs.get(id).window_count(), 3);
        // After h more epochs the old counts age out.
        cs.roll_epoch();
        cs.roll_epoch();
        cs.roll_epoch();
        assert_eq!(cs.get(id).window_count(), 0);
        assert_eq!(cs.live().count(), 0);
    }

    #[test]
    fn restricted_columns_listed() {
        let (db, a, _) = db();
        let q = Query::single(
            a,
            vec![SelPred::eq(ColRef::new(a, 0), 1i64), SelPred::eq(ColRef::new(a, 1), 1i64)],
        );
        let key = ClusterKey::of(&db, &q, 0.02);
        let cols: Vec<_> = key.restricted_columns().collect();
        assert_eq!(cols, vec![ColRef::new(a, 0), ColRef::new(a, 1)]);
    }
}
