//! 0/1 knapsack solver used by the Self-Organizer to pick the
//! materialized set (paper §5): objects are the indices in `H ∪ M`, the
//! knapsack size is the storage budget `B`, each object occupies
//! `IndexSize(I)` units and provides `NetBenefit(I)` units of value.
//!
//! The solver is an exact dynamic program over discretized sizes. When
//! the budget is too fine-grained for an exact DP to be cheap, sizes are
//! rescaled to a bounded number of buckets (rounding sizes *up*, so the
//! solution never violates the true budget).

/// One knapsack item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Size in budget units (pages).
    pub size: u64,
    /// Value; items with non-positive value are never selected.
    pub value: f64,
}

/// Capacity granularity above which sizes are rescaled.
const MAX_CAPACITY_STEPS: u64 = 8192;

/// Solve the 0/1 knapsack, returning the indices of the chosen items
/// (ascending) — the new materialized set.
///
/// # Examples
///
/// ```
/// use colt_core::knapsack::{solve, Item};
///
/// let items = [
///     Item { size: 10, value: 60.0 },
///     Item { size: 20, value: 100.0 },
///     Item { size: 30, value: 120.0 },
/// ];
/// assert_eq!(solve(&items, 50), vec![1, 2]);
/// ```
pub fn solve(items: &[Item], capacity: u64) -> Vec<usize> {
    // Zero-size items with positive value are always worth taking; filter
    // them in directly and solve for the rest.
    let mut always = Vec::new();
    let mut rest: Vec<(usize, Item)> = Vec::new();
    for (i, &it) in items.iter().enumerate() {
        if it.value <= 0.0 {
            continue;
        }
        if it.size == 0 {
            always.push(i);
        } else if it.size <= capacity {
            rest.push((i, it));
        }
    }
    if rest.is_empty() {
        return always;
    }

    // Rescale sizes when the capacity is too fine-grained. Rescaling
    // rounds sizes up (never violates the true budget) but can cost a
    // few percent of value; with few items an exact subset enumeration
    // is cheaper than the DP anyway, so prefer it whenever rescaling
    // would otherwise lose precision.
    let scale = capacity.div_ceil(MAX_CAPACITY_STEPS).max(1);
    if scale > 1 && rest.len() <= 20 {
        let n = rest.len();
        let mut best_mask = 0usize;
        let mut best_value = 0.0f64;
        // Gray-code walk: consecutive masks differ in exactly one item,
        // so each subset is scored with one add/remove instead of a full
        // O(n) re-sum. Only the winning mask escapes this loop — callers
        // recompute totals from the items — so the running float
        // accumulation cannot leak drift into reported values.
        let mut prev_gray = 0usize;
        let (mut size, mut value) = (0u64, 0.0f64);
        for k in 1usize..(1 << n) {
            let gray = k ^ (k >> 1);
            let j = (gray ^ prev_gray).trailing_zeros() as usize;
            let it = &rest[j].1;
            if gray & (1 << j) != 0 {
                size += it.size;
                value += it.value;
            } else {
                size -= it.size;
                value -= it.value;
            }
            prev_gray = gray;
            if size <= capacity && value > best_value {
                best_value = value;
                best_mask = gray;
            }
        }
        let mut out = always;
        for (j, (i, _)) in rest.iter().enumerate() {
            if best_mask & (1 << j) != 0 {
                out.push(*i);
            }
        }
        out.sort_unstable();
        return out;
    }
    let cap = (capacity / scale) as usize;
    let sizes: Vec<usize> = rest.iter().map(|(_, it)| (it.size.div_ceil(scale)) as usize).collect();

    // DP over capacities. Chosen sets are tracked as bitmasks (one u64
    // word per 64 items) so propagating a solution along the capacity
    // axis is a word copy, not a per-item boolean clone — the DP runs on
    // the tuner's critical path (once per skip-proof attempt), where the
    // clone-per-cell variant dominated the epoch-boundary wall time.
    let words = rest.len().div_ceil(64);
    let mut best = vec![0.0f64; cap + 1];
    let mut take = vec![0u64; (cap + 1) * words];
    for (j, &(_, it)) in rest.iter().enumerate() {
        let sz = sizes[j];
        if sz > cap {
            continue;
        }
        for c in (sz..=cap).rev() {
            let candidate = best[c - sz] + it.value;
            if candidate > best[c] {
                best[c] = candidate;
                let (src, dst) = (c - sz, c);
                for w in 0..words {
                    take[dst * words + w] = take[src * words + w];
                }
                take[dst * words + j / 64] |= 1 << (j % 64);
            }
        }
    }

    let mut out = always;
    for (j, (i, _)) in rest.iter().enumerate() {
        if take[cap * words + j / 64] & (1 << (j % 64)) != 0 {
            out.push(*i);
        }
    }
    out.sort_unstable();
    out
}

/// Total value of a selection.
pub fn total_value(items: &[Item], chosen: &[usize]) -> f64 {
    chosen.iter().map(|&i| items[i].value).sum()
}

/// Total size of a selection.
pub fn total_size(items: &[Item], chosen: &[usize]) -> u64 {
    chosen.iter().map(|&i| items[i].size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force reference for small instances.
    fn brute_force(items: &[Item], capacity: u64) -> f64 {
        let n = items.len();
        let mut best = 0.0f64;
        for mask in 0..(1u32 << n) {
            let mut size = 0u64;
            let mut value = 0.0;
            for (i, it) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    size += it.size;
                    value += it.value;
                }
            }
            if size <= capacity && value > best {
                best = value;
            }
        }
        best
    }

    #[test]
    fn simple_selection() {
        let items = vec![
            Item { size: 10, value: 60.0 },
            Item { size: 20, value: 100.0 },
            Item { size: 30, value: 120.0 },
        ];
        let chosen = solve(&items, 50);
        assert_eq!(chosen, vec![1, 2]);
        assert_eq!(total_value(&items, &chosen), 220.0);
        assert_eq!(total_size(&items, &chosen), 50);
    }

    #[test]
    fn negative_and_zero_value_items_skipped() {
        let items = vec![
            Item { size: 1, value: -5.0 },
            Item { size: 1, value: 0.0 },
            Item { size: 1, value: 3.0 },
        ];
        assert_eq!(solve(&items, 10), vec![2]);
    }

    #[test]
    fn oversized_items_skipped() {
        let items = vec![Item { size: 100, value: 1000.0 }, Item { size: 5, value: 1.0 }];
        assert_eq!(solve(&items, 10), vec![1]);
    }

    #[test]
    fn zero_size_positive_items_always_taken() {
        let items = vec![Item { size: 0, value: 1.0 }, Item { size: 5, value: 2.0 }];
        assert_eq!(solve(&items, 5), vec![0, 1]);
        assert_eq!(solve(&items, 0), vec![0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(solve(&[], 100).is_empty());
        assert!(solve(&[Item { size: 1, value: 1.0 }], 0).is_empty());
    }

    #[test]
    fn matches_brute_force_exactly_on_small_instances() {
        // Deterministic pseudo-random instances.
        let mut x = 12345u64;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for _ in 0..50 {
            let n = (next() % 10 + 1) as usize;
            let items: Vec<Item> = (0..n)
                .map(|_| Item { size: next() % 50 + 1, value: (next() % 1000) as f64 / 10.0 })
                .collect();
            let cap = next() % 120 + 1;
            let chosen = solve(&items, cap);
            assert!(total_size(&items, &chosen) <= cap, "capacity respected");
            let got = total_value(&items, &chosen);
            let want = brute_force(&items, cap);
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    fn rescaling_respects_budget_for_large_capacities() {
        let items: Vec<Item> = (0..20)
            .map(|i| Item { size: 100_000 + i * 13_337, value: (i + 1) as f64 })
            .collect();
        let cap = 1_000_000;
        let chosen = solve(&items, cap);
        assert!(total_size(&items, &chosen) <= cap);
        assert!(!chosen.is_empty());
    }
}
