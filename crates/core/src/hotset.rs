//! Hot-set selection: exact 1-D 2-means clustering of crude benefits
//! (paper §5, reorganization stage two).
//!
//! The Self-Organizer groups the smoothed `BenefitC` estimates of the
//! remaining candidates into two clusters with minimum within-cluster
//! variance; the indices in the top cluster become the new hot set. In
//! one dimension the optimal 2-clustering is a threshold on the sorted
//! values, so it can be found exactly by scanning all split points.

use colt_catalog::ColRef;

/// Split scored values into (top cluster, bottom cluster) by exact
/// 2-means. Returns the members of the top cluster, capped at `max_hot`
/// (highest benefits kept). Candidates with non-positive benefit are
/// never hot.
pub fn select_hot(benefits: &[(ColRef, f64)], max_hot: usize) -> Vec<ColRef> {
    let mut positive: Vec<(ColRef, f64)> =
        benefits.iter().copied().filter(|(_, b)| *b > 0.0).collect();
    if positive.is_empty() || max_hot == 0 {
        return Vec::new();
    }
    // Sort ascending by benefit (ties broken by column for determinism).
    positive.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

    if positive.len() == 1 {
        return vec![positive[0].0];
    }

    let values: Vec<f64> = positive.iter().map(|(_, b)| *b).collect();
    let split = best_split(&values);

    let mut hot: Vec<ColRef> = positive[split..].iter().map(|(c, _)| *c).collect();
    if hot.len() > max_hot {
        // Cap: keep the highest-benefit members.
        hot = hot[hot.len() - max_hot..].to_vec();
    } else {
        // Fill spare capacity with the best candidates below the split.
        // Without this, a top cluster of candidates that can never be
        // materialized (e.g. two near-tied large indices competing for
        // one budget slot) would starve every mid-benefit candidate of
        // accurate profiling indefinitely. The adaptive sampler still
        // prioritizes within the hot set, and the what-if budget caps
        // the added overhead.
        let spare = max_hot - hot.len();
        hot.extend(positive[..split].iter().rev().take(spare).map(|(c, _)| *c));
    }
    hot.sort_unstable();
    hot
}

/// Index `k` minimizing the total within-cluster variance of
/// `values[..k]` and `values[k..]` over sorted input; `1 <= k < n`.
fn best_split(values: &[f64]) -> usize {
    let n = values.len();
    debug_assert!(n >= 2);
    // Prefix sums for O(1) segment cost.
    let mut sum = vec![0.0; n + 1];
    let mut sumsq = vec![0.0; n + 1];
    for (i, &v) in values.iter().enumerate() {
        sum[i + 1] = sum[i] + v;
        sumsq[i + 1] = sumsq[i] + v * v;
    }
    let seg_cost = |a: usize, b: usize| -> f64 {
        // Sum of squared deviations of values[a..b].
        let len = (b - a) as f64;
        if len <= 0.0 {
            return 0.0;
        }
        let s = sum[b] - sum[a];
        let ss = sumsq[b] - sumsq[a];
        (ss - s * s / len).max(0.0)
    };
    let mut best_k = 1;
    let mut best_cost = f64::INFINITY;
    for k in 1..n {
        let cost = seg_cost(0, k) + seg_cost(k, n);
        if cost < best_cost {
            best_cost = cost;
            best_k = k;
        }
    }
    best_k
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::TableId;

    fn col(i: u32) -> ColRef {
        ColRef::new(TableId(0), i)
    }

    #[test]
    fn clear_separation_found() {
        let benefits = vec![
            (col(0), 1.0),
            (col(1), 1.2),
            (col(2), 0.9),
            (col(3), 100.0),
            (col(4), 95.0),
        ];
        // With room for exactly the top cluster, 2-means isolates it.
        let hot = select_hot(&benefits, 2);
        assert_eq!(hot, vec![col(3), col(4)]);
        // Spare capacity is filled with the next-best candidates.
        let hot = select_hot(&benefits, 4);
        assert_eq!(hot, vec![col(0), col(1), col(3), col(4)]);
        // All positive candidates fit.
        assert_eq!(select_hot(&benefits, 10).len(), 5);
    }

    #[test]
    fn nonpositive_benefits_never_hot() {
        let benefits = vec![(col(0), 0.0), (col(1), -3.0)];
        assert!(select_hot(&benefits, 10).is_empty());
    }

    #[test]
    fn single_positive_candidate_is_hot() {
        let benefits = vec![(col(0), 0.0), (col(1), 5.0)];
        assert_eq!(select_hot(&benefits, 10), vec![col(1)]);
    }

    #[test]
    fn cap_keeps_best() {
        let benefits: Vec<_> = (0..10).map(|i| (col(i), 100.0 + i as f64)).collect();
        let hot = select_hot(&benefits, 3);
        assert_eq!(hot, vec![col(7), col(8), col(9)]);
        // Non-positive candidates never fill spare slots.
        let benefits = vec![(col(0), 5.0), (col(1), 0.0), (col(2), -1.0)];
        assert_eq!(select_hot(&benefits, 3), vec![col(0)]);
    }

    #[test]
    fn uniform_values_split_somewhere() {
        let benefits: Vec<_> = (0..6).map(|i| (col(i), 10.0)).collect();
        let hot = select_hot(&benefits, 10);
        assert!(!hot.is_empty());
        assert!(hot.len() <= 6);
    }

    #[test]
    fn empty_input() {
        assert!(select_hot(&[], 10).is_empty());
        assert!(select_hot(&[(col(0), 5.0)], 0).is_empty());
    }

    #[test]
    fn split_matches_brute_force_variance() {
        let values = vec![1.0, 1.5, 2.0, 8.0, 9.0, 9.5];
        let k = best_split(&values);
        assert_eq!(k, 3, "split between 2.0 and 8.0");
    }
}
