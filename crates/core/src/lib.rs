//! # colt-core
//!
//! COLT — Continuous On-Line Tuning — as described in "On-Line Index
//! Selection for Shifting Workloads" (Schnaitter, Abiteboul, Milo,
//! Polyzotis; ICDE 2007).
//!
//! The tuner watches the query stream in epochs of `w` queries, mines
//! candidate single-column indices from selection predicates, profiles
//! them at two levels of fidelity (crude cost formulas for all of `C`;
//! sampled what-if calls with CLT confidence intervals for the hot set
//! `H` and the materialized set `M`), and at every epoch boundary
//! re-solves a 0/1 knapsack over the storage budget to decide what to
//! materialize. Its distinguishing feature is *self-regulation*: the
//! what-if budget of the next epoch follows the ratio between the
//! best-case benefit of the hot indices and the benefit of the current
//! materialized set, so profiling hibernates on stable, well-tuned
//! workloads and wakes up at phase shifts.
//!
//! Entry point: [`ColtTuner`]. Drive it with one [`ColtTuner::on_query`]
//! call per executed query.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod composite_ext;
pub mod config;
pub mod crude;
pub mod forecast;
pub mod gain;
pub mod hotset;
pub mod json;
pub mod knapsack;
pub mod obs_export;
pub mod organizer;
pub mod profiler;
pub mod prng;
pub mod rebudget;
pub mod scheduler;
pub mod trace;
pub mod tuner;

pub use cluster::{ClusterId, ClusterKey, ClusterSet, SelBucket};
pub use composite_ext::{CompositeStep, CompositeTuner};
pub use config::{ColtConfig, ColtConfigBuilder, ConfigError};
pub use gain::{GainStats, IndexClusterStats};
pub use obs_export::{event_json, snapshot_json};
pub use organizer::{ReorgDecision, SelfOrganizer};
pub use profiler::{GainMode, ProfileOutcome, Profiler};
pub use rebudget::{CandidateInterval, DecisionContext};
pub use scheduler::{AppliedChanges, MaterializationStrategy, Scheduler};
pub use trace::{EpochRecord, Trace};
pub use tuner::{ColtTuner, TunerStep};
