//! The candidate set `C` and its crude `BenefitC` statistics (paper
//! §4.1, first profiling level).
//!
//! Every column restricted by a selection predicate inside the memory
//! window `S_h` is a candidate. Each candidate accumulates the crude,
//! cost-formula-based gain estimate `QueryGain_C` per epoch; the
//! Self-Organizer reads an exponentially smoothed per-epoch benefit to
//! pick the next hot set. Candidates unseen for a TTL are evicted.

use colt_catalog::ColRef;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Crude statistics for one candidate index.
#[derive(Debug, Clone)]
pub struct CrudeCandidate {
    /// `BenefitC` totals of past epochs, most recent first.
    epoch_totals: VecDeque<f64>,
    /// Accumulator for the epoch in progress.
    current: f64,
    /// Exponentially smoothed per-epoch benefit.
    smoothed: f64,
    /// Epoch index when the candidate last appeared in a query.
    last_seen_epoch: u64,
}

impl CrudeCandidate {
    fn new(epoch: u64) -> Self {
        CrudeCandidate { epoch_totals: VecDeque::new(), current: 0.0, smoothed: 0.0, last_seen_epoch: epoch }
    }

    /// Smoothed per-epoch crude benefit.
    pub fn smoothed(&self) -> f64 {
        self.smoothed
    }

    /// Crude totals of finished epochs, most recent first.
    pub fn history(&self) -> impl Iterator<Item = f64> + '_ {
        self.epoch_totals.iter().copied()
    }

    /// Smoothed benefit including the epoch in progress — what the
    /// Self-Organizer reads, since reorganization runs before the epoch
    /// rolls.
    pub fn projected(&self, alpha: f64) -> f64 {
        alpha * self.current + (1.0 - alpha) * self.smoothed
    }
}

/// The candidate set `C`.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    candidates: BTreeMap<ColRef, CrudeCandidate>,
    history_epochs: usize,
    smoothing_alpha: f64,
    ttl_epochs: u64,
    epoch: u64,
}

impl CandidateSet {
    /// Empty candidate set.
    pub fn new(history_epochs: usize, smoothing_alpha: f64, ttl_epochs: usize) -> Self {
        CandidateSet {
            candidates: BTreeMap::new(),
            history_epochs: history_epochs.max(1),
            smoothing_alpha,
            ttl_epochs: ttl_epochs.max(1) as u64,
            epoch: 0,
        }
    }

    /// Record a crude gain estimate for a candidate observed in the
    /// current query (creates the candidate on first sight).
    pub fn add_gain(&mut self, col: ColRef, gain: f64) {
        let epoch = self.epoch;
        let c = self.candidates.entry(col).or_insert_with(|| CrudeCandidate::new(epoch));
        c.current += gain.max(0.0);
        c.last_seen_epoch = epoch;
    }

    /// Note that a candidate appeared (even with zero crude gain), so it
    /// stays alive in `C`.
    pub fn touch(&mut self, col: ColRef) {
        let epoch = self.epoch;
        let c = self.candidates.entry(col).or_insert_with(|| CrudeCandidate::new(epoch));
        c.last_seen_epoch = epoch;
    }

    /// Number of live candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the candidate set is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Is the column currently a candidate?
    pub fn contains(&self, col: ColRef) -> bool {
        self.candidates.contains_key(&col)
    }

    /// Borrow a candidate's crude statistics.
    pub fn get(&self, col: ColRef) -> Option<&CrudeCandidate> {
        self.candidates.get(&col)
    }

    /// Smoothed per-epoch benefit of every live candidate (including
    /// the epoch in progress), in deterministic column order.
    pub fn smoothed_benefits(&self) -> Vec<(ColRef, f64)> {
        let a = self.smoothing_alpha;
        self.candidates.iter().map(|(c, s)| (*c, s.projected(a))).collect()
    }

    /// Projected smoothed benefit of one candidate.
    pub fn projected_benefit(&self, col: ColRef) -> f64 {
        self.candidates.get(&col).map(|c| c.projected(self.smoothing_alpha)).unwrap_or(0.0)
    }

    /// Close the epoch: fold the in-progress accumulator into the
    /// history, update the smoothed level, and evict candidates unseen
    /// for the TTL.
    pub fn roll_epoch(&mut self) {
        let alpha = self.smoothing_alpha;
        let h = self.history_epochs;
        let ttl = self.ttl_epochs;
        for c in self.candidates.values_mut() {
            let total = std::mem::take(&mut c.current);
            c.epoch_totals.push_front(total);
            while c.epoch_totals.len() > h {
                c.epoch_totals.pop_back();
            }
            c.smoothed = alpha * total + (1.0 - alpha) * c.smoothed;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.candidates.retain(|_, c| epoch.saturating_sub(c.last_seen_epoch) < ttl);
    }

    /// Index of the epoch in progress.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::TableId;

    fn col(i: u32) -> ColRef {
        ColRef::new(TableId(0), i)
    }

    #[test]
    fn gains_accumulate_within_epoch() {
        let mut c = CandidateSet::new(12, 0.5, 12);
        c.add_gain(col(0), 10.0);
        c.add_gain(col(0), 5.0);
        c.roll_epoch();
        let cand = c.get(col(0)).unwrap();
        assert_eq!(cand.history().next(), Some(15.0));
        assert!((cand.smoothed() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn negative_gains_clamped() {
        let mut c = CandidateSet::new(12, 0.5, 12);
        c.add_gain(col(0), -10.0);
        c.roll_epoch();
        assert_eq!(c.get(col(0)).unwrap().history().next(), Some(0.0));
    }

    #[test]
    fn smoothing_decays_old_signal() {
        let mut c = CandidateSet::new(12, 0.5, 100);
        c.add_gain(col(0), 100.0);
        c.roll_epoch();
        let peak = c.get(col(0)).unwrap().smoothed();
        c.touch(col(0));
        for _ in 0..5 {
            c.roll_epoch();
            // keep candidate alive
            c.touch(col(0));
        }
        let decayed = c.get(col(0)).unwrap().smoothed();
        assert!(decayed < peak / 10.0, "decayed {decayed} vs peak {peak}");
    }

    #[test]
    fn ttl_evicts_stale_candidates() {
        let mut c = CandidateSet::new(12, 0.5, 3);
        c.add_gain(col(0), 1.0);
        for _ in 0..2 {
            c.roll_epoch();
        }
        assert!(c.contains(col(0)));
        c.roll_epoch();
        assert!(!c.contains(col(0)), "unseen for ttl epochs");
        assert!(c.is_empty());
    }

    #[test]
    fn touch_keeps_alive() {
        let mut c = CandidateSet::new(12, 0.5, 2);
        c.add_gain(col(0), 1.0);
        for _ in 0..6 {
            c.roll_epoch();
            c.touch(col(0));
        }
        assert!(c.contains(col(0)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn history_bounded_by_h() {
        let mut c = CandidateSet::new(3, 0.5, 100);
        for i in 0..10 {
            c.add_gain(col(0), i as f64);
            c.roll_epoch();
            c.touch(col(0));
        }
        assert_eq!(c.get(col(0)).unwrap().history().count(), 3);
    }
}
