//! The Self-Organizer (paper §5): reorganization and re-budgeting at
//! every epoch boundary.
//!
//! **Reorganization.** The new materialized set is the solution of a 0/1
//! KNAPSACK over `H ∪ M`: the knapsack size is the storage budget `B`,
//! each index occupies `IndexSize(I)` pages and provides
//! `NetBenefit(I) = Σ_j PredBenefit_j(I) − MatCost(I)` units of value
//! (`MatCost = 0` for an already-materialized index). The hot set for
//! the next epoch is then chosen from the remaining candidates by exact
//! 2-means clustering of their smoothed crude benefits.
//!
//! **Re-budgeting.** The potential of the current hot indices is
//! assessed under a best-case scenario: their benefits are replaced by
//! the upper confidence bounds and the knapsack is solved again, giving
//! an alternative set `M′`. The what-if budget of the next epoch follows
//! the ratio `r = NetBenefit(M′) / NetBenefit(M)`: profiling is
//! suspended at `r = 1` and maxed out at `r ≥ 1.3`, linear in between.
//! This is the mechanism that lets COLT hibernate on stable workloads
//! and wake up at phase shifts.

use crate::config::ColtConfig;
use crate::forecast;
use crate::hotset::select_hot;
use crate::knapsack::{self, Item};
use crate::profiler::{GainMode, Profiler};
use crate::rebudget::{CandidateInterval, DecisionContext};
use colt_catalog::{ColRef, Database, PhysicalConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Per-epoch benefit series for one index: conservative and optimistic
/// totals, most recent epoch first.
#[derive(Debug, Clone, Default)]
struct BenefitSeries {
    conservative: VecDeque<f64>,
    optimistic: VecDeque<f64>,
}

/// The decision produced at an epoch boundary.
#[derive(Debug, Clone)]
pub struct ReorgDecision {
    /// The new materialized set (on-line indices only).
    pub new_materialized: BTreeSet<ColRef>,
    /// Indices to build (in `new_materialized`, not yet materialized).
    pub to_create: Vec<ColRef>,
    /// Indices to drop (materialized on-line, not in the new set).
    pub to_drop: Vec<ColRef>,
    /// The hot set for the next epoch.
    pub new_hot: BTreeSet<ColRef>,
    /// What-if budget for the next epoch (`#WI_lim`).
    pub next_budget: u64,
    /// The re-budgeting ratio `r = NetBenefit(M′)/NetBenefit(M)`.
    pub ratio: f64,
    /// Aggregate `NetBenefit(M)` under normal estimates.
    pub net_benefit_m: f64,
    /// Aggregate `NetBenefit(M′)` under the best-case scenario.
    pub net_benefit_m_prime: f64,
    /// Per-candidate value intervals for next epoch's what-if
    /// skip-proofs (see [`crate::rebudget`]): every priced index in
    /// `H ∪ M` plus the freshly selected hot columns, bracketed by the
    /// conservative and best-case knapsack values computed above.
    pub context: DecisionContext,
}

/// The Self-Organizer.
#[derive(Debug)]
pub struct SelfOrganizer {
    history_epochs: usize,
    budget_pages: u64,
    max_whatif: u64,
    full_budget_ratio: f64,
    max_hot: usize,
    swap_margin: f64,
    self_regulation: bool,
    // BTreeMap: `.retain` iterates the map, and kernel state must never
    // depend on hash order.
    series: BTreeMap<ColRef, BenefitSeries>,
}

impl SelfOrganizer {
    /// Build from the COLT configuration.
    pub fn new(config: &ColtConfig) -> Self {
        SelfOrganizer {
            history_epochs: config.history_epochs,
            budget_pages: config.storage_budget_pages,
            max_whatif: config.max_whatif_per_epoch,
            full_budget_ratio: config.full_budget_ratio,
            max_hot: config.max_hot_set,
            swap_margin: config.swap_margin,
            self_regulation: config.self_regulation,
            series: BTreeMap::new(),
        }
    }

    /// Estimated cost (in cost units) of materializing an index on
    /// `col`: a sequential heap scan, an external sort, and the index
    /// page writes — mirroring `colt_catalog::build_index`'s charges.
    pub fn estimated_mat_cost(db: &Database, col: ColRef) -> f64 {
        let t = db.table(col.table);
        let n = t.heap.row_count() as f64;
        let pages = t.heap.page_count() as f64;
        let est = db.index_estimate(col);
        let c = &db.cost;
        let sort_ops = if n > 1.0 { n * n.log2() } else { 0.0 };
        c.seq_page_cost * pages
            + c.cpu_tuple_cost * n
            + c.cpu_operator_cost * sort_ops
            + c.page_write_cost * est.pages as f64
    }

    /// Fold the finished epoch's measured benefits into the per-index
    /// series for every index in `H ∪ M`, and age out series of indices
    /// that left both sets.
    pub fn record_epoch(
        &mut self,
        profiler: &Profiler,
        config: &PhysicalConfig,
        hot: &BTreeSet<ColRef>,
    ) {
        let mut active: BTreeSet<ColRef> = hot.clone();
        active.extend(config.online_columns());

        self.series.retain(|col, _| active.contains(col));
        for &col in &active {
            let (cons, opt) = if config.contains(col) {
                let b = profiler.epoch_benefit(col, GainMode::Materialized);
                (b, b)
            } else {
                (
                    profiler.epoch_benefit(col, GainMode::HotConservative),
                    profiler.epoch_benefit(col, GainMode::HotOptimistic),
                )
            };
            let s = self.series.entry(col).or_default();
            s.conservative.push_front(cons);
            s.optimistic.push_front(opt);
            while s.conservative.len() > self.history_epochs {
                s.conservative.pop_back();
                s.optimistic.pop_back();
            }
        }
    }

    /// Net benefit of an index from its recorded series.
    fn net_benefit_of(
        &self,
        db: &Database,
        config: &PhysicalConfig,
        profiler: &Profiler,
        col: ColRef,
        optimistic: bool,
    ) -> f64 {
        let mat_cost = if config.contains(col) { 0.0 } else { Self::estimated_mat_cost(db, col) };
        let series: Vec<f64> = match self.series.get(&col) {
            Some(s) if optimistic => s.optimistic.iter().copied().collect(),
            Some(s) => s.conservative.iter().copied().collect(),
            None => Vec::new(),
        };
        // Series entries are window-averaged (see
        // `Profiler::epoch_benefit`), so the latest entry is the level.
        let forecast_nb = forecast::net_benefit_from_smoothed(&series, self.history_epochs, mat_cost);
        if optimistic && !config.contains(col) {
            // A hot index that has not been what-if-profiled yet carries
            // no accurate signal; its best case is its crude estimate
            // projected over the horizon. This is what drives the budget
            // up when a workload shift surfaces new candidates.
            let crude = profiler.candidates().projected_benefit(col);
            let crude_nb = crude * self.history_epochs as f64 - mat_cost;
            forecast_nb.max(crude_nb)
        } else {
            forecast_nb
        }
    }

    /// Size in pages an index (would) occupy.
    fn index_pages(db: &Database, config: &PhysicalConfig, col: ColRef) -> u64 {
        match config.get(col) {
            Some(m) => m.tree.page_count() as u64,
            None => db.index_estimate(col).pages,
        }
    }

    /// Run reorganization + re-budgeting at an epoch boundary.
    pub fn reorganize(
        &mut self,
        db: &Database,
        config: &PhysicalConfig,
        profiler: &Profiler,
        hot: &BTreeSet<ColRef>,
    ) -> ReorgDecision {
        let _span = colt_obs::span("organizer.reorganize");
        self.record_epoch(profiler, config, hot);

        let online: BTreeSet<ColRef> = config.online_columns().collect();
        let mut pool: Vec<ColRef> = online.union(hot).copied().collect();
        pool.sort_unstable();

        // --- Reorganization: knapsack under normal estimates. ---
        let items: Vec<Item> = pool
            .iter()
            .map(|&col| Item {
                size: Self::index_pages(db, config, col),
                value: self.net_benefit_of(db, config, profiler, col, false),
            })
            .collect();
        // Free solution: the unconstrained knapsack optimum.
        let free_chosen = {
            let _s = colt_obs::span("organizer.knapsack");
            knapsack::solve(&items, self.budget_pages)
        };
        let free_value = knapsack::total_value(&items, &free_chosen);

        // Keep solution: incumbents with positive net benefit stay (the
        // paper's converge-to-zero drop path remains open), and the
        // remaining capacity is filled with the best additions.
        let kept: Vec<usize> = (0..pool.len())
            .filter(|&i| online.contains(&pool[i]) && items[i].value > 0.0)
            .collect();
        let kept_pages: u64 = kept.iter().map(|&i| items[i].size).sum();
        let spare = self.budget_pages.saturating_sub(kept_pages);
        let addition_items: Vec<Item> = (0..pool.len())
            .map(|i| {
                if online.contains(&pool[i]) {
                    Item { size: items[i].size, value: 0.0 } // never re-added
                } else {
                    items[i]
                }
            })
            .collect();
        let additions = {
            let _s = colt_obs::span("organizer.knapsack");
            knapsack::solve(&addition_items, spare)
        };
        let keep_value = kept.iter().map(|&i| items[i].value).sum::<f64>()
            + knapsack::total_value(&addition_items, &additions);

        // Hysteresis: adopt the free solution (which may swap incumbents
        // out for new builds) only when it clearly beats keeping the
        // incumbents and merely adding. The per-epoch benefit estimates
        // fluctuate with the query mix, and re-solving the knapsack on
        // every epoch would otherwise thrash between near-tied indices,
        // paying a build each time.
        let adopted_free = free_value > keep_value * (1.0 + self.swap_margin) + 1e-9;
        let (new_materialized, net_benefit_m): (BTreeSet<ColRef>, f64) = if adopted_free {
            (free_chosen.iter().map(|&i| pool[i]).collect(), free_value)
        } else {
            let set: BTreeSet<ColRef> =
                kept.iter().chain(additions.iter()).map(|&i| pool[i]).collect();
            (set, keep_value)
        };

        let to_create: Vec<ColRef> =
            new_materialized.iter().copied().filter(|c| !online.contains(c)).collect();
        let to_drop: Vec<ColRef> =
            online.iter().copied().filter(|c| !new_materialized.contains(c)).collect();

        let spent_pages: u64 = (0..pool.len())
            .filter(|i| new_materialized.contains(&pool[*i]))
            .map(|i| items[i].size)
            .sum();
        colt_obs::counter("tuner.budget.spent", spent_pages);
        if colt_obs::is_enabled() {
            let candidates = pool
                .iter()
                .zip(&items)
                .map(|(col, it)| format!("{col}:{}:{:.3}", it.size, it.value))
                .collect::<Vec<_>>()
                .join("|");
            let chosen =
                new_materialized.iter().map(ColRef::to_string).collect::<Vec<_>>().join("|");
            colt_obs::decision(
                colt_obs::DecisionRecord::new("knapsack")
                    .field("candidates", candidates)
                    .field("chosen", chosen)
                    .field("budget_pages", self.budget_pages)
                    .field("spent_pages", spent_pages)
                    .field("free_value", free_value)
                    .field("keep_value", keep_value)
                    .field("adopted", if adopted_free { "free" } else { "keep" }),
            );
        }

        // --- Hot-set selection from the remaining candidates. ---
        let benefits: Vec<(ColRef, f64)> = profiler
            .candidates()
            .smoothed_benefits()
            .into_iter()
            .filter(|(c, _)| !new_materialized.contains(c) && !config.contains(*c))
            .collect();
        let new_hot: BTreeSet<ColRef> = select_hot(&benefits, self.max_hot).into_iter().collect();

        // --- Re-budgeting: best-case knapsack. ---
        let _rebudget = colt_obs::span("organizer.rebudget");
        let opt_items: Vec<Item> = pool
            .iter()
            .map(|&col| Item {
                size: Self::index_pages(db, config, col),
                value: self.net_benefit_of(db, config, profiler, col, !online.contains(&col)),
            })
            .collect();
        let opt_chosen = {
            let _s = colt_obs::span("organizer.knapsack");
            knapsack::solve(&opt_items, self.budget_pages)
        };
        let mut net_benefit_m_prime = knapsack::total_value(&opt_items, &opt_chosen);
        // Fresh hot indices (selected just now, never profiled) also
        // belong to the best-case scenario of the *next* epoch.
        for &col in new_hot.iter().filter(|c| !pool.contains(c)) {
            let v = self.net_benefit_of(db, config, profiler, col, true);
            if v > 0.0 {
                net_benefit_m_prime += v;
            }
        }

        // --- Decision context for next epoch's skip-proofs. ---
        // The reorganization values (conservative) and the best-case
        // values (optimistic) already bracket what a probe can change;
        // package them with the budget so the Profiler can prove
        // individual probes redundant. The per-query→net-benefit scale
        // is the memory window's query count (epoch benefit is at most
        // `total/h · g`, projected over the `h`-epoch horizon).
        let total_window: u64 =
            profiler.clusters().live().map(|(_, c)| c.window_count()).sum();
        let mut context = DecisionContext::new(self.budget_pages, total_window as f64);
        for (i, &col) in pool.iter().enumerate() {
            let mat_cost =
                if config.contains(col) { 0.0 } else { Self::estimated_mat_cost(db, col) };
            context.insert(
                col,
                CandidateInterval {
                    size: items[i].size,
                    lo: items[i].value,
                    hi: opt_items[i].value,
                    mat_cost,
                },
            );
        }
        for &col in new_hot.iter().filter(|c| !pool.contains(c)) {
            context.insert(
                col,
                CandidateInterval {
                    size: Self::index_pages(db, config, col),
                    lo: self.net_benefit_of(db, config, profiler, col, false),
                    hi: self.net_benefit_of(db, config, profiler, col, true),
                    mat_cost: Self::estimated_mat_cost(db, col),
                },
            );
        }

        let eps = 1e-9;
        let ratio = if net_benefit_m > eps {
            (net_benefit_m_prime / net_benefit_m).max(1.0)
        } else if net_benefit_m_prime > eps {
            self.full_budget_ratio
        } else {
            1.0
        };
        let span = self.full_budget_ratio - 1.0;
        // A degenerate configuration (`full_budget_ratio <= 1.0`) leaves
        // no ramp to interpolate over: `(ratio - 1)/0` is NaN, NaN
        // survives `clamp`, and `NaN as u64` is 0 — which would silently
        // zero the next epoch's what-if budget. Degenerate means "always
        // run at full intensity".
        let frac =
            if span <= 0.0 { 1.0 } else { ((ratio - 1.0) / span).clamp(0.0, 1.0) };
        let next_budget = if self.self_regulation {
            (self.max_whatif as f64 * frac).round() as u64
        } else {
            // Ablation: a fixed-intensity tuner that always spends the
            // full what-if budget, like the prior work the paper
            // contrasts against (§1, "the on-line process operates with
            // the same intensity even if the system cannot be tuned to
            // work better").
            self.max_whatif
        };

        ReorgDecision {
            new_materialized,
            to_create,
            to_drop,
            new_hot,
            next_budget,
            ratio,
            net_benefit_m,
            net_benefit_m_prime,
            context,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, IndexOrigin, TableId, TableSchema};
    use colt_engine::{Eqo, Query, SelPred};
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("grp", ValueType::Int),
                Column::new("w", ValueType::Int),
            ],
        ));
        db.insert_rows(
            t,
            (0..30_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 30), Value::Int(i % 3)])),
        );
        db.analyze_all();
        (db, t)
    }

    fn profile_n(
        profiler: &mut Profiler,
        db: &Database,
        cfg: &PhysicalConfig,
        q: &Query,
        hot: &BTreeSet<ColRef>,
        n: usize,
    ) {
        let mut eqo = Eqo::new(db);
        for _ in 0..n {
            let plan = eqo.optimize(q, cfg);
            profiler.profile_query(db, cfg, &mut eqo, q, &plan, hot);
        }
    }

    #[test]
    fn profitable_hot_index_gets_materialized() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let col = ColRef::new(t, 0);
        let colt_cfg = ColtConfig { storage_budget_pages: 10_000, ..Default::default() };
        let mut profiler = Profiler::new(&colt_cfg);
        let mut org = SelfOrganizer::new(&colt_cfg);
        let hot = BTreeSet::from([col]);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        // Several epochs of consistent, strong evidence.
        let mut decision = None;
        for _ in 0..4 {
            profile_n(&mut profiler, &db, &cfg, &q, &hot, 10);
            decision = Some(org.reorganize(&db, &cfg, &profiler, &hot));
            profiler.end_epoch(colt_cfg.max_whatif_per_epoch);
        }
        let d = decision.unwrap();
        assert!(d.new_materialized.contains(&col), "net benefit {:?}", d.net_benefit_m);
        assert_eq!(d.to_create, vec![col]);
    }

    #[test]
    fn useless_materialized_index_dropped_after_benefit_decays() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(t, 0);
        cfg.create_index(&db, col, IndexOrigin::Online);
        let colt_cfg = ColtConfig::default();
        let mut profiler = Profiler::new(&colt_cfg);
        let mut org = SelfOrganizer::new(&colt_cfg);
        let hot = BTreeSet::new();
        // Queries that never touch the indexed column.
        let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 1), 3i64)]);
        let mut last = None;
        for _ in 0..3 {
            profile_n(&mut profiler, &db, &cfg, &q, &hot, 10);
            last = Some(org.reorganize(&db, &cfg, &profiler, &hot));
            profiler.end_epoch(colt_cfg.max_whatif_per_epoch);
        }
        let d = last.unwrap();
        assert!(!d.new_materialized.contains(&col), "unused index must not survive");
        assert_eq!(d.to_drop, vec![col]);
    }

    #[test]
    fn budget_suspended_when_stable_and_tuned() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(t, 0);
        cfg.create_index(&db, col, IndexOrigin::Online);
        let colt_cfg = ColtConfig::default();
        let mut profiler = Profiler::new(&colt_cfg);
        let mut org = SelfOrganizer::new(&colt_cfg);
        let hot = BTreeSet::new();
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let mut d = None;
        for _ in 0..3 {
            profile_n(&mut profiler, &db, &cfg, &q, &hot, 10);
            d = Some(org.reorganize(&db, &cfg, &profiler, &hot));
            profiler.end_epoch(d.as_ref().unwrap().next_budget);
        }
        let d = d.unwrap();
        // Well-tuned, no hot candidates that could beat M → hibernate.
        assert!(d.ratio < 1.05, "ratio {}", d.ratio);
        assert_eq!(d.next_budget, 0, "profiling suspended");
    }

    #[test]
    fn degenerate_full_budget_ratio_keeps_full_budget() {
        // Regression: full_budget_ratio == 1.0 made the re-budget ramp
        // span zero, so frac = (ratio-1)/0 = NaN, and `NaN as u64` = 0
        // silently zeroed the next epoch's what-if budget.
        // ColtConfig::validate rejects the value, but SelfOrganizer can
        // be constructed from an unvalidated config; the degenerate case
        // must mean "always full budget", never 0.
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let colt_cfg = ColtConfig { full_budget_ratio: 1.0, ..Default::default() };
        let profiler = Profiler::new(&colt_cfg);
        let mut org = SelfOrganizer::new(&colt_cfg);
        // A promising candidate (ratio path: net_benefit_m' > 0 = m)
        // exercises the interpolation with the zero-width span.
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let mut profiler = profiler;
        profile_n(&mut profiler, &db, &cfg, &q, &BTreeSet::new(), 10);
        let d = org.reorganize(&db, &cfg, &profiler, &BTreeSet::new());
        assert_eq!(
            d.next_budget, colt_cfg.max_whatif_per_epoch,
            "degenerate ramp must pin the budget at full intensity"
        );
    }

    #[test]
    fn budget_wakes_up_on_new_promising_candidates() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let colt_cfg = ColtConfig::default();
        let mut profiler = Profiler::new(&colt_cfg);
        let mut org = SelfOrganizer::new(&colt_cfg);
        // Epoch of selective queries on an unindexed column → candidate
        // with large crude benefit appears.
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        profile_n(&mut profiler, &db, &cfg, &q, &BTreeSet::new(), 10);
        let d = org.reorganize(&db, &cfg, &profiler, &BTreeSet::new());
        assert!(d.new_hot.contains(&col), "promising candidate becomes hot");
        assert!(d.next_budget > 0, "budget must wake up, got {}", d.next_budget);
    }

    #[test]
    fn decision_context_prices_pool_and_fresh_hot_candidates() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        let colt_cfg = ColtConfig::default();
        let mut profiler = Profiler::new(&colt_cfg);
        let mut org = SelfOrganizer::new(&colt_cfg);
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        profile_n(&mut profiler, &db, &cfg, &q, &BTreeSet::new(), 10);
        let d = org.reorganize(&db, &cfg, &profiler, &BTreeSet::new());
        assert!(d.new_hot.contains(&col));
        // The freshly selected hot candidate is priced into the frame
        // with a normalized, crude-projected interval: wide enough that
        // its first probe is never skipped.
        let it = *d.context.interval(col).expect("fresh hot candidate priced");
        assert!(it.hi >= it.lo);
        assert!(it.hi > 0.0, "crude projection must drive the upper bound");
        assert!(it.mat_cost > 0.0);
        assert_eq!(d.context.len(), d.new_hot.len(), "pool is empty in this run");

        // Once the candidate is hot and profiled, the next boundary
        // prices it from the pool with the measured interval.
        profiler.end_epoch(d.next_budget);
        profile_n(&mut profiler, &db, &cfg, &q, &d.new_hot, 10);
        let d2 = org.reorganize(&db, &cfg, &profiler, &d.new_hot);
        let it2 = *d2.context.interval(col).expect("pool candidate priced");
        assert!(it2.hi >= it2.lo);
    }

    #[test]
    fn mat_cost_positive_and_scales() {
        let (db, t) = setup();
        let c = SelfOrganizer::estimated_mat_cost(&db, ColRef::new(t, 0));
        assert!(c > 0.0);
        // An index on a table twice the size must cost more.
        let mut db2 = Database::new();
        let t2 = db2.add_table(TableSchema::new("u", vec![Column::new("a", ValueType::Int)]));
        db2.insert_rows(t2, (0..60_000i64).map(|i| row_from(vec![Value::Int(i)])));
        db2.analyze_all();
        assert!(SelfOrganizer::estimated_mat_cost(&db2, ColRef::new(t2, 0)) > c);
    }

    #[test]
    fn budget_respects_storage_limit() {
        let (db, t) = setup();
        let cfg = PhysicalConfig::new();
        // Budget too small for any index on this table.
        let colt_cfg = ColtConfig { storage_budget_pages: 1, ..Default::default() };
        let mut profiler = Profiler::new(&colt_cfg);
        let mut org = SelfOrganizer::new(&colt_cfg);
        let col = ColRef::new(t, 0);
        let hot = BTreeSet::from([col]);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        for _ in 0..3 {
            profile_n(&mut profiler, &db, &cfg, &q, &hot, 10);
            let d = org.reorganize(&db, &cfg, &profiler, &hot);
            assert!(d.new_materialized.is_empty(), "nothing fits in one page");
            profiler.end_epoch(colt_cfg.max_whatif_per_epoch);
        }
    }
}
