//! The Scheduler (paper §3): applies the Self-Organizer's
//! materialization requests to the physical configuration.
//!
//! The paper lists three strategies — immediate asynchronous builds,
//! builds during idle time, and piggybacking on future query results —
//! and adopts the first. We implement all three:
//!
//! * [`MaterializationStrategy::Immediate`] builds requested indices as
//!   soon as they are submitted; the build cost is charged to the
//!   foreground stream (the paper's measured behaviour: "the overhead of
//!   index creation contributes significantly to the execution time for
//!   COLT during this period").
//! * [`MaterializationStrategy::IdleTime`] queues requests and builds
//!   them only when the driver signals idleness, modelling deferred
//!   background materialization.
//! * [`MaterializationStrategy::Piggyback`] queues requests and builds
//!   an index when a later query sequentially scans its table anyway:
//!   the build rides on that scan, so only the sort and the index page
//!   writes are charged (the paper's third option, "using intermediate
//!   results of future queries to build indices more efficiently").
//!
//! Drops are metadata-only and always immediate.

use colt_catalog::{ColRef, Database, IndexOrigin, PhysicalConfig};
use colt_storage::IoStats;
use std::collections::VecDeque;

/// When requested indices are built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaterializationStrategy {
    /// Build as soon as requested (paper's choice).
    #[default]
    Immediate,
    /// Build only when the driver reports idle time.
    IdleTime,
    /// Build when a query's plan scans the table anyway, discounting the
    /// heap-scan component of the build cost.
    Piggyback,
}

/// Physical changes applied by one scheduler invocation.
#[derive(Debug, Clone, Default)]
pub struct AppliedChanges {
    /// Indices built, with the physical cost of each build.
    pub built: Vec<(ColRef, IoStats)>,
    /// Indices dropped.
    pub dropped: Vec<ColRef>,
}

impl AppliedChanges {
    /// Total build cost.
    pub fn total_build_io(&self) -> IoStats {
        let mut io = IoStats::new();
        for (_, b) in &self.built {
            io.accumulate(b);
        }
        io
    }
}

/// The scheduler.
#[derive(Debug, Default)]
pub struct Scheduler {
    strategy: MaterializationStrategy,
    pending: VecDeque<ColRef>,
}

impl Scheduler {
    /// Scheduler with the given strategy.
    pub fn new(strategy: MaterializationStrategy) -> Self {
        Scheduler { strategy, pending: VecDeque::new() }
    }

    /// Pending build requests (non-empty only for [`MaterializationStrategy::IdleTime`]).
    pub fn pending(&self) -> impl Iterator<Item = ColRef> + '_ {
        self.pending.iter().copied()
    }

    /// Submit the Self-Organizer's decision: drop indices immediately
    /// and build (or queue) the requested ones. Returns the changes
    /// applied right now.
    pub fn submit(
        &mut self,
        db: &Database,
        config: &mut PhysicalConfig,
        to_create: &[ColRef],
        to_drop: &[ColRef],
    ) -> AppliedChanges {
        let mut changes = AppliedChanges::default();
        for &col in to_drop {
            // A drop cancels a pending build of the same index.
            self.pending.retain(|&c| c != col);
            if config.drop_index(col) {
                changes.dropped.push(col);
            }
        }
        match self.strategy {
            MaterializationStrategy::Immediate => {
                for &col in to_create {
                    if !config.contains(col) {
                        let io = config.create_index(db, col, IndexOrigin::Online);
                        changes.built.push((col, io));
                    }
                }
            }
            MaterializationStrategy::IdleTime | MaterializationStrategy::Piggyback => {
                for &col in to_create {
                    if !config.contains(col) && !self.pending.contains(&col) {
                        self.pending.push_back(col);
                    }
                }
            }
        }
        changes
    }

    /// Signal that a query just sequentially scanned `tables` (only
    /// meaningful under [`MaterializationStrategy::Piggyback`]): build
    /// every pending index on those tables, charging the build minus the
    /// heap scan the query already paid for.
    pub fn on_seq_scan(
        &mut self,
        db: &Database,
        config: &mut PhysicalConfig,
        tables: &[colt_catalog::TableId],
    ) -> AppliedChanges {
        let mut changes = AppliedChanges::default();
        if self.strategy != MaterializationStrategy::Piggyback {
            return changes;
        }
        let ready: Vec<ColRef> =
            self.pending.iter().copied().filter(|c| tables.contains(&c.table)).collect();
        self.pending.retain(|c| !tables.contains(&c.table));
        for col in ready {
            if config.contains(col) {
                continue;
            }
            let t = db.table(col.table);
            let heap_pages = t.heap.page_count() as u64;
            let heap_rows = t.heap.row_count() as u64;
            let mut io = config.create_index(db, col, IndexOrigin::Online);
            // The query already read the heap; only sort + writes remain.
            io.seq_pages = io.seq_pages.saturating_sub(heap_pages);
            io.tuples = io.tuples.saturating_sub(heap_rows);
            changes.built.push((col, io));
        }
        changes
    }

    /// Signal idle time: build every pending request.
    pub fn on_idle(&mut self, db: &Database, config: &mut PhysicalConfig) -> AppliedChanges {
        let mut changes = AppliedChanges::default();
        while let Some(col) = self.pending.pop_front() {
            if !config.contains(col) {
                let io = config.create_index(db, col, IndexOrigin::Online);
                changes.built.push((col, io));
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableId, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("a", ValueType::Int), Column::new("b", ValueType::Int)],
        ));
        db.insert_rows(t, (0..5_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 7)])));
        db.analyze_all();
        (db, t)
    }

    #[test]
    fn immediate_builds_and_drops() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let mut sched = Scheduler::new(MaterializationStrategy::Immediate);
        let a = ColRef::new(t, 0);
        let changes = sched.submit(&db, &mut cfg, &[a], &[]);
        assert_eq!(changes.built.len(), 1);
        assert!(cfg.contains(a));
        assert!(changes.total_build_io().pages_written > 0);

        let changes = sched.submit(&db, &mut cfg, &[], &[a]);
        assert_eq!(changes.dropped, vec![a]);
        assert!(!cfg.contains(a));
    }

    #[test]
    fn duplicate_create_is_noop() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let mut sched = Scheduler::new(MaterializationStrategy::Immediate);
        let a = ColRef::new(t, 0);
        sched.submit(&db, &mut cfg, &[a], &[]);
        let v = cfg.table_version(t);
        let changes = sched.submit(&db, &mut cfg, &[a], &[]);
        assert!(changes.built.is_empty());
        assert_eq!(cfg.table_version(t), v, "no version churn from no-ops");
    }

    #[test]
    fn idle_time_defers_builds() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let mut sched = Scheduler::new(MaterializationStrategy::IdleTime);
        let a = ColRef::new(t, 0);
        let changes = sched.submit(&db, &mut cfg, &[a], &[]);
        assert!(changes.built.is_empty());
        assert!(!cfg.contains(a));
        assert_eq!(sched.pending().collect::<Vec<_>>(), vec![a]);

        let changes = sched.on_idle(&db, &mut cfg);
        assert_eq!(changes.built.len(), 1);
        assert!(cfg.contains(a));
        assert_eq!(sched.pending().count(), 0);
    }

    #[test]
    fn piggyback_waits_for_matching_scan() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let mut sched = Scheduler::new(MaterializationStrategy::Piggyback);
        let a = ColRef::new(t, 0);
        let changes = sched.submit(&db, &mut cfg, &[a], &[]);
        assert!(changes.built.is_empty());

        // A scan of an unrelated table does nothing.
        let other = colt_catalog::TableId(99);
        assert!(sched.on_seq_scan(&db, &mut cfg, &[other]).built.is_empty());
        assert!(!cfg.contains(a));

        // A scan of the right table triggers the discounted build.
        let changes = sched.on_seq_scan(&db, &mut cfg, &[t]);
        assert_eq!(changes.built.len(), 1);
        assert!(cfg.contains(a));
        let io = &changes.built[0].1;
        assert_eq!(io.seq_pages, 0, "heap scan already paid by the query");
        assert_eq!(io.tuples, 0);
        assert!(io.pages_written > 0, "index writes still charged");
        assert!(io.cpu_ops > 0, "sort still charged");
        // Nothing left pending.
        assert_eq!(sched.pending().count(), 0);
    }

    #[test]
    fn non_piggyback_ignores_scan_signal() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let mut sched = Scheduler::new(MaterializationStrategy::IdleTime);
        let a = ColRef::new(t, 0);
        sched.submit(&db, &mut cfg, &[a], &[]);
        assert!(sched.on_seq_scan(&db, &mut cfg, &[t]).built.is_empty());
        assert!(!cfg.contains(a));
        assert_eq!(sched.pending().count(), 1);
    }

    #[test]
    fn drop_cancels_pending_build() {
        let (db, t) = setup();
        let mut cfg = PhysicalConfig::new();
        let mut sched = Scheduler::new(MaterializationStrategy::IdleTime);
        let a = ColRef::new(t, 0);
        sched.submit(&db, &mut cfg, &[a], &[]);
        sched.submit(&db, &mut cfg, &[], &[a]);
        let changes = sched.on_idle(&db, &mut cfg);
        assert!(changes.built.is_empty());
        assert!(!cfg.contains(a));
    }
}
