//! On-line multi-column tuning — an opt-in extension of COLT toward the
//! paper's stated future work.
//!
//! The single-column machinery stays untouched (candidates, profiler,
//! knapsack). On top of it, when [`crate::ColtConfig::composite_budget_pages`]
//! is non-zero, the tuner keeps the recent query window `S_h` and at
//! every epoch boundary runs the composite advisor
//! (`colt_offline::suggest_composites`-style analysis, re-implemented
//! here over the live window to avoid a dependency cycle) to maintain a
//! small set of multi-column indices within their own page budget:
//!
//! * a suggestion is materialized when its forecast benefit over the
//!   next `h` epochs exceeds its build cost (the same `NetBenefit`
//!   discipline as the paper's knapsack), and
//! * a materialized composite is dropped when the window no longer
//!   contains the co-occurring predicates that justified it.

use crate::config::ColtConfig;
use colt_catalog::{ColRef, CompositeKey, Database, PhysicalConfig};
use colt_engine::cost::{index_scan_cost, seq_scan_cost};
use colt_engine::selectivity::predicate_selectivity;
use colt_engine::{PredicateKind, Query};
use colt_storage::IoStats;
use std::collections::{BTreeMap, VecDeque};

/// Per-epoch outcome of the composite extension.
#[derive(Debug, Clone, Default)]
pub struct CompositeStep {
    /// Composites built at this boundary, with their build cost.
    pub built: Vec<(CompositeKey, IoStats)>,
    /// Composites dropped at this boundary.
    pub dropped: Vec<CompositeKey>,
}

/// The on-line composite tuner.
#[derive(Debug)]
pub struct CompositeTuner {
    budget_pages: u64,
    horizon: usize,
    window_queries: usize,
    window: VecDeque<Query>,
    /// Pages used by composites we materialized.
    used_pages: BTreeMap<CompositeKey, u64>,
}

impl CompositeTuner {
    /// Build from the COLT configuration; inactive when the composite
    /// budget is zero.
    pub fn new(config: &ColtConfig) -> Self {
        CompositeTuner {
            budget_pages: config.composite_budget_pages,
            horizon: config.history_epochs,
            window_queries: config.history_epochs * config.epoch_length,
            window: VecDeque::new(),
            used_pages: BTreeMap::new(),
        }
    }

    /// Is the extension enabled?
    pub fn enabled(&self) -> bool {
        self.budget_pages > 0
    }

    /// Record one query into the memory window.
    pub fn observe(&mut self, query: &Query) {
        if !self.enabled() {
            return;
        }
        self.window.push_back(query.clone());
        while self.window.len() > self.window_queries {
            self.window.pop_front();
        }
    }

    /// Estimated extra benefit of a two-column composite for one query,
    /// beyond the best single-column alternative (mirrors the off-line
    /// advisor's scoring).
    fn extra_benefit(db: &Database, q: &Query, key: &CompositeKey) -> f64 {
        let table = key.table;
        if !q.tables.contains(&table) {
            return 0.0;
        }
        let t = db.table(table);
        let rows = t.heap.row_count() as f64;
        let pages = t.heap.page_count() as f64;
        let preds: Vec<_> = q.selections_on(table).collect();

        // Usable prefix: eq on the leading column, then eq/range next.
        let lead = ColRef::new(table, key.columns[0]);
        let Some(p1) = preds
            .iter()
            .find(|p| p.col == lead && matches!(p.kind, PredicateKind::Eq(_)))
        else {
            return 0.0;
        };
        let second = ColRef::new(table, key.columns[1]);
        let Some(p2) = preds.iter().find(|p| p.col == second) else { return 0.0 };

        let sel1 = predicate_selectivity(db, p1);
        let sel2 = predicate_selectivity(db, p2);
        let comp_cost = index_scan_cost(
            &db.cost,
            &key.estimate(db),
            sel1 * sel2,
            rows,
            pages,
            preds.len().saturating_sub(2),
        );
        let single = |col: ColRef, sel: f64| {
            index_scan_cost(
                &db.cost,
                &db.index_estimate(col),
                sel,
                rows,
                pages,
                preds.len().saturating_sub(1),
            )
        };
        let alternative = single(lead, sel1)
            .min(single(second, sel2))
            .min(seq_scan_cost(&db.cost, pages, rows, preds.len()));
        (alternative - comp_cost).max(0.0)
    }

    /// Estimated build cost of a composite, in cost units.
    fn build_cost(db: &Database, key: &CompositeKey) -> f64 {
        let t = db.table(key.table);
        let n = t.heap.row_count() as f64;
        let c = &db.cost;
        let sort_ops = if n > 1.0 { n * n.log2() } else { 0.0 };
        c.seq_page_cost * t.heap.page_count() as f64
            + c.cpu_tuple_cost * n
            + c.cpu_operator_cost * sort_ops
            + c.page_write_cost * key.estimate(db).pages as f64
    }

    /// Epoch boundary: re-evaluate composite candidates over the window
    /// and reconcile the materialized composite set.
    pub fn reorganize(&mut self, db: &Database, physical: &mut PhysicalConfig) -> CompositeStep {
        let mut step = CompositeStep::default();
        if !self.enabled() {
            return step;
        }

        // Score every two-column candidate over the window.
        let mut scores: BTreeMap<CompositeKey, f64> = BTreeMap::new();
        for q in &self.window {
            for &table in &q.tables {
                let preds: Vec<_> = q.selections_on(table).collect();
                if preds.len() < 2 {
                    continue;
                }
                for p1 in &preds {
                    if !matches!(p1.kind, PredicateKind::Eq(_)) {
                        continue;
                    }
                    for p2 in &preds {
                        if p2.col == p1.col {
                            continue;
                        }
                        let key =
                            CompositeKey::new(table, vec![p1.col.column, p2.col.column]);
                        let extra = Self::extra_benefit(db, q, &key);
                        if extra > 0.0 {
                            *scores.entry(key).or_insert(0.0) += extra;
                        }
                    }
                }
            }
        }
        // Window totals → per-epoch level → horizon forecast, minus the
        // build cost for new composites (the NetBenefit discipline).
        let per_epoch = |total: f64| total / self.horizon as f64;

        // Drop composites whose window benefit no longer covers even a
        // fraction of what justified them.
        let current: Vec<CompositeKey> = self.used_pages.keys().cloned().collect();
        for key in current {
            let total = scores.get(&key).copied().unwrap_or(0.0);
            if per_epoch(total) * self.horizon as f64 <= 0.0 {
                physical.drop_composite(&key);
                self.used_pages.remove(&key);
                step.dropped.push(key);
            }
        }

        // Materialize the best new candidates that fit the budget.
        let mut ranked: Vec<(CompositeKey, f64)> = scores
            .into_iter()
            .filter(|(k, _)| !self.used_pages.contains_key(k))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut used: u64 = self.used_pages.values().sum();
        // Both orderings of the same column set serve the same queries;
        // materialize at most one per column set.
        let mut column_sets: Vec<(colt_catalog::TableId, Vec<u32>)> = self
            .used_pages
            .keys()
            .map(|k| {
                let mut cols = k.columns.clone();
                cols.sort_unstable();
                (k.table, cols)
            })
            .collect();
        for (key, total) in ranked {
            let forecast = per_epoch(total) * self.horizon as f64;
            let net = forecast - Self::build_cost(db, &key);
            if net <= 0.0 {
                break; // ranked by benefit: nothing later can pass
            }
            let mut set = key.columns.clone();
            set.sort_unstable();
            if column_sets.contains(&(key.table, set.clone())) {
                continue;
            }
            let pages = key.estimate(db).pages;
            if used + pages > self.budget_pages {
                continue;
            }
            let io = physical.create_composite(db, key.clone());
            used += pages;
            column_sets.push((key.table, set));
            self.used_pages.insert(key.clone(), pages);
            step.built.push((key, io));
        }
        step
    }

    /// Pages currently used by on-line composites.
    pub fn used_pages(&self) -> u64 {
        self.used_pages.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableId, TableSchema};
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("a", ValueType::Int),
                Column::new("b", ValueType::Int),
                Column::new("c", ValueType::Int),
            ],
        ));
        db.insert_rows(
            t,
            (0..30_000i64).map(|i| {
                row_from(vec![Value::Int(i % 40), Value::Int(i % 50), Value::Int(i)])
            }),
        );
        db.analyze_all();
        (db, t)
    }

    fn cfg(budget: u64) -> ColtConfig {
        ColtConfig { composite_budget_pages: budget, ..Default::default() }
    }

    #[test]
    fn disabled_when_budget_zero() {
        let (db, t) = setup();
        let mut tuner = CompositeTuner::new(&cfg(0));
        assert!(!tuner.enabled());
        let q = Query::single(
            t,
            vec![SelPred::eq(ColRef::new(t, 0), 1i64), SelPred::eq(ColRef::new(t, 1), 2i64)],
        );
        tuner.observe(&q);
        let mut physical = PhysicalConfig::new();
        let step = tuner.reorganize(&db, &mut physical);
        assert!(step.built.is_empty());
    }

    #[test]
    fn cooccurring_predicates_earn_a_composite() {
        let (db, t) = setup();
        let mut tuner = CompositeTuner::new(&cfg(10_000));
        let mut physical = PhysicalConfig::new();
        for i in 0..120i64 {
            let q = Query::single(
                t,
                vec![
                    SelPred::eq(ColRef::new(t, 0), i % 40),
                    SelPred::eq(ColRef::new(t, 1), i % 50),
                ],
            );
            tuner.observe(&q);
        }
        let step = tuner.reorganize(&db, &mut physical);
        assert_eq!(step.built.len(), 1, "one composite family expected");
        let key = &step.built[0].0;
        assert_eq!(key.table, t);
        assert!(physical.get_composite(key).is_some());
        assert!(tuner.used_pages() > 0);

        // The optimizer now uses it.
        use colt_engine::{IndexSetView, Optimizer};
        let q = Query::single(
            t,
            vec![SelPred::eq(ColRef::new(t, 0), 3i64), SelPred::eq(ColRef::new(t, 1), 13i64)],
        );
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&physical));
        assert!(plan.explain().contains("CompositeScan"), "{}", plan.explain());
    }

    #[test]
    fn composite_dropped_when_pattern_disappears() {
        let (db, t) = setup();
        let mut tuner = CompositeTuner::new(&cfg(10_000));
        let mut physical = PhysicalConfig::new();
        for i in 0..120i64 {
            let q = Query::single(
                t,
                vec![
                    SelPred::eq(ColRef::new(t, 0), i % 40),
                    SelPred::eq(ColRef::new(t, 1), i % 50),
                ],
            );
            tuner.observe(&q);
        }
        let step = tuner.reorganize(&db, &mut physical);
        let key = step.built[0].0.clone();

        // The pattern vanishes: only single-predicate queries from now on.
        for i in 0..200i64 {
            tuner.observe(&Query::single(t, vec![SelPred::eq(ColRef::new(t, 2), i)]));
        }
        let step = tuner.reorganize(&db, &mut physical);
        assert!(step.dropped.contains(&key));
        assert!(physical.get_composite(&key).is_none());
        assert_eq!(tuner.used_pages(), 0);
    }

    #[test]
    fn budget_caps_composite_footprint() {
        let (db, t) = setup();
        // Budget of 1 page: nothing fits.
        let mut tuner = CompositeTuner::new(&cfg(1));
        let mut physical = PhysicalConfig::new();
        for i in 0..120i64 {
            let q = Query::single(
                t,
                vec![
                    SelPred::eq(ColRef::new(t, 0), i % 40),
                    SelPred::eq(ColRef::new(t, 1), i % 50),
                ],
            );
            tuner.observe(&q);
        }
        let step = tuner.reorganize(&db, &mut physical);
        assert!(step.built.is_empty());
        assert_eq!(tuner.used_pages(), 0);
    }
}
