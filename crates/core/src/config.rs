//! COLT configuration parameters.

use std::fmt;

/// Tunable parameters of the COLT framework. Defaults are the values the
/// paper's experimental study used (§6.1): epoch length `w = 10`, history
/// depth `h = 12`, at most 20 what-if calls per epoch, and 90% confidence
/// intervals.
///
/// Prefer [`ColtConfig::builder`], which validates at construction time;
/// struct-literal construction remains possible and is validated when the
/// tuner is created.
#[derive(Debug, Clone, PartialEq)]
pub struct ColtConfig {
    /// Epoch length `w`: number of queries per profiling epoch.
    pub epoch_length: usize,
    /// History depth `h`: number of epochs in the system's memory; also
    /// the forecasting horizon of the Self-Organizer.
    pub history_epochs: usize,
    /// `#WI_max`: hard cap on what-if calls per epoch.
    pub max_whatif_per_epoch: u64,
    /// `#WI_lim` of the first epoch. `None` (the default) starts at
    /// `#WI_max`, as the paper does; later epochs are set by
    /// re-budgeting. Must not exceed `#WI_max`.
    pub initial_whatif_limit: Option<u64>,
    /// z-score of the confidence intervals (1.645 ≈ 90%).
    pub confidence_z: f64,
    /// On-line storage budget `B`, in 8 KiB pages.
    pub storage_budget_pages: u64,
    /// Selectivity boundary between the "selective" and "non-selective"
    /// clustering buckets (paper: 2%).
    pub selective_boundary: f64,
    /// `r` value at (or above) which profiling runs at full budget
    /// (paper: 1.3).
    pub full_budget_ratio: f64,
    /// Exponential smoothing factor for the crude `BenefitC` series used
    /// by hot-set selection (weight of the most recent epoch).
    pub smoothing_alpha: f64,
    /// Decay factor of the recency-weighted forecast (weight ratio
    /// between consecutive past epochs). The default 1.0 gives a flat
    /// window over the last `h` epochs, matching the paper's remark
    /// that the forecasting model "uses a window of past measurements"
    /// whose length coincides with the worst-case noise-burst length.
    pub forecast_decay: f64,
    /// Upper bound on the size of the hot set; keeps the accurate
    /// profiling level affordable even if the crude clustering puts many
    /// candidates in the top group.
    pub max_hot_set: usize,
    /// Candidates unseen for this many epochs are evicted from `C`.
    pub candidate_ttl_epochs: usize,
    /// Reorganization hysteresis: a knapsack solution that requires new
    /// builds replaces the current materialized set only when its
    /// aggregate `NetBenefit` exceeds the current set's by this relative
    /// margin. Damps materialization churn between near-tied indices
    /// whose per-epoch benefit estimates fluctuate with query-mix noise
    /// (a stabilization on top of the paper's `MatCost` term; set to 0
    /// to ablate it — see the `ablation` bench).
    pub swap_margin: f64,
    /// Page budget for the on-line multi-column extension
    /// (`colt_core::composite_ext`); 0 (the default) disables it and
    /// keeps the tuner exactly as the paper describes.
    pub composite_budget_pages: u64,
    /// Whether re-budgeting self-regulates the what-if budget (the
    /// paper's headline mechanism). When false the tuner always runs at
    /// `#WI_max`, modelling the fixed-intensity on-line tuners the paper
    /// contrasts against; used by the `ablation` bench.
    pub self_regulation: bool,
    /// Whether the Profiler runs skip-proofs before what-if probes
    /// (dynamic budget reallocation): a probe whose gain interval
    /// provably cannot alter the current knapsack solution is skipped,
    /// charging nothing against `#WI_lim`, and the freed budget flows to
    /// the widest-interval candidates. The outer `r`-ratio control loop
    /// is untouched either way. The `rebudget_gate` bench writes its
    /// baseline with this off to measure the probe reduction.
    pub dynamic_rebudget: bool,
    /// Seed of COLT's internal (deterministic) sampling PRNG.
    pub seed: u64,
}

impl Default for ColtConfig {
    fn default() -> Self {
        ColtConfig {
            epoch_length: 10,
            history_epochs: 12,
            max_whatif_per_epoch: 20,
            initial_whatif_limit: None,
            confidence_z: 1.645,
            storage_budget_pages: 4096,
            selective_boundary: 0.02,
            full_budget_ratio: 1.3,
            smoothing_alpha: 0.4,
            forecast_decay: 1.0,
            max_hot_set: 10,
            candidate_ttl_epochs: 12,
            swap_margin: 0.5,
            composite_budget_pages: 0,
            self_regulation: true,
            dynamic_rebudget: true,
            seed: 0x0C01_7001,
        }
    }
}

/// Why a [`ColtConfig`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The epoch length `w` is zero.
    ZeroEpochLength,
    /// The history depth `h` is zero.
    ZeroHistory,
    /// The on-line storage budget `B` is zero pages.
    ZeroStorageBudget,
    /// The initial what-if limit exceeds `#WI_max`.
    WhatifLimitExceedsMax {
        /// The requested initial `#WI_lim`.
        limit: u64,
        /// The configured `#WI_max`.
        max: u64,
    },
    /// A float parameter lies outside its allowed interval.
    OutOfRange {
        /// Parameter name.
        param: &'static str,
        /// Offending value.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `full_budget_ratio` does not exceed 1.
    RatioNotAboveOne(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroEpochLength => write!(f, "epoch_length (w) must be positive"),
            ConfigError::ZeroHistory => write!(f, "history_epochs (h) must be positive"),
            ConfigError::ZeroStorageBudget => {
                write!(f, "storage_budget_pages (B) must be positive")
            }
            ConfigError::WhatifLimitExceedsMax { limit, max } => {
                write!(f, "initial_whatif_limit {limit} exceeds max_whatif_per_epoch {max}")
            }
            ConfigError::OutOfRange { param, value, lo, hi } => {
                write!(f, "{param} = {value} outside [{lo}, {hi}]")
            }
            ConfigError::RatioNotAboveOne(r) => {
                write!(f, "full_budget_ratio = {r} must exceed 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ColtConfig {
    /// Start a validating builder pre-loaded with the paper defaults.
    pub fn builder() -> ColtConfigBuilder {
        ColtConfigBuilder { config: ColtConfig::default() }
    }

    /// Validate parameter sanity. The builder runs this (plus the
    /// stricter zero-storage-budget check) before handing out a config.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.epoch_length == 0 {
            return Err(ConfigError::ZeroEpochLength);
        }
        if self.history_epochs == 0 {
            return Err(ConfigError::ZeroHistory);
        }
        if let Some(limit) = self.initial_whatif_limit {
            if limit > self.max_whatif_per_epoch {
                return Err(ConfigError::WhatifLimitExceedsMax {
                    limit,
                    max: self.max_whatif_per_epoch,
                });
            }
        }
        if !(0.0..=1.0).contains(&self.selective_boundary) {
            return Err(ConfigError::OutOfRange {
                param: "selective_boundary",
                value: self.selective_boundary,
                lo: 0.0,
                hi: 1.0,
            });
        }
        if self.full_budget_ratio <= 1.0 {
            return Err(ConfigError::RatioNotAboveOne(self.full_budget_ratio));
        }
        if !(0.0..=1.0).contains(&self.smoothing_alpha) {
            return Err(ConfigError::OutOfRange {
                param: "smoothing_alpha",
                value: self.smoothing_alpha,
                lo: 0.0,
                hi: 1.0,
            });
        }
        if !(0.0..=1.0).contains(&self.forecast_decay) {
            return Err(ConfigError::OutOfRange {
                param: "forecast_decay",
                value: self.forecast_decay,
                lo: 0.0,
                hi: 1.0,
            });
        }
        if !(0.0..=10.0).contains(&self.swap_margin) {
            return Err(ConfigError::OutOfRange {
                param: "swap_margin",
                value: self.swap_margin,
                lo: 0.0,
                hi: 10.0,
            });
        }
        Ok(())
    }

    /// The first epoch's `#WI_lim` (defaults to `#WI_max`).
    pub fn initial_whatif_limit(&self) -> u64 {
        self.initial_whatif_limit.unwrap_or(self.max_whatif_per_epoch)
    }
}

/// Validating builder for [`ColtConfig`].
///
/// ```
/// use colt_core::{ColtConfig, ConfigError};
///
/// let cfg = ColtConfig::builder()
///     .epoch_len(10)
///     .storage_budget_pages(4096)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.epoch_length, 10);
///
/// assert_eq!(
///     ColtConfig::builder().epoch_len(0).build(),
///     Err(ConfigError::ZeroEpochLength)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ColtConfigBuilder {
    config: ColtConfig,
}

impl ColtConfigBuilder {
    /// Epoch length `w` (queries per epoch).
    pub fn epoch_len(mut self, w: usize) -> Self {
        self.config.epoch_length = w;
        self
    }

    /// History depth `h` (epochs of memory / forecast horizon).
    pub fn history_epochs(mut self, h: usize) -> Self {
        self.config.history_epochs = h;
        self
    }

    /// `#WI_max`: hard cap on what-if calls per epoch.
    pub fn max_whatif_per_epoch(mut self, n: u64) -> Self {
        self.config.max_whatif_per_epoch = n;
        self
    }

    /// The first epoch's `#WI_lim`; must not exceed `#WI_max`.
    pub fn initial_whatif_limit(mut self, n: u64) -> Self {
        self.config.initial_whatif_limit = Some(n);
        self
    }

    /// Confidence-interval z-score.
    pub fn confidence_z(mut self, z: f64) -> Self {
        self.config.confidence_z = z;
        self
    }

    /// On-line storage budget `B` in pages.
    pub fn storage_budget_pages(mut self, b: u64) -> Self {
        self.config.storage_budget_pages = b;
        self
    }

    /// Selective/non-selective clustering boundary.
    pub fn selective_boundary(mut self, s: f64) -> Self {
        self.config.selective_boundary = s;
        self
    }

    /// `r` at which profiling runs at full budget.
    pub fn full_budget_ratio(mut self, r: f64) -> Self {
        self.config.full_budget_ratio = r;
        self
    }

    /// Smoothing factor of the crude-benefit series.
    pub fn smoothing_alpha(mut self, a: f64) -> Self {
        self.config.smoothing_alpha = a;
        self
    }

    /// Forecast decay factor.
    pub fn forecast_decay(mut self, d: f64) -> Self {
        self.config.forecast_decay = d;
        self
    }

    /// Hot-set size cap.
    pub fn max_hot_set(mut self, n: usize) -> Self {
        self.config.max_hot_set = n;
        self
    }

    /// Candidate eviction TTL in epochs.
    pub fn candidate_ttl_epochs(mut self, n: usize) -> Self {
        self.config.candidate_ttl_epochs = n;
        self
    }

    /// Reorganization swap hysteresis margin.
    pub fn swap_margin(mut self, m: f64) -> Self {
        self.config.swap_margin = m;
        self
    }

    /// Page budget of the multi-column extension (0 disables).
    pub fn composite_budget_pages(mut self, b: u64) -> Self {
        self.config.composite_budget_pages = b;
        self
    }

    /// Enable or disable self-regulated re-budgeting.
    pub fn self_regulation(mut self, on: bool) -> Self {
        self.config.self_regulation = on;
        self
    }

    /// Enable or disable skip-proofs before what-if probes.
    pub fn dynamic_rebudget(mut self, on: bool) -> Self {
        self.config.dynamic_rebudget = on;
        self
    }

    /// Seed of COLT's internal sampling PRNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ColtConfig, ConfigError> {
        if self.config.storage_budget_pages == 0 {
            return Err(ConfigError::ZeroStorageBudget);
        }
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = ColtConfig::default();
        assert_eq!(c.epoch_length, 10);
        assert_eq!(c.history_epochs, 12);
        assert_eq!(c.max_whatif_per_epoch, 20);
        assert!((c.confidence_z - 1.645).abs() < 1e-9);
        assert!((c.selective_boundary - 0.02).abs() < 1e-12);
        assert!((c.full_budget_ratio - 1.3).abs() < 1e-12);
        assert!(c.dynamic_rebudget, "skip-proofs are on by default");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let cases = [
            ColtConfig { epoch_length: 0, ..Default::default() },
            ColtConfig { history_epochs: 0, ..Default::default() },
            ColtConfig { full_budget_ratio: 1.0, ..Default::default() },
            ColtConfig { selective_boundary: 1.5, ..Default::default() },
            ColtConfig { smoothing_alpha: -0.1, ..Default::default() },
            ColtConfig { swap_margin: -1.0, ..Default::default() },
            ColtConfig { initial_whatif_limit: Some(21), ..Default::default() },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }

    #[test]
    fn builder_accepts_paper_configuration() {
        let c = ColtConfig::builder()
            .epoch_len(10)
            .history_epochs(12)
            .max_whatif_per_epoch(20)
            .storage_budget_pages(4096)
            .initial_whatif_limit(20)
            .build()
            .expect("paper parameters are valid");
        assert_eq!(c.epoch_length, 10);
        assert_eq!(c.initial_whatif_limit(), 20);
    }

    #[test]
    fn builder_rejects_invalid_parameters() {
        assert_eq!(
            ColtConfig::builder().epoch_len(0).build(),
            Err(ConfigError::ZeroEpochLength)
        );
        assert_eq!(
            ColtConfig::builder().storage_budget_pages(0).build(),
            Err(ConfigError::ZeroStorageBudget)
        );
        assert_eq!(
            ColtConfig::builder().max_whatif_per_epoch(10).initial_whatif_limit(11).build(),
            Err(ConfigError::WhatifLimitExceedsMax { limit: 11, max: 10 })
        );
        assert_eq!(
            ColtConfig::builder().full_budget_ratio(0.9).build(),
            Err(ConfigError::RatioNotAboveOne(0.9))
        );
        let err = ColtConfig::builder().swap_margin(-2.0).build().unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { param: "swap_margin", .. }));
        assert!(err.to_string().contains("swap_margin"));
    }

    #[test]
    fn initial_limit_defaults_to_max() {
        let c = ColtConfig { max_whatif_per_epoch: 7, ..Default::default() };
        assert_eq!(c.initial_whatif_limit(), 7);
    }
}
