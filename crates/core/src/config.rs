//! COLT configuration parameters.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the COLT framework. Defaults are the values the
/// paper's experimental study used (§6.1): epoch length `w = 10`, history
/// depth `h = 12`, at most 20 what-if calls per epoch, and 90% confidence
/// intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColtConfig {
    /// Epoch length `w`: number of queries per profiling epoch.
    pub epoch_length: usize,
    /// History depth `h`: number of epochs in the system's memory; also
    /// the forecasting horizon of the Self-Organizer.
    pub history_epochs: usize,
    /// `#WI_max`: hard cap on what-if calls per epoch.
    pub max_whatif_per_epoch: u64,
    /// z-score of the confidence intervals (1.645 ≈ 90%).
    pub confidence_z: f64,
    /// On-line storage budget `B`, in 8 KiB pages.
    pub storage_budget_pages: u64,
    /// Selectivity boundary between the "selective" and "non-selective"
    /// clustering buckets (paper: 2%).
    pub selective_boundary: f64,
    /// `r` value at (or above) which profiling runs at full budget
    /// (paper: 1.3).
    pub full_budget_ratio: f64,
    /// Exponential smoothing factor for the crude `BenefitC` series used
    /// by hot-set selection (weight of the most recent epoch).
    pub smoothing_alpha: f64,
    /// Decay factor of the recency-weighted forecast (weight ratio
    /// between consecutive past epochs). The default 1.0 gives a flat
    /// window over the last `h` epochs, matching the paper's remark
    /// that the forecasting model "uses a window of past measurements"
    /// whose length coincides with the worst-case noise-burst length.
    pub forecast_decay: f64,
    /// Upper bound on the size of the hot set; keeps the accurate
    /// profiling level affordable even if the crude clustering puts many
    /// candidates in the top group.
    pub max_hot_set: usize,
    /// Candidates unseen for this many epochs are evicted from `C`.
    pub candidate_ttl_epochs: usize,
    /// Reorganization hysteresis: a knapsack solution that requires new
    /// builds replaces the current materialized set only when its
    /// aggregate `NetBenefit` exceeds the current set's by this relative
    /// margin. Damps materialization churn between near-tied indices
    /// whose per-epoch benefit estimates fluctuate with query-mix noise
    /// (a stabilization on top of the paper's `MatCost` term; set to 0
    /// to ablate it — see the `ablation` bench).
    pub swap_margin: f64,
    /// Page budget for the on-line multi-column extension
    /// (`colt_core::composite_ext`); 0 (the default) disables it and
    /// keeps the tuner exactly as the paper describes.
    pub composite_budget_pages: u64,
    /// Whether re-budgeting self-regulates the what-if budget (the
    /// paper's headline mechanism). When false the tuner always runs at
    /// `#WI_max`, modelling the fixed-intensity on-line tuners the paper
    /// contrasts against; used by the `ablation` bench.
    pub self_regulation: bool,
    /// Seed of COLT's internal (deterministic) sampling PRNG.
    pub seed: u64,
}

impl Default for ColtConfig {
    fn default() -> Self {
        ColtConfig {
            epoch_length: 10,
            history_epochs: 12,
            max_whatif_per_epoch: 20,
            confidence_z: 1.645,
            storage_budget_pages: 4096,
            selective_boundary: 0.02,
            full_budget_ratio: 1.3,
            smoothing_alpha: 0.4,
            forecast_decay: 1.0,
            max_hot_set: 10,
            candidate_ttl_epochs: 12,
            swap_margin: 0.5,
            composite_budget_pages: 0,
            self_regulation: true,
            seed: 0x0C01_7001,
        }
    }
}

impl ColtConfig {
    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_length == 0 {
            return Err("epoch_length must be positive".into());
        }
        if self.history_epochs == 0 {
            return Err("history_epochs must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.selective_boundary) {
            return Err("selective_boundary must be in [0, 1]".into());
        }
        if self.full_budget_ratio <= 1.0 {
            return Err("full_budget_ratio must exceed 1".into());
        }
        if !(0.0..=1.0).contains(&self.smoothing_alpha) || !(0.0..=1.0).contains(&self.forecast_decay) {
            return Err("smoothing factors must be in [0, 1]".into());
        }
        if !(0.0..=10.0).contains(&self.swap_margin) {
            return Err("swap_margin must be in [0, 10]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = ColtConfig::default();
        assert_eq!(c.epoch_length, 10);
        assert_eq!(c.history_epochs, 12);
        assert_eq!(c.max_whatif_per_epoch, 20);
        assert!((c.confidence_z - 1.645).abs() < 1e-9);
        assert!((c.selective_boundary - 0.02).abs() < 1e-12);
        assert!((c.full_budget_ratio - 1.3).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let cases = [
            ColtConfig { epoch_length: 0, ..Default::default() },
            ColtConfig { full_budget_ratio: 1.0, ..Default::default() },
            ColtConfig { selective_boundary: 1.5, ..Default::default() },
            ColtConfig { smoothing_alpha: -0.1, ..Default::default() },
            ColtConfig { swap_margin: -1.0, ..Default::default() },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }
}
