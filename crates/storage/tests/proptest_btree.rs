//! Property-based tests: the B+ tree must agree with a sorted-vector
//! reference model for every lookup and range scan, and must keep its
//! structural invariants under arbitrary insert sequences.

use colt_storage::page::IoStats;
use colt_storage::row::RowId;
use colt_storage::value::Value;
use colt_storage::BPlusTree;
use proptest::prelude::*;
use std::ops::Bound;

fn reference_range(model: &[(i64, u32)], lo: Bound<i64>, hi: Bound<i64>) -> Vec<RowId> {
    let in_lo = |k: i64| match lo {
        Bound::Included(b) => k >= b,
        Bound::Excluded(b) => k > b,
        Bound::Unbounded => true,
    };
    let in_hi = |k: i64| match hi {
        Bound::Included(b) => k <= b,
        Bound::Excluded(b) => k < b,
        Bound::Unbounded => true,
    };
    let mut out: Vec<(i64, u32)> =
        model.iter().copied().filter(|&(k, _)| in_lo(k) && in_hi(k)).collect();
    out.sort_unstable();
    out.into_iter().map(|(_, r)| RowId(r)).collect()
}

fn map_bound(b: Bound<i64>) -> Bound<Value> {
    match b {
        Bound::Included(k) => Bound::Included(Value::Int(k)),
        Bound::Excluded(k) => Bound::Excluded(Value::Int(k)),
        Bound::Unbounded => Bound::Unbounded,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert arbitrary (key, rowid) pairs; every point lookup agrees
    /// with the reference model and invariants hold.
    #[test]
    fn lookups_match_reference(
        entries in prop::collection::vec((0i64..200, 0u32..10_000), 0..600),
        probes in prop::collection::vec(0i64..220, 0..40),
    ) {
        // Deduplicate exact pairs: indexes never hold the same
        // (value, rowid) twice.
        let mut entries = entries;
        entries.sort_unstable();
        entries.dedup();

        let mut tree = BPlusTree::with_order(8);
        // Insert in a scrambled order to stress splits.
        let scrambled: Vec<_> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i.wrapping_mul(2654435761) % entries.len().max(1), e))
            .collect();
        let mut by_slot = scrambled;
        by_slot.sort_by_key(|(slot, _)| *slot);
        for (_, &(k, r)) in by_slot {
            tree.insert(Value::Int(k), RowId(r));
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), entries.len());

        for p in probes {
            let mut io = IoStats::new();
            let mut got = tree.lookup(&Value::Int(p), &mut io);
            got.sort();
            let want = reference_range(&entries, Bound::Included(p), Bound::Included(p));
            prop_assert_eq!(got, want, "probe {}", p);
        }
    }

    /// Range scans with arbitrary bound shapes agree with the model.
    #[test]
    fn ranges_match_reference(
        entries in prop::collection::vec((0i64..500, 0u32..100_000), 0..800),
        lo in 0i64..520,
        hi in 0i64..520,
        lo_kind in 0u8..3,
        hi_kind in 0u8..3,
    ) {
        let mut entries = entries;
        entries.sort_unstable();
        entries.dedup();
        let tree = BPlusTree::bulk_load(
            8,
            entries.iter().map(|&(k, r)| (Value::Int(k), RowId(r))).collect(),
        );
        tree.check_invariants();

        let lo_b = match lo_kind { 0 => Bound::Included(lo), 1 => Bound::Excluded(lo), _ => Bound::Unbounded };
        let hi_b = match hi_kind { 0 => Bound::Included(hi), 1 => Bound::Excluded(hi), _ => Bound::Unbounded };

        let mut io = IoStats::new();
        let mut got = tree.range(map_bound(lo_b), map_bound(hi_b), &mut io);
        got.sort();
        let mut want = reference_range(&entries, lo_b, hi_b);
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Bulk load and incremental insert build equivalent trees.
    #[test]
    fn bulk_equals_incremental(
        entries in prop::collection::vec((0i64..300, 0u32..1_000), 0..500),
    ) {
        let mut entries = entries;
        entries.sort_unstable();
        entries.dedup();
        let pairs: Vec<_> = entries.iter().map(|&(k, r)| (Value::Int(k), RowId(r))).collect();
        let bulk = BPlusTree::bulk_load(8, pairs.clone());
        let mut incr = BPlusTree::new(8);
        for (k, r) in pairs {
            incr.insert(k, r);
        }
        bulk.check_invariants();
        incr.check_invariants();
        let a: Vec<_> = bulk.iter().map(|(k, r)| (k.clone(), r)).collect();
        let b: Vec<_> = incr.iter().map(|(k, r)| (k.clone(), r)).collect();
        prop_assert_eq!(a, b);
    }

    /// I/O charging is sane: descent cost equals tree height and long
    /// scans charge at least one page per full leaf traversed.
    #[test]
    fn io_charging_bounds(n in 1usize..5000) {
        let entries: Vec<_> = (0..n).map(|i| (Value::Int(i as i64), RowId(i as u32))).collect();
        let tree = BPlusTree::bulk_load(8, entries);
        let mut io = IoStats::new();
        tree.lookup(&Value::Int((n / 2) as i64), &mut io);
        prop_assert_eq!(io.random_pages, tree.height() as u64);

        let mut io = IoStats::new();
        let all = tree.range(Bound::Unbounded, Bound::Unbounded, &mut io);
        prop_assert_eq!(all.len(), n);
        prop_assert!(io.seq_pages as usize + 1 >= tree.page_count().saturating_sub(tree.height() * 2));
    }
}
