//! Randomized property tests: the B+ tree must agree with a
//! sorted-vector reference model for every lookup and range scan, and
//! must keep its structural invariants under arbitrary insert
//! sequences. Cases are generated from the in-repo seeded PRNG, so
//! every run checks the same inputs.

use colt_storage::page::IoStats;
use colt_storage::row::RowId;
use colt_storage::value::Value;
use colt_storage::{BPlusTree, Prng};
use std::ops::Bound;

const CASES: u64 = 64;

fn reference_range(model: &[(i64, u32)], lo: Bound<i64>, hi: Bound<i64>) -> Vec<RowId> {
    let in_lo = |k: i64| match lo {
        Bound::Included(b) => k >= b,
        Bound::Excluded(b) => k > b,
        Bound::Unbounded => true,
    };
    let in_hi = |k: i64| match hi {
        Bound::Included(b) => k <= b,
        Bound::Excluded(b) => k < b,
        Bound::Unbounded => true,
    };
    let mut out: Vec<(i64, u32)> =
        model.iter().copied().filter(|&(k, _)| in_lo(k) && in_hi(k)).collect();
    out.sort_unstable();
    out.into_iter().map(|(_, r)| RowId(r)).collect()
}

fn map_bound(b: Bound<i64>) -> Bound<Value> {
    match b {
        Bound::Included(k) => Bound::Included(Value::Int(k)),
        Bound::Excluded(k) => Bound::Excluded(Value::Int(k)),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Random deduplicated (key, rowid) pairs.
fn entries(rng: &mut Prng, max_len: usize, key_hi: i64, row_hi: u32) -> Vec<(i64, u32)> {
    let len = rng.below(max_len + 1);
    let mut out: Vec<(i64, u32)> = (0..len)
        .map(|_| (rng.int_range(0, key_hi - 1), rng.below_u64(row_hi as u64) as u32))
        .collect();
    // Deduplicate exact pairs: indexes never hold the same
    // (value, rowid) twice.
    out.sort_unstable();
    out.dedup();
    out
}

/// Insert arbitrary (key, rowid) pairs; every point lookup agrees with
/// the reference model and invariants hold.
#[test]
fn lookups_match_reference() {
    let mut rng = Prng::new(0xB7EE_0001);
    for case in 0..CASES {
        let entries = entries(&mut rng, 600, 200, 10_000);
        let probes: Vec<i64> =
            (0..rng.below(40)).map(|_| rng.int_range(0, 219)).collect();

        let mut tree = BPlusTree::with_order(8);
        // Insert in a scrambled order to stress splits.
        let mut by_slot: Vec<_> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i.wrapping_mul(2654435761) % entries.len().max(1), e))
            .collect();
        by_slot.sort_by_key(|(slot, _)| *slot);
        for (_, &(k, r)) in by_slot {
            tree.insert(Value::Int(k), RowId(r));
        }
        tree.check_invariants();
        assert_eq!(tree.len(), entries.len(), "case {case}");

        for p in probes {
            let mut io = IoStats::new();
            let mut got = tree.lookup(&Value::Int(p), &mut io);
            got.sort();
            let want = reference_range(&entries, Bound::Included(p), Bound::Included(p));
            assert_eq!(got, want, "case {case} probe {p}");
        }
    }
}

/// Range scans with arbitrary bound shapes agree with the model.
#[test]
fn ranges_match_reference() {
    let mut rng = Prng::new(0xB7EE_0002);
    for case in 0..CASES {
        let entries = entries(&mut rng, 800, 500, 100_000);
        let lo = rng.int_range(0, 519);
        let hi = rng.int_range(0, 519);
        let lo_b = match rng.below(3) {
            0 => Bound::Included(lo),
            1 => Bound::Excluded(lo),
            _ => Bound::Unbounded,
        };
        let hi_b = match rng.below(3) {
            0 => Bound::Included(hi),
            1 => Bound::Excluded(hi),
            _ => Bound::Unbounded,
        };
        let tree = BPlusTree::bulk_load(
            8,
            entries.iter().map(|&(k, r)| (Value::Int(k), RowId(r))).collect(),
        );
        tree.check_invariants();

        let mut io = IoStats::new();
        let mut got = tree.range(map_bound(lo_b), map_bound(hi_b), &mut io);
        got.sort();
        let mut want = reference_range(&entries, lo_b, hi_b);
        want.sort();
        assert_eq!(got, want, "case {case}");
    }
}

/// Bulk load and incremental insert build equivalent trees.
#[test]
fn bulk_equals_incremental() {
    let mut rng = Prng::new(0xB7EE_0003);
    for case in 0..CASES {
        let entries = entries(&mut rng, 500, 300, 1_000);
        let pairs: Vec<_> = entries.iter().map(|&(k, r)| (Value::Int(k), RowId(r))).collect();
        let bulk = BPlusTree::bulk_load(8, pairs.clone());
        let mut incr = BPlusTree::new(8);
        for (k, r) in pairs {
            incr.insert(k, r);
        }
        bulk.check_invariants();
        incr.check_invariants();
        let a: Vec<_> = bulk.iter().map(|(k, r)| (k.clone(), r)).collect();
        let b: Vec<_> = incr.iter().map(|(k, r)| (k.clone(), r)).collect();
        assert_eq!(a, b, "case {case}");
    }
}

/// I/O charging is sane: descent cost equals tree height and long scans
/// charge at least one page per full leaf traversed.
#[test]
fn io_charging_bounds() {
    let mut rng = Prng::new(0xB7EE_0004);
    for case in 0..CASES {
        let n = 1 + rng.below(4999);
        let entries: Vec<_> = (0..n).map(|i| (Value::Int(i as i64), RowId(i as u32))).collect();
        let tree = BPlusTree::bulk_load(8, entries);
        let mut io = IoStats::new();
        tree.lookup(&Value::Int((n / 2) as i64), &mut io);
        assert_eq!(io.random_pages, tree.height() as u64, "case {case}");

        let mut io = IoStats::new();
        let all = tree.range(Bound::Unbounded, Bound::Unbounded, &mut io);
        assert_eq!(all.len(), n, "case {case}");
        assert!(
            io.seq_pages as usize + 1 >= tree.page_count().saturating_sub(tree.height() * 2),
            "case {case}"
        );
    }
}
