//! An arena-based B+ tree mapping column values to row ids.
//!
//! This is the physical structure behind every single-column index the
//! tuner can materialize. It supports duplicate keys (secondary index
//! semantics), point lookups, inclusive/exclusive range scans, one-by-one
//! inserts and sorted bulk loading, and charges [`IoStats`] for the pages
//! a disk-resident tree of the same shape would touch: one random page
//! per level on a descent, one sequential page per additional leaf
//! visited while scanning the leaf chain.

use crate::page::{IoStats, PAGE_SIZE};
use crate::row::RowId;
use crate::value::Value;
use std::ops::Bound;

/// Index of a node in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeId(u32);

/// The bound every tree key type must satisfy. Blanket-implemented;
/// [`Value`] covers single-column indices, `Vec<Value>` covers the
/// multi-column extension (lexicographic composite keys).
pub trait TreeKey: Ord + Clone + std::fmt::Debug {}
impl<K: Ord + Clone + std::fmt::Debug> TreeKey for K {}

/// Per-key decision of a [`BPlusTreeOf::scan_from`] traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanControl {
    /// Emit this entry and continue.
    Take,
    /// Skip this entry and continue.
    Skip,
    /// End the scan (keys are sorted; nothing later can match).
    Stop,
}

#[derive(Debug, Clone)]
enum Node<K: TreeKey> {
    /// Routing node: `children.len() == keys.len() + 1`; subtree `i`
    /// holds composites `< keys[i]`, subtree `i+1` holds composites
    /// `>= keys[i]`. The routing composite `(key, rowid)` is unique
    /// because every index entry pairs a key with the unique id of its
    /// row, which keeps separator invariants strict even when many rows
    /// share the same key.
    Internal { keys: Vec<(K, RowId)>, children: Vec<NodeId> },
    /// Leaf node: sorted `(key, rowid)` entries plus a chain pointer.
    Leaf { entries: Vec<(K, RowId)>, next: Option<NodeId> },
}

/// A B+ tree index over one column of one table.
///
/// # Examples
///
/// ```
/// use colt_storage::{BPlusTree, IoStats, RowId, Value};
/// use std::ops::Bound;
///
/// let mut tree = BPlusTree::new(8);
/// for i in 0..1_000 {
///     tree.insert(Value::Int(i), RowId(i as u32));
/// }
///
/// let mut io = IoStats::new();
/// assert_eq!(tree.lookup(&Value::Int(42), &mut io), vec![RowId(42)]);
/// // The descent charged one random page per level.
/// assert_eq!(io.random_pages, tree.height() as u64);
///
/// let hits = tree.range(
///     Bound::Included(Value::Int(10)),
///     Bound::Excluded(Value::Int(20)),
///     &mut io,
/// );
/// assert_eq!(hits.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct BPlusTreeOf<K: TreeKey> {
    arena: Vec<Node<K>>,
    root: NodeId,
    height: usize,
    len: usize,
    /// Maximum entries per node; derived from the key width by default.
    order: usize,
}

/// A single-column B+ tree — the physical structure of the paper's
/// indices.
pub type BPlusTree = BPlusTreeOf<Value>;

/// A multi-column B+ tree over lexicographic composite keys — the
/// paper's "future work" extension.
pub type CompositeBPlusTree = BPlusTreeOf<Vec<Value>>;

/// Entries per node for a key of the given byte width, assuming each leaf
/// entry also stores a 6-byte tuple pointer plus item overhead.
pub fn default_order(key_width: usize) -> usize {
    (PAGE_SIZE / (key_width + 14)).clamp(8, 512)
}

impl<K: TreeKey> BPlusTreeOf<K> {
    /// Create an empty tree whose node capacity is derived from the key
    /// byte width.
    pub fn new(key_width: usize) -> Self {
        Self::with_order(default_order(key_width))
    }

    /// Create an empty tree with an explicit node capacity (mostly for
    /// tests that want to exercise deep trees with few keys).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "B+ tree order must be at least 4");
        BPlusTreeOf {
            arena: vec![Node::Leaf { entries: Vec::new(), next: None }],
            root: NodeId(0),
            height: 1,
            len: 0,
            order,
        }
    }

    /// Bulk-load a tree from entries that are already sorted by key.
    ///
    /// Leaves are filled to ~90% occupancy, matching the fill factor of a
    /// freshly built database index.
    pub fn bulk_load(key_width: usize, mut entries: Vec<(K, RowId)>) -> Self {
        let _span = colt_obs::span("storage.btree.bulk_load");
        let order = default_order(key_width);
        debug_assert!(
            entries.windows(2).all(|w| (&w[0].0, w[0].1) <= (&w[1].0, w[1].1)),
            "bulk_load requires input sorted by (key, rowid)"
        );
        let fill = (order * 9 / 10).max(4);
        if entries.is_empty() {
            return Self::with_order(order);
        }
        let mut arena: Vec<Node<K>> = Vec::new();
        let len = entries.len();

        // Build the leaf level.
        let mut level: Vec<((K, RowId), NodeId)> = Vec::new(); // (first composite key, node)
        let mut chunks: Vec<Vec<(K, RowId)>> = Vec::new();
        while !entries.is_empty() {
            let take = fill.min(entries.len());
            let rest = entries.split_off(take);
            chunks.push(std::mem::replace(&mut entries, rest));
        }
        // Avoid a final underfull leaf when possible by rebalancing the
        // last two chunks.
        if chunks.len() >= 2 {
            let last = chunks.len() - 1;
            if chunks[last].len() < fill / 2 {
                let need = fill / 2 - chunks[last].len();
                let prev = &mut chunks[last - 1];
                let moved = prev.split_off(prev.len() - need);
                let mut tail = std::mem::take(&mut chunks[last]);
                let mut merged = moved;
                merged.append(&mut tail);
                chunks[last] = merged;
            }
        }
        for chunk in chunks {
            let first = chunk[0].clone();
            let id = NodeId(arena.len() as u32);
            arena.push(Node::Leaf { entries: chunk, next: None });
            level.push((first, id));
        }
        // Wire the leaf chain.
        for i in 0..level.len().saturating_sub(1) {
            let next = level[i + 1].1;
            if let Node::Leaf { next: n, .. } = &mut arena[level[i].1 .0 as usize] {
                *n = Some(next);
            }
        }

        // Build internal levels bottom-up.
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            for group in level.chunks(fill.max(2)) {
                let first = group[0].0.clone();
                let keys = group[1..].iter().map(|(k, _)| k.clone()).collect();
                let children = group.iter().map(|(_, id)| *id).collect();
                let id = NodeId(arena.len() as u32);
                arena.push(Node::Internal { keys, children });
                next_level.push((first, id));
            }
            level = next_level;
        }
        let root = level[0].1;
        BPlusTreeOf { arena, root, height, len, order }
    }

    /// Number of entries in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (number of levels including the leaf level).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes, which is the page footprint of the index.
    pub fn page_count(&self) -> usize {
        self.arena.len()
    }

    /// Approximate size in bytes.
    pub fn byte_size(&self) -> usize {
        self.page_count() * PAGE_SIZE
    }

    fn node(&self, id: NodeId) -> &Node<K> {
        &self.arena[id.0 as usize]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<K> {
        &mut self.arena[id.0 as usize]
    }

    fn alloc(&mut self, node: Node<K>) -> NodeId {
        let id = NodeId(self.arena.len() as u32);
        self.arena.push(node);
        id
    }

    /// Descend to the leaf that may contain `key`, charging one random
    /// page per level, and return the path of internal nodes taken.
    fn descend(&self, key: &(K, RowId), io: &mut IoStats) -> (NodeId, Vec<(NodeId, usize)>) {
        let mut path = Vec::with_capacity(self.height);
        let mut cur = self.root;
        io.random_pages += 1;
        loop {
            match self.node(cur) {
                Node::Internal { keys, children } => {
                    let slot = keys.partition_point(|k| k <= key);
                    path.push((cur, slot));
                    cur = children[slot];
                    io.random_pages += 1;
                }
                Node::Leaf { .. } => return (cur, path),
            }
        }
    }

    /// Insert an entry. Duplicate keys are allowed.
    pub fn insert(&mut self, key: K, row: RowId) {
        colt_obs::counter("storage.btree.inserts", 1);
        let mut io = IoStats::new(); // insert path charging folded into build cost elsewhere
        let ckey = (key, row);
        let (leaf, path) = self.descend(&ckey, &mut io);
        let order = self.order;
        if let Node::Leaf { entries, .. } = self.node_mut(leaf) {
            let pos = entries.partition_point(|(k, r)| (k, r) < (&ckey.0, &ckey.1));
            entries.insert(pos, ckey);
        }
        self.len += 1;
        self.split_up(leaf, path, order);
    }

    /// Split overflowing nodes from `node` up along `path`.
    fn split_up(&mut self, mut node: NodeId, mut path: Vec<(NodeId, usize)>, order: usize) {
        loop {
            let (sep, sibling) = match self.node_mut(node) {
                Node::Leaf { entries, next } => {
                    if entries.len() <= order {
                        return;
                    }
                    // Never split inside a run of equal composites: pick the
                    // boundary closest to the midpoint where adjacent entries
                    // differ. Exact duplicates only arise if a caller inserts
                    // the same (value, rowid) twice; we still keep the tree
                    // searchable by tolerating a temporarily oversized leaf
                    // in the (degenerate) all-equal case.
                    let half = entries.len() / 2;
                    let differs = |i: usize| entries[i - 1] != entries[i];
                    let mid = (half..entries.len())
                        .find(|&i| differs(i))
                        .or_else(|| (1..half).rev().find(|&i| differs(i)));
                    let Some(mid) = mid else { return };
                    let right_entries = entries.split_off(mid);
                    let sep = right_entries[0].clone();
                    let right_next = *next;
                    let sibling = Node::Leaf { entries: right_entries, next: right_next };
                    (sep, sibling)
                }
                Node::Internal { keys, children } => {
                    if children.len() <= order {
                        return;
                    }
                    let mid = keys.len() / 2;
                    let sep = keys[mid].clone();
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // the separator moves up
                    let right_children = children.split_off(mid + 1);
                    (sep, Node::Internal { keys: right_keys, children: right_children })
                }
            };
            colt_obs::counter("storage.btree.splits", 1);
            let sib_id = self.alloc(sibling);
            if let Node::Leaf { next, .. } = self.node_mut(node) {
                *next = Some(sib_id);
            }
            match path.pop() {
                Some((parent, slot)) => {
                    if let Node::Internal { keys, children } = self.node_mut(parent) {
                        keys.insert(slot, sep);
                        children.insert(slot + 1, sib_id);
                    }
                    node = parent;
                }
                None => {
                    // Split reached the root: grow the tree.
                    let old_root = self.root;
                    let new_root =
                        self.alloc(Node::Internal { keys: vec![sep], children: vec![old_root, sib_id] });
                    self.root = new_root;
                    self.height += 1;
                    return;
                }
            }
        }
    }

    /// Remove the entry `(key, row)` if present; returns whether it
    /// existed.
    ///
    /// Deletion is *lazy*, as in PostgreSQL's nbtree: the entry is
    /// removed from its leaf but underfull nodes are not merged and
    /// separators are not rewritten (they remain valid as routing
    /// bounds). Space is reclaimed when the index is rebuilt. All
    /// search invariants are preserved; `page_count` reports the
    /// original footprint until a rebuild.
    pub fn remove(&mut self, key: &K, row: RowId) -> bool {
        let mut io = IoStats::new();
        let ckey = (key.clone(), row);
        let (leaf, _) = self.descend(&ckey, &mut io);
        // The entry may sit in a later leaf when duplicates straddle a
        // (degenerate) split; walk the chain while keys may still match.
        let mut cur = leaf;
        loop {
            // colt: allow(panic-policy) — descend() and leaf `next` chains only yield leaf nodes
            let Node::Leaf { entries, next } = self.node_mut(cur) else { unreachable!() };
            if let Some(pos) = entries.iter().position(|(k, r)| k == key && *r == row) {
                entries.remove(pos);
                self.len -= 1;
                return true;
            }
            // Stop once the leaf starts beyond the key.
            let past = entries.first().is_some_and(|(k, _)| k > key);
            match (past, *next) {
                (false, Some(n)) => cur = n,
                _ => return false,
            }
        }
    }

    /// Point lookup: all row ids whose key equals `key`.
    pub fn lookup(&self, key: &K, io: &mut IoStats) -> Vec<RowId> {
        let mut out = Vec::new();
        self.lookup_into(key, &mut out, io);
        out
    }

    /// Buffer-reusing form of [`BPlusTreeOf::lookup`]: appends the
    /// matching row ids to `out` instead of allocating a fresh vector.
    /// Charges exactly what `lookup` charges, so batch executors that
    /// probe once per outer row can reuse one buffer without perturbing
    /// the I/O model.
    pub fn lookup_into(&self, key: &K, out: &mut Vec<RowId>, io: &mut IoStats) {
        colt_obs::counter("storage.btree.lookups", 1);
        self.range_into(Bound::Included(key.clone()), Bound::Included(key.clone()), out, io);
    }

    /// Range scan over `[lo, hi]` bounds. Charges `height` random pages
    /// for the initial descent and one sequential page per further leaf.
    pub fn range(&self, lo: Bound<K>, hi: Bound<K>, io: &mut IoStats) -> Vec<RowId> {
        let mut out = Vec::new();
        self.range_into(lo, hi, &mut out, io);
        out
    }

    /// Buffer-reusing form of [`BPlusTreeOf::range`]: appends matches to
    /// `out`. The trailing `cpu_ops` comparison charge covers only the
    /// row ids appended by *this* call, keeping charges identical to
    /// `range` regardless of what the buffer already held.
    pub fn range_into(&self, lo: Bound<K>, hi: Bound<K>, out: &mut Vec<RowId>, io: &mut IoStats) {
        colt_obs::counter("storage.btree.ranges", 1);
        let appended_from = out.len();
        let start_key = match &lo {
            Bound::Included(k) | Bound::Excluded(k) => Some((k.clone(), RowId(0))),
            Bound::Unbounded => None,
        };
        let (mut leaf, _) = match &start_key {
            Some(k) => self.descend(k, io),
            None => {
                // Descend to the left-most leaf.
                io.random_pages += self.height as u64;
                (self.leftmost_leaf(), Vec::new())
            }
        };
        let in_lo = |k: &K| match &lo {
            Bound::Included(b) => k >= b,
            Bound::Excluded(b) => k > b,
            Bound::Unbounded => true,
        };
        let in_hi = |k: &K| match &hi {
            Bound::Included(b) => k <= b,
            Bound::Excluded(b) => k < b,
            Bound::Unbounded => true,
        };
        let mut first = true;
        loop {
            // colt: allow(panic-policy) — descend() and leaf `next` chains only yield leaf nodes
            let Node::Leaf { entries, next } = self.node(leaf) else { unreachable!("descend ends at leaf") };
            if !first {
                io.seq_pages += 1;
            }
            first = false;
            for (k, rid) in entries {
                if !in_hi(k) {
                    io.cpu_ops += (out.len() - appended_from) as u64;
                    return;
                }
                if in_lo(k) {
                    out.push(*rid);
                }
            }
            match next {
                Some(n) => leaf = *n,
                None => break,
            }
        }
        io.cpu_ops += (out.len() - appended_from) as u64;
    }

    /// Generalized ordered scan: descend to the first key `>= lo` (or
    /// the leftmost leaf when unbounded) and walk the leaf chain,
    /// letting `keep` decide per key whether to take, skip, or stop.
    ///
    /// This is the primitive behind composite-index prefix scans, where
    /// the stopping condition ("key no longer starts with the prefix")
    /// is not expressible as a closed upper bound on the key type.
    pub fn scan_from(
        &self,
        lo: Bound<K>,
        mut keep: impl FnMut(&K) -> ScanControl,
        io: &mut IoStats,
    ) -> Vec<RowId> {
        let mut out = Vec::new();
        let start_key = match &lo {
            Bound::Included(k) | Bound::Excluded(k) => Some((k.clone(), RowId(0))),
            Bound::Unbounded => None,
        };
        let mut leaf = match &start_key {
            Some(k) => self.descend(k, io).0,
            None => {
                io.random_pages += self.height as u64;
                self.leftmost_leaf()
            }
        };
        let in_lo = |k: &K| match &lo {
            Bound::Included(b) => k >= b,
            Bound::Excluded(b) => k > b,
            Bound::Unbounded => true,
        };
        let mut first = true;
        loop {
            // colt: allow(panic-policy) — descend() and leaf `next` chains only yield leaf nodes
            let Node::Leaf { entries, next } = self.node(leaf) else { unreachable!() };
            if !first {
                io.seq_pages += 1;
            }
            first = false;
            for (k, rid) in entries {
                if !in_lo(k) {
                    continue;
                }
                match keep(k) {
                    ScanControl::Take => out.push(*rid),
                    ScanControl::Skip => {}
                    ScanControl::Stop => {
                        io.cpu_ops += out.len() as u64;
                        return out;
                    }
                }
            }
            match next {
                Some(n) => leaf = *n,
                None => break,
            }
        }
        io.cpu_ops += out.len() as u64;
        out
    }

    fn leftmost_leaf(&self) -> NodeId {
        let mut cur = self.root;
        loop {
            match self.node(cur) {
                Node::Internal { children, .. } => cur = children[0],
                Node::Leaf { .. } => return cur,
            }
        }
    }

    /// Iterate all entries in key order (no I/O charged; used by tests
    /// and statistics).
    pub fn iter(&self) -> impl Iterator<Item = (&K, RowId)> + '_ {
        let mut leaves = Vec::new();
        let mut cur = Some(self.leftmost_leaf());
        while let Some(id) = cur {
            // colt: allow(panic-policy) — leftmost_leaf() and leaf `next` chains only yield leaf nodes
            let Node::Leaf { entries, next } = self.node(id) else { unreachable!() };
            leaves.push(entries);
            cur = *next;
        }
        leaves.into_iter().flatten().map(|(k, r)| (k, *r))
    }

    /// Like [`BPlusTree::check_invariants`] but tolerant of underfull
    /// and empty leaves, which lazy deletion legitimately produces.
    /// Test-support API.
    pub fn check_invariants_after_deletes(&self) {
        let iter_len = self.iter().count();
        assert_eq!(iter_len, self.len, "len matches leaf chain");
        let keys: Vec<_> = self.iter().map(|(k, _)| k.clone()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "leaf chain sorted");
    }

    /// Verify structural invariants; panics with a description on
    /// violation. Test-support API.
    pub fn check_invariants(&self) {
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, 1, None, None, &mut leaf_depths);
        assert!(leaf_depths.iter().all(|&d| d == self.height), "all leaves at height {}", self.height);
        let iter_len = self.iter().count();
        assert_eq!(iter_len, self.len, "len matches leaf chain");
        let keys: Vec<_> = self.iter().map(|(k, _)| k.clone()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "leaf chain sorted");
    }

    fn check_node(
        &self,
        id: NodeId,
        depth: usize,
        lo: Option<&(K, RowId)>,
        hi: Option<&(K, RowId)>,
        leaf_depths: &mut Vec<usize>,
    ) {
        match self.node(id) {
            Node::Leaf { entries, .. } => {
                leaf_depths.push(depth);
                let all_equal = entries.windows(2).all(|w| w[0] == w[1]);
                assert!(
                    entries.len() <= self.order || all_equal,
                    "leaf within capacity (unless degenerate all-equal run)"
                );
                for e in entries {
                    if let Some(lo) = lo {
                        assert!(e >= lo, "leaf key >= lower separator");
                    }
                    if let Some(hi) = hi {
                        assert!(e < hi, "leaf key < upper separator");
                    }
                }
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "internal child/key arity");
                assert!(children.len() <= self.order, "internal within capacity");
                assert!(keys.windows(2).all(|w| w[0] <= w[1]), "separators sorted");
                for i in 0..children.len() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(children[i], depth + 1, child_lo, child_hi, leaf_depths);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new(8);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        let mut io = IoStats::new();
        assert!(t.lookup(&v(1), &mut io).is_empty());
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100 {
            t.insert(v(i), RowId(i as u32));
        }
        t.check_invariants();
        let mut io = IoStats::new();
        for i in 0..100 {
            let hits = t.lookup(&v(i), &mut io);
            assert_eq!(hits, vec![RowId(i as u32)], "key {i}");
        }
        assert!(t.height() > 2, "order-4 tree with 100 keys must be deep");
    }

    #[test]
    fn duplicate_keys() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..50 {
            t.insert(v(7), RowId(i));
        }
        t.check_invariants();
        let mut io = IoStats::new();
        let mut hits = t.lookup(&v(7), &mut io);
        hits.sort();
        assert_eq!(hits.len(), 50);
        assert_eq!(hits[0], RowId(0));
        assert_eq!(hits[49], RowId(49));
    }

    #[test]
    fn into_variants_append_and_charge_identically() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..200 {
            t.insert(v(i % 40), RowId(i as u32));
        }
        // lookup vs lookup_into onto a non-empty buffer.
        let mut io_a = IoStats::new();
        let hits = t.lookup(&v(7), &mut io_a);
        let mut io_b = IoStats::new();
        let mut buf = vec![RowId(9999)];
        t.lookup_into(&v(7), &mut buf, &mut io_b);
        assert_eq!(io_a, io_b, "reused buffer must not change charges");
        assert_eq!(&buf[1..], &hits[..], "matches append after existing content");
        assert_eq!(buf[0], RowId(9999));
        // range vs range_into, including the early-return path.
        let mut io_a = IoStats::new();
        let r = t.range(Bound::Included(v(5)), Bound::Excluded(v(9)), &mut io_a);
        let mut io_b = IoStats::new();
        let mut buf = r.clone();
        t.range_into(Bound::Included(v(5)), Bound::Excluded(v(9)), &mut buf, &mut io_b);
        assert_eq!(io_a, io_b);
        assert_eq!(buf.len(), 2 * r.len());
    }

    #[test]
    fn range_scan_bounds() {
        let mut t = BPlusTree::with_order(5);
        for i in 0..200 {
            t.insert(v(i), RowId(i as u32));
        }
        let mut io = IoStats::new();
        let r = t.range(Bound::Included(v(10)), Bound::Excluded(v(20)), &mut io);
        assert_eq!(r.len(), 10);
        let r = t.range(Bound::Excluded(v(10)), Bound::Included(v(20)), &mut io);
        assert_eq!(r.len(), 10);
        let r = t.range(Bound::Unbounded, Bound::Excluded(v(5)), &mut io);
        assert_eq!(r.len(), 5);
        let r = t.range(Bound::Included(v(195)), Bound::Unbounded, &mut io);
        assert_eq!(r.len(), 5);
        let r = t.range(Bound::Unbounded, Bound::Unbounded, &mut io);
        assert_eq!(r.len(), 200);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries: Vec<_> = (0..1000).map(|i| (v(i), RowId(i as u32))).collect();
        let bulk = BPlusTree::bulk_load(8, entries.clone());
        bulk.check_invariants();
        let mut incr = BPlusTree::new(8);
        for (k, r) in entries {
            incr.insert(k, r);
        }
        incr.check_invariants();
        assert_eq!(bulk.len(), incr.len());
        let a: Vec<_> = bulk.iter().map(|(k, r)| (k.clone(), r)).collect();
        let b: Vec<_> = incr.iter().map(|(k, r)| (k.clone(), r)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let t = BPlusTree::bulk_load(8, vec![]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_load(8, vec![(v(1), RowId(0))]);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn descent_charges_height_random_pages() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..500 {
            t.insert(v(i), RowId(i as u32));
        }
        let h = t.height() as u64;
        let mut io = IoStats::new();
        t.lookup(&v(250), &mut io);
        assert_eq!(io.random_pages, h);
    }

    #[test]
    fn long_range_charges_sequential_leaves() {
        let entries: Vec<_> = (0..10_000).map(|i| (v(i), RowId(i as u32))).collect();
        let t = BPlusTree::bulk_load(8, entries);
        let mut io = IoStats::new();
        let r = t.range(Bound::Unbounded, Bound::Unbounded, &mut io);
        assert_eq!(r.len(), 10_000);
        assert!(io.seq_pages > 10, "full scan should walk many leaves, got {}", io.seq_pages);
        assert_eq!(io.random_pages, t.height() as u64);
    }

    #[test]
    fn page_count_grows_with_entries() {
        let small = BPlusTree::bulk_load(8, (0..100).map(|i| (v(i), RowId(i as u32))).collect());
        let large = BPlusTree::bulk_load(8, (0..100_000).map(|i| (v(i), RowId(i as u32))).collect());
        assert!(large.page_count() > small.page_count() * 100);
        assert_eq!(large.byte_size(), large.page_count() * PAGE_SIZE);
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..300 {
            t.insert(v(i), RowId(i as u32));
        }
        let mut io = IoStats::new();
        assert!(t.remove(&v(150), RowId(150)));
        assert!(!t.remove(&v(150), RowId(150)), "second removal fails");
        assert!(!t.remove(&v(150), RowId(151)), "wrong rowid fails");
        assert_eq!(t.len(), 299);
        assert!(t.lookup(&v(150), &mut io).is_empty());
        assert_eq!(t.lookup(&v(151), &mut io), vec![RowId(151)]);
        t.check_invariants();
    }

    #[test]
    fn remove_duplicates_individually() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..30 {
            t.insert(v(7), RowId(i));
        }
        for i in (0..30).step_by(2) {
            assert!(t.remove(&v(7), RowId(i)));
        }
        let mut io = IoStats::new();
        let mut hits = t.lookup(&v(7), &mut io);
        hits.sort();
        assert_eq!(hits, (1..30).step_by(2).map(RowId).collect::<Vec<_>>());
        t.check_invariants_after_deletes();
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let mut t = BPlusTree::with_order(5);
        for i in 0..200 {
            t.insert(v(i), RowId(i as u32));
        }
        for i in 0..200 {
            assert!(t.remove(&v(i), RowId(i as u32)), "remove {i}");
        }
        assert!(t.is_empty());
        let mut io = IoStats::new();
        assert!(t.range(Bound::Unbounded, Bound::Unbounded, &mut io).is_empty());
        for i in 0..50 {
            t.insert(v(i), RowId(i as u32));
        }
        assert_eq!(t.len(), 50);
        t.check_invariants_after_deletes();
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        use crate::btree::CompositeBPlusTree;
        let mut t = CompositeBPlusTree::with_order(6);
        for a in 0..20i64 {
            for b in 0..10i64 {
                t.insert(vec![v(a), v(b)], RowId((a * 10 + b) as u32));
            }
        }
        t.check_invariants();
        let mut io = IoStats::new();
        // Point lookup on the full composite.
        assert_eq!(t.lookup(&vec![v(7), v(3)], &mut io), vec![RowId(73)]);
        // Prefix range: every (7, *) entry via lexicographic bounds.
        let hits = t.range(
            Bound::Included(vec![v(7)]),
            Bound::Excluded(vec![v(8)]),
            &mut io,
        );
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|r| (70..80).contains(&r.0)));
        // Prefix + second-column range.
        let hits = t.range(
            Bound::Included(vec![v(7), v(2)]),
            Bound::Included(vec![v(7), v(5)]),
            &mut io,
        );
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn scan_from_take_skip_stop() {
        let mut t = BPlusTree::with_order(5);
        for i in 0..100 {
            t.insert(v(i), RowId(i as u32));
        }
        let mut io = IoStats::new();
        // Take evens in [10, 30), stop at 30.
        let hits = t.scan_from(
            Bound::Included(v(10)),
            |k| match k {
                Value::Int(x) if *x >= 30 => crate::btree::ScanControl::Stop,
                Value::Int(x) if *x % 2 == 0 => crate::btree::ScanControl::Take,
                _ => crate::btree::ScanControl::Skip,
            },
            &mut io,
        );
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|r| r.0 % 2 == 0 && (10..30).contains(&r.0)));
    }

    #[test]
    fn composite_prefix_scan_via_scan_from() {
        use crate::btree::{CompositeBPlusTree, ScanControl};
        let mut t = CompositeBPlusTree::with_order(6);
        for a in 0..20i64 {
            for b in 0..10i64 {
                t.insert(vec![v(a), v(b)], RowId((a * 10 + b) as u32));
            }
        }
        let mut io = IoStats::new();
        let prefix = vec![v(7)];
        let hits = t.scan_from(
            Bound::Included(prefix.clone()),
            |k| {
                if k.starts_with(&prefix) {
                    ScanControl::Take
                } else {
                    ScanControl::Stop
                }
            },
            &mut io,
        );
        assert_eq!(hits.len(), 10);
        // Early stop keeps the scan short: far fewer leaves than a full
        // traversal.
        assert!(io.seq_pages < 5);
    }

    #[test]
    fn composite_bulk_load_and_remove() {
        use crate::btree::CompositeBPlusTree;
        let entries: Vec<_> = (0..500i64)
            .map(|i| (vec![v(i / 10), v(i % 10)], RowId(i as u32)))
            .collect();
        let t2 = CompositeBPlusTree::bulk_load(12, entries);
        t2.check_invariants();
        assert_eq!(t2.len(), 500);
        let mut t2 = t2;
        assert!(t2.remove(&vec![v(3), v(4)], RowId(34)));
        assert_eq!(t2.len(), 499);
        let mut io = IoStats::new();
        assert!(t2.lookup(&vec![v(3), v(4)], &mut io).is_empty());
    }

    #[test]
    fn random_insert_order_stays_valid() {
        // Deterministic pseudo-shuffle without rand: LCG permutation.
        let mut t = BPlusTree::with_order(6);
        let mut x = 1u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            t.insert(v((x % 500) as i64), RowId((x % 10_000) as u32));
        }
        t.check_invariants();
        assert_eq!(t.len(), 2000);
    }
}
