//! Rows and row identifiers.

use crate::value::Value;

/// Identifier of a row inside a single heap table: its position in the
/// heap. Stable because the reproduction's tables are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u32);

impl RowId {
    /// The heap slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A row is a fixed-arity tuple of values; arity matches the table schema.
pub type Row = Box<[Value]>;

/// Build a row from a vector of values.
pub fn row_from(values: Vec<Value>) -> Row {
    values.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowid_index() {
        assert_eq!(RowId(7).index(), 7);
    }

    #[test]
    fn row_from_preserves_values() {
        let r = row_from(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], Value::Int(1));
    }
}
