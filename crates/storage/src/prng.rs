//! A tiny deterministic PRNG (SplitMix64) shared by every layer of the
//! reproduction: data generation, workload sampling, COLT's internal
//! profiling decisions, and the multi-client interleaver.
//!
//! Keeping the generator self-contained (no third-party `rand`) makes
//! every experiment bit-reproducible from its seed and lets the whole
//! workspace build with no registry access.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `u64` in `[0, n)`; `n` must be positive.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span.wrapping_add(1).max(1)) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`; returns `lo` for empty ranges.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Prng::new(7);
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = Prng::new(99);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn int_range_inclusive_bounds() {
        let mut r = Prng::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.int_range(-3, 3);
            assert!((-3..=3).contains(&x));
            seen_lo |= x == -3;
            seen_hi |= x == 3;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(r.int_range(5, 5), 5);
    }

    #[test]
    fn f64_range_bounds() {
        let mut r = Prng::new(13);
        for _ in 0..10_000 {
            let x = r.f64_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(r.f64_range(3.0, 3.0), 3.0);
        assert_eq!(r.f64_range(3.0, 1.0), 3.0);
    }
}
