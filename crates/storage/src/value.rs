//! Typed values stored in table columns.
//!
//! The engine supports the four scalar types that appear in the TPC-H-like
//! schema used by the paper's evaluation: 64-bit integers, 64-bit floats,
//! strings, and dates (stored as days since an arbitrary epoch).
//!
//! `Value` implements a *total* order so that values can live in B+ trees
//! and be compared by range predicates. Values of different types order by
//! their type tag; floats use IEEE total ordering via `f64::total_cmp`.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Variable-length string (charged a fixed average width).
    Str,
    /// Calendar date as days since an arbitrary epoch.
    Date,
}

impl ValueType {
    /// Approximate on-disk width in bytes, used by the page model to derive
    /// tuples-per-page. Strings are charged a fixed average width, matching
    /// the fixed-width CHAR columns of the TPC-H-like schema.
    pub const fn byte_width(self) -> usize {
        match self {
            ValueType::Int => 8,
            ValueType::Float => 8,
            ValueType::Str => 24,
            ValueType::Date => 4,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Str => "STR",
            ValueType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Variable-length string.
    Str(String),
    /// Calendar date as days since an arbitrary epoch.
    Date(i32),
}

impl Value {
    /// The type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Date(_) => ValueType::Date,
        }
    }

    /// Interpret the value as a point on the real line, used by histogram
    /// bucketing and selectivity interpolation. Strings hash to a stable
    /// lexicographic prefix code so that range fractions are meaningful.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Date(d) => *d as f64,
            Value::Str(s) => str_prefix_code(s),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Str(_) => 2,
            Value::Date(_) => 3,
        }
    }
}

/// Map a string to a number preserving lexicographic order on the first
/// eight bytes. Used only for interpolation inside histogram buckets.
fn str_prefix_code(s: &str) -> f64 {
    let mut code = 0u64;
    for (i, b) in s.bytes().take(8).enumerate() {
        code |= (b as u64) << (56 - 8 * i);
    }
    code as f64
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Date(d) => d.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(5), Value::Int(5));
    }

    #[test]
    fn float_total_ordering_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp puts NaN above all finite values.
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn cross_type_ordering_is_by_type_rank() {
        assert!(Value::Int(i64::MAX) < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Float(1e300) < Value::Str(String::new()));
        assert!(Value::Str("zzz".into()) < Value::Date(i32::MIN));
    }

    #[test]
    fn str_prefix_code_preserves_order() {
        let a = str_prefix_code("apple");
        let b = str_prefix_code("banana");
        assert!(a < b);
        assert!(str_prefix_code("") <= a);
    }

    #[test]
    fn as_f64_matches_scalars() {
        assert_eq!(Value::Int(7).as_f64(), 7.0);
        assert_eq!(Value::Date(100).as_f64(), 100.0);
        assert_eq!(Value::Float(2.5).as_f64(), 2.5);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("x".into()).to_string(), "'x'");
        assert_eq!(Value::Date(12).to_string(), "date(12)");
    }

    #[test]
    fn value_type_widths() {
        assert_eq!(ValueType::Int.byte_width(), 8);
        assert_eq!(ValueType::Date.byte_width(), 4);
        assert_eq!(ValueType::Str.byte_width(), 24);
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(42)), h(&Value::Int(42)));
        assert_eq!(h(&Value::Str("ab".into())), h(&Value::Str("ab".into())));
    }
}
