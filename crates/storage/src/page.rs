//! The page model and I/O accounting.
//!
//! The reproduction does not persist data to disk; instead every physical
//! operator charges a deterministic simulated clock for the pages it
//! *would* have touched. The accounting distinguishes sequential from
//! random page accesses, mirroring PostgreSQL's `seq_page_cost` /
//! `random_page_cost` split, so that index scans are only attractive for
//! selective predicates — the behaviour COLT's profiling must discover.


/// Size of a page in bytes (PostgreSQL default).
pub const PAGE_SIZE: usize = 8192;

/// Per-tuple overhead in bytes (header + item pointer), mirroring the heap
/// tuple overhead in PostgreSQL.
pub const TUPLE_OVERHEAD: usize = 28;

/// Number of tuples of the given payload width that fit on one page.
pub fn tuples_per_page(row_width: usize) -> usize {
    (PAGE_SIZE / (row_width + TUPLE_OVERHEAD)).max(1)
}

/// Number of pages needed to store `rows` tuples of the given width.
pub fn pages_for(rows: usize, row_width: usize) -> usize {
    if rows == 0 {
        return 0;
    }
    rows.div_ceil(tuples_per_page(row_width))
}

/// Counters of physical work performed by an operator or a whole query.
///
/// These are *actual* counts observed during execution, as opposed to the
/// optimizer's estimates; the gap between the two is the realistic
/// estimation noise COLT has to tolerate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Pages read in sequential order (heap scans, index leaf chains).
    pub seq_pages: u64,
    /// Pages read in random order (index descents, heap fetches by rowid).
    pub random_pages: u64,
    /// Tuples materialized or examined by an operator.
    pub tuples: u64,
    /// Pages written (index builds).
    pub pages_written: u64,
    /// Cheap per-row CPU operations (comparisons, hash probes).
    pub cpu_ops: u64,
}

impl IoStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate another counter into this one.
    pub fn accumulate(&mut self, other: &IoStats) {
        self.seq_pages += other.seq_pages;
        self.random_pages += other.random_pages;
        self.tuples += other.tuples;
        self.pages_written += other.pages_written;
        self.cpu_ops += other.cpu_ops;
    }

    /// Total pages touched, regardless of access pattern.
    pub fn total_pages(&self) -> u64 {
        self.seq_pages + self.random_pages + self.pages_written
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(mut self, rhs: IoStats) -> IoStats {
        self.accumulate(&rhs);
        self
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.accumulate(&rhs);
    }
}

impl std::ops::Sub for IoStats {
    type Output = IoStats;
    /// Difference of two counters; `rhs` must be component-wise ≤ `self`
    /// (e.g. a snapshot taken earlier on the same accumulator).
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            seq_pages: self.seq_pages - rhs.seq_pages,
            random_pages: self.random_pages - rhs.random_pages,
            tuples: self.tuples - rhs.tuples,
            pages_written: self.pages_written - rhs.pages_written,
            cpu_ops: self.cpu_ops - rhs.cpu_ops,
        }
    }
}

/// Cost-model constants used to turn [`IoStats`] into simulated
/// milliseconds. Values follow PostgreSQL's defaults, scaled so one
/// sequential page read costs one cost unit = 0.1 simulated ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of reading one page sequentially.
    pub seq_page_cost: f64,
    /// Cost of reading one page at a random location.
    pub random_page_cost: f64,
    /// Cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// Cost of one cheap per-row operation (comparison, hash probe).
    pub cpu_operator_cost: f64,
    /// Cost of writing one page (index builds).
    pub page_write_cost: f64,
    /// Simulated milliseconds per cost unit.
    pub ms_per_cost_unit: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            page_write_cost: 2.0,
            ms_per_cost_unit: 0.1,
        }
    }
}

impl CostParams {
    /// Cost (in abstract cost units) of the given physical work.
    pub fn cost_of(&self, io: &IoStats) -> f64 {
        self.seq_page_cost * io.seq_pages as f64
            + self.random_page_cost * io.random_pages as f64
            + self.cpu_tuple_cost * io.tuples as f64
            + self.cpu_operator_cost * io.cpu_ops as f64
            + self.page_write_cost * io.pages_written as f64
    }

    /// Simulated wall-clock milliseconds of the given physical work.
    pub fn millis_of(&self, io: &IoStats) -> f64 {
        self.cost_of(io) * self.ms_per_cost_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_per_page_reasonable() {
        // 100-byte rows: 8192 / 128 = 64 tuples per page.
        assert_eq!(tuples_per_page(100), 64);
        // Gigantic rows still fit one per page.
        assert_eq!(tuples_per_page(100_000), 1);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0, 100), 0);
        assert_eq!(pages_for(1, 100), 1);
        assert_eq!(pages_for(64, 100), 1);
        assert_eq!(pages_for(65, 100), 2);
    }

    #[test]
    fn iostats_addition() {
        let a = IoStats { seq_pages: 1, random_pages: 2, tuples: 3, pages_written: 4, cpu_ops: 5 };
        let b = IoStats { seq_pages: 10, random_pages: 20, tuples: 30, pages_written: 40, cpu_ops: 50 };
        let c = a + b;
        assert_eq!(c.seq_pages, 11);
        assert_eq!(c.random_pages, 22);
        assert_eq!(c.tuples, 33);
        assert_eq!(c.pages_written, 44);
        assert_eq!(c.cpu_ops, 55);
        assert_eq!(c.total_pages(), 11 + 22 + 44);
    }

    #[test]
    fn iostats_subtraction_inverts_addition() {
        let a = IoStats { seq_pages: 1, random_pages: 2, tuples: 3, pages_written: 4, cpu_ops: 5 };
        let b = IoStats { seq_pages: 10, random_pages: 20, tuples: 30, pages_written: 40, cpu_ops: 50 };
        assert_eq!((a + b) - a, b);
    }

    #[test]
    fn cost_prefers_sequential_access() {
        let p = CostParams::default();
        let seq = IoStats { seq_pages: 100, ..Default::default() };
        let rnd = IoStats { random_pages: 100, ..Default::default() };
        assert!(p.cost_of(&rnd) > p.cost_of(&seq));
        assert_eq!(p.cost_of(&rnd), 4.0 * p.cost_of(&seq));
    }

    #[test]
    fn millis_scale() {
        let p = CostParams::default();
        let io = IoStats { seq_pages: 10, ..Default::default() };
        assert!((p.millis_of(&io) - 1.0).abs() < 1e-12);
    }
}
