//! # colt-storage
//!
//! Storage substrate for the COLT reproduction: typed values, an 8 KiB
//! page model with deterministic I/O accounting, append-only heap tables,
//! and an arena-based B+ tree used for every materialized single-column
//! index.
//!
//! Nothing here touches the filesystem. All tables live in memory and
//! every operator charges [`page::IoStats`] for the pages a disk-resident
//! system of the same shape would read or write; [`page::CostParams`]
//! converts those counters into deterministic simulated milliseconds.
//! See `DESIGN.md` §2 for why this substitution preserves the behaviour
//! the paper measures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod heap;
pub mod page;
pub mod prng;
pub mod row;
pub mod value;

pub use btree::{BPlusTree, BPlusTreeOf, CompositeBPlusTree, ScanControl, TreeKey};
pub use heap::HeapTable;
pub use page::{pages_for, tuples_per_page, CostParams, IoStats, PAGE_SIZE};
pub use prng::Prng;
pub use row::{row_from, Row, RowId};
pub use value::{Value, ValueType};
