//! Append-only in-memory heap tables with page-level I/O accounting.

use crate::page::{pages_for, tuples_per_page, IoStats};
use crate::row::{Row, RowId};
use crate::value::Value;

/// An in-memory heap of rows. The heap knows its (fixed) row width so it
/// can report how many 8 KiB pages it occupies and charge scans
/// accordingly.
#[derive(Debug, Clone)]
pub struct HeapTable {
    rows: Vec<Row>,
    row_width: usize,
}

impl HeapTable {
    /// Create an empty heap whose rows have the given payload width in
    /// bytes (the sum of the column widths).
    pub fn new(row_width: usize) -> Self {
        HeapTable { rows: Vec::new(), row_width: row_width.max(1) }
    }

    /// Create a heap pre-sized for `capacity` rows.
    pub fn with_capacity(row_width: usize, capacity: usize) -> Self {
        HeapTable { rows: Vec::with_capacity(capacity), row_width: row_width.max(1) }
    }

    /// Append a row, returning its id.
    pub fn insert(&mut self, row: Row) -> RowId {
        // colt: allow(panic-policy) — RowId is u32 by design; >4B rows is beyond every supported scale
        let id = RowId(u32::try_from(self.rows.len()).expect("heap table exceeds u32 rows"));
        self.rows.push(row);
        id
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// True when the heap has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Payload width of a row in bytes.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Number of 8 KiB pages the heap occupies.
    pub fn page_count(&self) -> usize {
        pages_for(self.rows.len(), self.row_width)
    }

    /// Approximate size in bytes (pages × page size).
    pub fn byte_size(&self) -> usize {
        self.page_count() * crate::page::PAGE_SIZE
    }

    /// Borrow a row without charging I/O (used by index builds that are
    /// accounted at a coarser granularity).
    pub fn peek(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id.index())
    }

    /// Fetch a single row by id, charging one random page access.
    ///
    /// Consecutive fetches of rowids that land on the same page are still
    /// charged individually: the executor is expected to sort and batch
    /// rowids itself when that matters (see `fetch_sorted`).
    pub fn fetch(&self, id: RowId, io: &mut IoStats) -> Option<&Row> {
        colt_obs::counter("storage.heap.fetches", 1);
        let row = self.rows.get(id.index())?;
        io.random_pages += 1;
        io.tuples += 1;
        Some(row)
    }

    /// Fetch many rows by id. The ids are visited in sorted order and
    /// page accesses are deduplicated, modelling a bitmap-style heap
    /// fetch: `k` rowids touching `p` distinct pages cost `p` random page
    /// reads, not `k`.
    pub fn fetch_sorted<'a>(&'a self, ids: &mut Vec<RowId>, io: &mut IoStats) -> Vec<&'a Row> {
        colt_obs::counter("storage.heap.fetches", ids.len() as u64);
        ids.sort_unstable();
        ids.dedup();
        let per_page = tuples_per_page(self.row_width);
        let mut out = Vec::with_capacity(ids.len());
        let mut last_page = usize::MAX;
        for id in ids.iter() {
            if let Some(row) = self.rows.get(id.index()) {
                let page = id.index() / per_page;
                if page != last_page {
                    io.random_pages += 1;
                    last_page = page;
                }
                io.tuples += 1;
                out.push(row);
            }
        }
        out
    }

    /// Full sequential scan. Charges every heap page as a sequential read
    /// and every row as a processed tuple, then yields all rows.
    pub fn scan<'a>(&'a self, io: &mut IoStats) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        colt_obs::counter("storage.heap.scans", 1);
        io.seq_pages += self.page_count() as u64;
        io.tuples += self.rows.len() as u64;
        self.rows.iter().enumerate().map(|(i, r)| (RowId(i as u32), r))
    }

    /// Full sequential scan in fixed-size row chunks, for
    /// batch-at-a-time executors. Charges *identically* to
    /// [`HeapTable::scan`] — every heap page as one sequential read and
    /// every row as one processed tuple, all upfront — so a chunked
    /// consumer is indistinguishable from a row-at-a-time one in the
    /// I/O model. Yields `(id_of_first_row, rows)` chunks with
    /// `rows.len() <= batch_rows` (the final chunk may be short).
    pub fn scan_batches<'a>(
        &'a self,
        batch_rows: usize,
        io: &mut IoStats,
    ) -> impl Iterator<Item = (RowId, &'a [Row])> + 'a {
        colt_obs::counter("storage.heap.scans", 1);
        io.seq_pages += self.page_count() as u64;
        io.tuples += self.rows.len() as u64;
        let step = batch_rows.max(1);
        self.rows.chunks(step).enumerate().map(move |(i, c)| (RowId((i * step) as u32), c))
    }

    /// Iterate rows without charging I/O (statistics builds, tests).
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.rows.iter().enumerate().map(|(i, r)| (RowId(i as u32), r))
    }

    /// Extract the value of one column for a given row id, without I/O.
    pub fn column_value(&self, id: RowId, column: usize) -> Option<&Value> {
        self.rows.get(id.index()).and_then(|r| r.get(column))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::row_from;

    fn heap_with(n: usize) -> HeapTable {
        let mut h = HeapTable::new(100);
        for i in 0..n {
            h.insert(row_from(vec![Value::Int(i as i64)]));
        }
        h
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut h = HeapTable::new(8);
        assert_eq!(h.insert(row_from(vec![Value::Int(1)])), RowId(0));
        assert_eq!(h.insert(row_from(vec![Value::Int(2)])), RowId(1));
        assert_eq!(h.row_count(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    fn scan_charges_all_pages_and_tuples() {
        let h = heap_with(130); // 64 tuples/page at width 100 → 3 pages
        let mut io = IoStats::new();
        let rows: Vec<_> = h.scan(&mut io).collect();
        assert_eq!(rows.len(), 130);
        assert_eq!(io.seq_pages, 3);
        assert_eq!(io.tuples, 130);
        assert_eq!(io.random_pages, 0);
    }

    #[test]
    fn fetch_charges_random_page() {
        let h = heap_with(10);
        let mut io = IoStats::new();
        let r = h.fetch(RowId(3), &mut io).unwrap();
        assert_eq!(r[0], Value::Int(3));
        assert_eq!(io.random_pages, 1);
        assert!(h.fetch(RowId(100), &mut io).is_none());
        // A failed fetch charges nothing.
        assert_eq!(io.random_pages, 1);
    }

    #[test]
    fn fetch_sorted_dedups_pages() {
        let h = heap_with(200); // 64/page → rows 0..63 on page 0
        let mut io = IoStats::new();
        let mut ids = vec![RowId(5), RowId(1), RowId(63), RowId(64), RowId(64)];
        let rows = h.fetch_sorted(&mut ids, &mut io);
        assert_eq!(rows.len(), 4); // duplicate removed
        assert_eq!(io.random_pages, 2); // page 0 and page 1
        assert_eq!(io.tuples, 4);
    }

    #[test]
    fn scan_batches_charges_like_scan_and_chunks_rows() {
        let h = heap_with(200); // 64 tuples/page at width 100 → 4 pages
        let mut io_scan = IoStats::new();
        let rows: Vec<_> = h.scan(&mut io_scan).map(|(_, r)| r.to_vec()).collect();
        let mut io_batch = IoStats::new();
        let mut chunked = Vec::new();
        for (first, chunk) in h.scan_batches(64, &mut io_batch) {
            assert_eq!(first.index() % 64, 0, "chunks start on batch boundaries");
            assert!(chunk.len() <= 64);
            chunked.extend(chunk.iter().map(|r| r.to_vec()));
        }
        assert_eq!(io_scan, io_batch, "chunked scan must charge identically");
        assert_eq!(rows, chunked, "chunked scan must yield the same rows in order");
        // Degenerate batch size is clamped, not a panic or infinite loop.
        let mut io = IoStats::new();
        assert_eq!(h.scan_batches(0, &mut io).count(), 200);
    }

    #[test]
    fn empty_heap_scan() {
        let h = HeapTable::new(100);
        let mut io = IoStats::new();
        assert_eq!(h.scan(&mut io).count(), 0);
        assert_eq!(io.seq_pages, 0);
        assert_eq!(h.page_count(), 0);
        assert_eq!(h.byte_size(), 0);
    }

    #[test]
    fn column_value_access() {
        let mut h = HeapTable::new(16);
        h.insert(row_from(vec![Value::Int(1), Value::Str("x".into())]));
        assert_eq!(h.column_value(RowId(0), 1), Some(&Value::Str("x".into())));
        assert_eq!(h.column_value(RowId(0), 9), None);
        assert_eq!(h.column_value(RowId(5), 0), None);
    }
}
