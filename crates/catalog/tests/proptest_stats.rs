//! Property tests for catalog statistics: histogram-based selectivity
//! estimates must be calibrated against exact fractions computed from
//! the data, and must obey basic axioms (bounds, monotonicity).

use colt_catalog::ColumnStats;
use colt_storage::{row_from, HeapTable, Value};
use proptest::prelude::*;

fn heap_of(values: &[i64]) -> HeapTable {
    let mut h = HeapTable::new(8);
    for &v in values {
        h.insert(row_from(vec![Value::Int(v)]));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `selectivity_le` stays within [0,1], is monotone in the probe,
    /// and tracks the exact fraction within a histogram-resolution
    /// tolerance.
    #[test]
    fn le_estimates_calibrated(
        mut values in prop::collection::vec(-1000i64..1000, 64..2000),
        probes in prop::collection::vec(-1100i64..1100, 1..20),
    ) {
        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        values.sort_unstable();
        let n = values.len() as f64;

        let mut sorted_probes = probes.clone();
        sorted_probes.sort_unstable();
        let mut last_est = 0.0;
        for p in sorted_probes {
            let est = stats.selectivity_le(&Value::Int(p));
            prop_assert!((0.0..=1.0).contains(&est));
            prop_assert!(est + 1e-12 >= last_est, "monotone: {est} < {last_est}");
            last_est = est;

            let exact = values.partition_point(|&v| v <= p) as f64 / n;
            // Equi-depth histograms bound the error by ~2 buckets plus
            // interpolation error on ties.
            prop_assert!(
                (est - exact).abs() < 0.15,
                "probe {p}: est {est} vs exact {exact}"
            );
        }
    }

    /// Equality estimates: non-negative, ≤ 1, and zero outside the
    /// observed domain.
    #[test]
    fn eq_estimates_bounded(
        values in prop::collection::vec(0i64..500, 1..1500),
        probe in -100i64..600,
    ) {
        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        let est = stats.selectivity_eq(&Value::Int(probe));
        prop_assert!((0.0..=1.0).contains(&est));
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        if probe < min || probe > max {
            prop_assert_eq!(est, 0.0);
        } else {
            prop_assert!(est > 0.0);
        }
    }

    /// Range selectivity decomposes consistently: `[lo, hi)` plus
    /// `[hi, ∞)` plus `(-∞, lo)` covers everything.
    #[test]
    fn range_partition_sums_to_one(
        values in prop::collection::vec(0i64..1000, 64..1500),
        a in 0i64..1000,
        b in 0i64..1000,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        let lo_v = Value::Int(lo);
        let hi_v = Value::Int(hi);
        let below = stats.selectivity_range(None, Some(&lo_v));
        let mid = stats.selectivity_range(Some(&lo_v), Some(&hi_v));
        let above = stats.selectivity_range(Some(&hi_v), None);
        let lo_pt = stats.selectivity_eq(&lo_v);
        let hi_pt = stats.selectivity_eq(&hi_v);
        let total = below + lo_pt + mid + hi_pt + above;
        prop_assert!((total - 1.0).abs() < 0.05, "partition total {total}");
    }

    /// Distinct counts are exact for sorted deduplication.
    #[test]
    fn distinct_count_exact(values in prop::collection::vec(0i64..100, 0..500)) {
        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        let mut v = values.clone();
        v.sort_unstable();
        v.dedup();
        prop_assert_eq!(stats.n_distinct, v.len() as u64);
        prop_assert_eq!(stats.row_count, values.len() as u64);
    }
}
