//! Randomized property tests for catalog statistics: histogram-based
//! selectivity estimates must be calibrated against exact fractions
//! computed from the data, and must obey basic axioms (bounds,
//! monotonicity). Cases come from the in-repo seeded PRNG.

use colt_catalog::ColumnStats;
use colt_storage::{row_from, HeapTable, Prng, Value};

const CASES: u64 = 48;

fn heap_of(values: &[i64]) -> HeapTable {
    let mut h = HeapTable::new(8);
    for &v in values {
        h.insert(row_from(vec![Value::Int(v)]));
    }
    h
}

fn values(rng: &mut Prng, lo_len: usize, hi_len: usize, lo: i64, hi: i64) -> Vec<i64> {
    let len = lo_len + rng.below(hi_len - lo_len);
    (0..len).map(|_| rng.int_range(lo, hi - 1)).collect()
}

/// `selectivity_le` stays within [0,1], is monotone in the probe, and
/// tracks the exact fraction within a histogram-resolution tolerance.
#[test]
fn le_estimates_calibrated() {
    let mut rng = Prng::new(0x57A7_0001);
    for case in 0..CASES {
        let mut values = values(&mut rng, 64, 2000, -1000, 1000);
        let probes: Vec<i64> =
            (0..1 + rng.below(19)).map(|_| rng.int_range(-1100, 1099)).collect();

        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        values.sort_unstable();
        let n = values.len() as f64;

        let mut sorted_probes = probes;
        sorted_probes.sort_unstable();
        let mut last_est = 0.0;
        for p in sorted_probes {
            let est = stats.selectivity_le(&Value::Int(p));
            assert!((0.0..=1.0).contains(&est), "case {case}");
            assert!(est + 1e-12 >= last_est, "case {case} monotone: {est} < {last_est}");
            last_est = est;

            let exact = values.partition_point(|&v| v <= p) as f64 / n;
            // Equi-depth histograms bound the error by ~2 buckets plus
            // interpolation error on ties.
            assert!((est - exact).abs() < 0.15, "case {case} probe {p}: est {est} vs exact {exact}");
        }
    }
}

/// Equality estimates: non-negative, ≤ 1, and zero outside the observed
/// domain.
#[test]
fn eq_estimates_bounded() {
    let mut rng = Prng::new(0x57A7_0002);
    for case in 0..CASES {
        let values = values(&mut rng, 1, 1500, 0, 500);
        let probe = rng.int_range(-100, 599);

        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        let est = stats.selectivity_eq(&Value::Int(probe));
        assert!((0.0..=1.0).contains(&est), "case {case}");
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        if probe < min || probe > max {
            assert_eq!(est, 0.0, "case {case}");
        } else {
            assert!(est > 0.0, "case {case}");
        }
    }
}

/// Range selectivity decomposes consistently: `[lo, hi)` plus `[hi, ∞)`
/// plus `(-∞, lo)` covers everything.
#[test]
fn range_partition_sums_to_one() {
    let mut rng = Prng::new(0x57A7_0003);
    for case in 0..CASES {
        let values = values(&mut rng, 64, 1500, 0, 1000);
        let a = rng.int_range(0, 999);
        let b = rng.int_range(0, 999);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        let lo_v = Value::Int(lo);
        let hi_v = Value::Int(hi);
        let below = stats.selectivity_range(None, Some(&lo_v));
        let mid = stats.selectivity_range(Some(&lo_v), Some(&hi_v));
        let above = stats.selectivity_range(Some(&hi_v), None);
        let lo_pt = stats.selectivity_eq(&lo_v);
        let hi_pt = stats.selectivity_eq(&hi_v);
        let total = below + lo_pt + mid + hi_pt + above;
        assert!((total - 1.0).abs() < 0.05, "case {case} partition total {total}");
    }
}

/// Distinct counts are exact for sorted deduplication.
#[test]
fn distinct_count_exact() {
    let mut rng = Prng::new(0x57A7_0004);
    for case in 0..CASES {
        let len = rng.below(500);
        let values: Vec<i64> = (0..len).map(|_| rng.int_range(0, 99)).collect();
        let stats = ColumnStats::analyze(&heap_of(&values), 0);
        let mut v = values.clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(stats.n_distinct, v.len() as u64, "case {case}");
        assert_eq!(stats.row_count, values.len() as u64, "case {case}");
    }
}
