//! This crate's contracts (determinism, layering, output hygiene, panic
//! policy) are enforced statically by colt-analyze; running the engine
//! from every crate's suite means a violation fails `cargo test -p <crate>`
//! without needing the separate binary.

#[test]
fn workspace_passes_colt_analyze() {
    let root = colt_analyze::workspace_root();
    let report = colt_analyze::check_workspace(&root).expect("workspace scan");
    assert!(report.is_clean(), "{}", report.render());
}
