//! Property tests for composite indices: prefix scans must agree with a
//! direct filter over the heap for arbitrary data, prefixes, and range
//! bounds.

use colt_catalog::{build_composite, prefix_scan, CompositeKey, Database, TableSchema, Column};
use colt_storage::{row_from, IoStats, Value, ValueType};
use proptest::prelude::*;
use std::ops::Bound;

fn build_db(rows: &[(i64, i64, i64)]) -> (Database, colt_catalog::TableId) {
    let mut db = Database::new();
    let t = db.add_table(TableSchema::new(
        "t",
        vec![
            Column::new("a", ValueType::Int),
            Column::new("b", ValueType::Int),
            Column::new("c", ValueType::Int),
        ],
    ));
    db.insert_rows(
        t,
        rows.iter().map(|&(a, b, c)| row_from(vec![Value::Int(a), Value::Int(b), Value::Int(c)])),
    );
    db.analyze_all();
    (db, t)
}

fn map_bound(b: Option<(i64, bool)>, upper: bool) -> Bound<Value> {
    match b {
        None => Bound::Unbounded,
        Some((v, true)) => Bound::Included(Value::Int(v)),
        Some((v, false)) => {
            let _ = upper;
            Bound::Excluded(Value::Int(v))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-prefix and partial-prefix scans agree with direct filtering.
    #[test]
    fn prefix_scan_matches_filter(
        rows in prop::collection::vec((0i64..12, 0i64..15, 0i64..50), 0..600),
        pa in 0i64..14,
        pb in 0i64..17,
        prefix_len in 1usize..3,
    ) {
        let (db, t) = build_db(&rows);
        let key = CompositeKey::new(t, vec![0, 1]);
        let m = build_composite(&db, &key);

        let prefix: Vec<Value> = match prefix_len {
            1 => vec![Value::Int(pa)],
            _ => vec![Value::Int(pa), Value::Int(pb)],
        };
        let mut io = IoStats::new();
        let mut got = prefix_scan(&m, &prefix, None, &mut io);
        got.sort();

        let mut want: Vec<_> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b, _))| {
                a == pa && (prefix_len == 1 || b == pb)
            })
            .map(|(i, _)| colt_storage::RowId(i as u32))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Prefix + range on the next column agrees with direct filtering
    /// for every bound shape.
    #[test]
    fn prefix_plus_range_matches_filter(
        rows in prop::collection::vec((0i64..10, 0i64..30, 0i64..50), 0..600),
        pa in 0i64..12,
        lo in prop::option::of((0i64..32, any::<bool>())),
        hi in prop::option::of((0i64..32, any::<bool>())),
    ) {
        let (db, t) = build_db(&rows);
        let key = CompositeKey::new(t, vec![0, 1]);
        let m = build_composite(&db, &key);

        let lo_b = map_bound(lo, false);
        let hi_b = map_bound(hi, true);
        let mut io = IoStats::new();
        let mut got = prefix_scan(&m, &[Value::Int(pa)], Some((lo_b, hi_b)), &mut io);
        got.sort();

        let in_lo = |b: i64| match lo {
            None => true,
            Some((v, true)) => b >= v,
            Some((v, false)) => b > v,
        };
        let in_hi = |b: i64| match hi {
            None => true,
            Some((v, true)) => b <= v,
            Some((v, false)) => b < v,
        };
        let mut want: Vec<_> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b, _))| a == pa && in_lo(b) && in_hi(b))
            .map(|(i, _)| colt_storage::RowId(i as u32))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Three-column composites: scans keyed by any prefix length agree
    /// with filtering.
    #[test]
    fn three_column_prefixes(
        rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 0..400),
        pa in 0i64..7,
        pb in 0i64..7,
        pc in 0i64..7,
        k in 1usize..4,
    ) {
        let (db, t) = build_db(&rows);
        let key = CompositeKey::new(t, vec![0, 1, 2]);
        let m = build_composite(&db, &key);
        let full = [Value::Int(pa), Value::Int(pb), Value::Int(pc)];
        let mut io = IoStats::new();
        let mut got = prefix_scan(&m, &full[..k], None, &mut io);
        got.sort();
        let mut want: Vec<_> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b, c))| {
                a == pa && (k < 2 || b == pb) && (k < 3 || c == pc)
            })
            .map(|(i, _)| colt_storage::RowId(i as u32))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }
}
