//! Randomized property tests for composite indices: prefix scans must
//! agree with a direct filter over the heap for arbitrary data,
//! prefixes, and range bounds. Cases come from the in-repo seeded PRNG,
//! so every run checks the same inputs.

use colt_catalog::{build_composite, prefix_scan, Column, CompositeKey, Database, TableSchema};
use colt_storage::{row_from, IoStats, Prng, Value, ValueType};
use std::ops::Bound;

const CASES: u64 = 48;

fn build_db(rows: &[(i64, i64, i64)]) -> (Database, colt_catalog::TableId) {
    let mut db = Database::new();
    let t = db.add_table(TableSchema::new(
        "t",
        vec![
            Column::new("a", ValueType::Int),
            Column::new("b", ValueType::Int),
            Column::new("c", ValueType::Int),
        ],
    ));
    db.insert_rows(
        t,
        rows.iter().map(|&(a, b, c)| row_from(vec![Value::Int(a), Value::Int(b), Value::Int(c)])),
    );
    db.analyze_all();
    (db, t)
}

fn rows(rng: &mut Prng, max_len: usize, a_hi: i64, b_hi: i64, c_hi: i64) -> Vec<(i64, i64, i64)> {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| {
            (rng.int_range(0, a_hi - 1), rng.int_range(0, b_hi - 1), rng.int_range(0, c_hi - 1))
        })
        .collect()
}

fn opt_bound(rng: &mut Prng, hi: i64) -> Option<(i64, bool)> {
    if rng.chance(0.5) {
        Some((rng.int_range(0, hi - 1), rng.chance(0.5)))
    } else {
        None
    }
}

fn map_bound(b: Option<(i64, bool)>) -> Bound<Value> {
    match b {
        None => Bound::Unbounded,
        Some((v, true)) => Bound::Included(Value::Int(v)),
        Some((v, false)) => Bound::Excluded(Value::Int(v)),
    }
}

/// Full-prefix and partial-prefix scans agree with direct filtering.
#[test]
fn prefix_scan_matches_filter() {
    let mut rng = Prng::new(0xC04B_0001);
    for case in 0..CASES {
        let rows = rows(&mut rng, 600, 12, 15, 50);
        let pa = rng.int_range(0, 13);
        let pb = rng.int_range(0, 16);
        let prefix_len = 1 + rng.below(2);

        let (db, t) = build_db(&rows);
        let key = CompositeKey::new(t, vec![0, 1]);
        let m = build_composite(&db, &key);

        let prefix: Vec<Value> = match prefix_len {
            1 => vec![Value::Int(pa)],
            _ => vec![Value::Int(pa), Value::Int(pb)],
        };
        let mut io = IoStats::new();
        let mut got = prefix_scan(&m, &prefix, None, &mut io);
        got.sort();

        let mut want: Vec<_> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b, _))| a == pa && (prefix_len == 1 || b == pb))
            .map(|(i, _)| colt_storage::RowId(i as u32))
            .collect();
        want.sort();
        assert_eq!(got, want, "case {case}");
    }
}

/// Prefix + range on the next column agrees with direct filtering for
/// every bound shape.
#[test]
fn prefix_plus_range_matches_filter() {
    let mut rng = Prng::new(0xC04B_0002);
    for case in 0..CASES {
        let rows = rows(&mut rng, 600, 10, 30, 50);
        let pa = rng.int_range(0, 11);
        let lo = opt_bound(&mut rng, 32);
        let hi = opt_bound(&mut rng, 32);

        let (db, t) = build_db(&rows);
        let key = CompositeKey::new(t, vec![0, 1]);
        let m = build_composite(&db, &key);

        let mut io = IoStats::new();
        let mut got = prefix_scan(&m, &[Value::Int(pa)], Some((map_bound(lo), map_bound(hi))), &mut io);
        got.sort();

        let in_lo = |b: i64| match lo {
            None => true,
            Some((v, true)) => b >= v,
            Some((v, false)) => b > v,
        };
        let in_hi = |b: i64| match hi {
            None => true,
            Some((v, true)) => b <= v,
            Some((v, false)) => b < v,
        };
        let mut want: Vec<_> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b, _))| a == pa && in_lo(b) && in_hi(b))
            .map(|(i, _)| colt_storage::RowId(i as u32))
            .collect();
        want.sort();
        assert_eq!(got, want, "case {case}");
    }
}

/// Three-column composites: scans keyed by any prefix length agree with
/// filtering.
#[test]
fn three_column_prefixes() {
    let mut rng = Prng::new(0xC04B_0003);
    for case in 0..CASES {
        let rows = rows(&mut rng, 400, 6, 6, 6);
        let pa = rng.int_range(0, 6);
        let pb = rng.int_range(0, 6);
        let pc = rng.int_range(0, 6);
        let k = 1 + rng.below(3);

        let (db, t) = build_db(&rows);
        let key = CompositeKey::new(t, vec![0, 1, 2]);
        let m = build_composite(&db, &key);
        let full = [Value::Int(pa), Value::Int(pb), Value::Int(pc)];
        let mut io = IoStats::new();
        let mut got = prefix_scan(&m, &full[..k], None, &mut io);
        got.sort();
        let mut want: Vec<_> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b, c))| a == pa && (k < 2 || b == pb) && (k < 3 || c == pc))
            .map(|(i, _)| colt_storage::RowId(i as u32))
            .collect();
        want.sort();
        assert_eq!(got, want, "case {case}");
    }
}
