//! The database: tables with their heaps and statistics, plus the
//! physical configuration of materialized indices.

use crate::composite::{CompositeKey, MaterializedComposite};
use crate::index::{build_index, IndexEstimate, IndexOrigin, MaterializedIndex};
use crate::schema::{ColRef, TableId, TableSchema};
use crate::stats::ColumnStats;
use colt_storage::{CompositeBPlusTree, CostParams, HeapTable, IoStats, Row, RowId, Value};
use std::collections::BTreeMap;

/// One table: schema, heap storage, and per-column statistics.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table id.
    pub id: TableId,
    /// Logical schema.
    pub schema: TableSchema,
    /// Physical heap.
    pub heap: HeapTable,
    /// Per-column statistics; empty until [`Table::analyze`] runs.
    pub stats: Vec<ColumnStats>,
    /// Row count when statistics were last gathered (auto-analyze).
    rows_at_analyze: usize,
    /// Bumped on every [`Table::analyze`]; consumers caching derived
    /// state (the what-if memo) compare it to detect stale statistics.
    stats_version: u64,
}

impl Table {
    /// (Re-)gather statistics for every column.
    pub fn analyze(&mut self) {
        self.stats = (0..self.schema.arity()).map(|c| ColumnStats::analyze(&self.heap, c)).collect();
        self.rows_at_analyze = self.heap.row_count();
        self.stats_version += 1;
    }

    /// Statistics generation: 0 before the first [`Table::analyze`],
    /// incremented on every re-analyze.
    pub fn stats_version(&self) -> u64 {
        self.stats_version
    }

    /// Has the table grown by more than `threshold` (relative) since the
    /// last `analyze`? Tables never analyzed always need one.
    pub fn needs_analyze(&self, threshold: f64) -> bool {
        if self.stats.is_empty() {
            return true;
        }
        let grown = self.heap.row_count().saturating_sub(self.rows_at_analyze);
        grown as f64 > self.rows_at_analyze.max(1) as f64 * threshold
    }

    /// Statistics for a column (panics if `analyze` has not run).
    pub fn column_stats(&self, column: u32) -> &ColumnStats {
        &self.stats[column as usize]
    }
}

// Database-dependent composite operations live here (not in
// `composite.rs`) so the module graph stays acyclic: `database` depends
// on `composite` for the key identity, never the reverse.
impl CompositeKey {
    /// Total key width in bytes under the table's schema.
    pub fn key_width(&self, db: &Database) -> usize {
        let schema = &db.table(self.table).schema;
        self.columns.iter().map(|&c| schema.columns[c as usize].vtype.byte_width()).sum()
    }

    /// Estimated physical shape.
    pub fn estimate(&self, db: &Database) -> IndexEstimate {
        IndexEstimate::for_table(db.table(self.table).heap.row_count() as u64, self.key_width(db))
    }
}

/// Build a composite index over a table's heap: full scan, sort by the
/// composite key, bulk load, page writes — the same charge structure as
/// single-column builds.
pub fn build_composite(db: &Database, key: &CompositeKey) -> MaterializedComposite {
    let t = db.table(key.table);
    let mut io = IoStats::new();
    let mut entries: Vec<(Vec<Value>, RowId)> = t
        .heap
        .scan(&mut io)
        .map(|(rid, row)| {
            let k: Vec<Value> =
                key.columns.iter().map(|&c| row[c as usize].clone()).collect();
            (k, rid)
        })
        .collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let n = entries.len() as u64;
    if n > 1 {
        io.cpu_ops += n * (64 - n.leading_zeros() as u64);
    }
    let tree = CompositeBPlusTree::bulk_load(key.key_width(db), entries);
    io.pages_written += tree.page_count() as u64;
    MaterializedComposite { key: key.clone(), tree, build_io: io }
}

/// An in-memory database instance.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    /// Cost constants shared by the optimizer and the simulated clock.
    pub cost: CostParams,
}

impl Database {
    /// Create an empty database with default cost parameters.
    pub fn new() -> Self {
        Database { tables: Vec::new(), cost: CostParams::default() }
    }

    /// Add a table, returning its id.
    pub fn add_table(&mut self, schema: TableSchema) -> TableId {
        let id = TableId(self.tables.len() as u32);
        let heap = HeapTable::new(schema.row_width());
        self.tables.push(Table {
            id,
            schema,
            heap,
            stats: Vec::new(),
            rows_at_analyze: 0,
            stats_version: 0,
        });
        id
    }

    /// Append rows to a table. Statistics are not refreshed automatically.
    pub fn insert_rows(&mut self, table: TableId, rows: impl IntoIterator<Item = Row>) {
        let t = &mut self.tables[table.0 as usize];
        for r in rows {
            debug_assert_eq!(r.len(), t.schema.arity(), "row arity matches schema");
            t.heap.insert(r);
        }
    }

    /// Gather statistics for every column of every table.
    pub fn analyze_all(&mut self) {
        for t in &mut self.tables {
            t.analyze();
        }
    }

    /// Auto-analyze: refresh statistics for every table that has grown
    /// by more than `threshold` (relative) since its last analyze —
    /// PostgreSQL's `autovacuum_analyze_scale_factor` policy. Returns
    /// the tables refreshed.
    pub fn auto_analyze(&mut self, threshold: f64) -> Vec<TableId> {
        let mut refreshed = Vec::new();
        for t in &mut self.tables {
            if t.needs_analyze(threshold) {
                t.analyze();
                refreshed.push(t.id);
            }
        }
        refreshed
    }

    /// Borrow a table.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Borrow a table mutably.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0 as usize]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.schema.name == name)
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total tuples across all tables.
    pub fn total_tuples(&self) -> u64 {
        self.tables.iter().map(|t| t.heap.row_count() as u64).sum()
    }

    /// Total data size in bytes (heap pages only).
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.heap.byte_size() as u64).sum()
    }

    /// Number of indexable attributes (every column of every table).
    pub fn indexable_attributes(&self) -> usize {
        self.tables.iter().map(|t| t.schema.arity()).sum()
    }

    /// Estimated shape of a (possibly hypothetical) index on `col`.
    pub fn index_estimate(&self, col: ColRef) -> IndexEstimate {
        let t = self.table(col.table);
        let width = t.schema.columns[col.column as usize].vtype.byte_width();
        IndexEstimate::for_table(t.heap.row_count() as u64, width)
    }
}

/// The set of materialized indices, with per-table versioning.
///
/// Versions let COLT detect when a past gain measurement became stale:
/// a measurement taken for an index on table `T` is consistent only
/// while the set of materialized indices on `T` is unchanged (paper
/// §4.1, "statistics may become invalid as M evolves").
#[derive(Debug, Clone, Default)]
pub struct PhysicalConfig {
    indices: BTreeMap<ColRef, MaterializedIndex>,
    composites: BTreeMap<CompositeKey, MaterializedComposite>,
    versions: BTreeMap<TableId, u64>,
    col_changes: BTreeMap<ColRef, u64>,
}

impl PhysicalConfig {
    /// Empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is there a materialized index on `col`?
    pub fn contains(&self, col: ColRef) -> bool {
        self.indices.contains_key(&col)
    }

    /// Borrow the index on `col`, if materialized.
    pub fn get(&self, col: ColRef) -> Option<&MaterializedIndex> {
        self.indices.get(&col)
    }

    /// All materialized columns in deterministic order.
    pub fn columns(&self) -> impl Iterator<Item = ColRef> + '_ {
        self.indices.keys().copied()
    }

    /// Columns of indices materialized on-line (subject to the budget).
    pub fn online_columns(&self) -> impl Iterator<Item = ColRef> + '_ {
        self.indices.values().filter(|m| m.origin == IndexOrigin::Online).map(|m| m.col)
    }

    /// Number of materialized indices.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no index is materialized.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Total pages used by on-line indices (the quantity constrained by
    /// the budget `B`).
    pub fn online_pages(&self) -> u64 {
        self.indices
            .values()
            .filter(|m| m.origin == IndexOrigin::Online)
            .map(|m| m.tree.page_count() as u64)
            .sum()
    }

    /// Materialization version of a table: bumped whenever an index on
    /// that table is created or dropped.
    pub fn table_version(&self, table: TableId) -> u64 {
        self.versions.get(&table).copied().unwrap_or(0)
    }

    /// Materialization version of `col`'s table counting only changes to
    /// *other* columns' indices.
    ///
    /// This is the consistency token for a gain measurement of an index
    /// on `col` (paper §4.1): `QueryGain(q, I)` compares the plan cost
    /// with and without `I`, so it stays valid across `I`'s own
    /// materialization or drop — it is invalidated only when a different
    /// index on the same table appears or disappears.
    pub fn version_excluding(&self, col: ColRef) -> u64 {
        self.table_version(col.table) - self.col_changes.get(&col).copied().unwrap_or(0)
    }

    fn bump(&mut self, col: ColRef) {
        *self.versions.entry(col.table).or_insert(0) += 1;
        *self.col_changes.entry(col).or_insert(0) += 1;
    }

    /// Build and install an index on `col`, returning the build cost.
    /// Replaces any existing index on the same column.
    pub fn create_index(&mut self, db: &Database, col: ColRef, origin: IndexOrigin) -> IoStats {
        let t = db.table(col.table);
        let width = t.schema.columns[col.column as usize].vtype.byte_width();
        let (tree, io) = build_index(&t.heap, col, width);
        self.indices.insert(col, MaterializedIndex { col, tree, build_io: io, origin });
        self.bump(col);
        io
    }

    /// Mutable access to the materialized indices on one table (index
    /// maintenance during DML).
    pub fn indices_on_mut(
        &mut self,
        table: TableId,
    ) -> impl Iterator<Item = &mut MaterializedIndex> + '_ {
        self.indices.values_mut().filter(move |m| m.col.table == table)
    }

    /// Build and install a composite (multi-column) index — the paper's
    /// future-work extension; see [`crate::composite`]. Composites are
    /// part of the pre-tuned base configuration (built before a run),
    /// so they do not bump the on-line consistency versions.
    pub fn create_composite(&mut self, db: &Database, key: CompositeKey) -> IoStats {
        let m = build_composite(db, &key);
        let io = m.build_io;
        self.composites.insert(key, m);
        io
    }

    /// Borrow a composite index, if materialized.
    pub fn get_composite(&self, key: &CompositeKey) -> Option<&MaterializedComposite> {
        self.composites.get(key)
    }

    /// Composite indices on one table.
    pub fn composites_on(
        &self,
        table: TableId,
    ) -> impl Iterator<Item = &MaterializedComposite> + '_ {
        self.composites.values().filter(move |m| m.key.table == table)
    }

    /// Drop a composite index; returns whether one existed.
    pub fn drop_composite(&mut self, key: &CompositeKey) -> bool {
        self.composites.remove(key).is_some()
    }

    /// Drop the index on `col` if present; returns whether one existed.
    /// Dropping is metadata-only and charges no I/O (as in PostgreSQL).
    pub fn drop_index(&mut self, col: ColRef) -> bool {
        let existed = self.indices.remove(&col).is_some();
        if existed {
            self.bump(col);
        }
        existed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use colt_storage::{row_from, Value, ValueType};

    fn db_with_table(rows: i64) -> (Database, TableId) {
        let mut db = Database::new();
        let tid = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("a", ValueType::Int), Column::new("b", ValueType::Int)],
        ));
        db.insert_rows(tid, (0..rows).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 10)])));
        db.analyze_all();
        (db, tid)
    }

    #[test]
    fn database_accounting() {
        let (db, tid) = db_with_table(1000);
        assert_eq!(db.table_count(), 1);
        assert_eq!(db.total_tuples(), 1000);
        assert_eq!(db.indexable_attributes(), 2);
        assert!(db.total_bytes() > 0);
        assert_eq!(db.table(tid).column_stats(0).row_count, 1000);
        assert!(db.table_by_name("t").is_some());
        assert!(db.table_by_name("missing").is_none());
    }

    #[test]
    fn auto_analyze_policy() {
        let (mut db, tid) = db_with_table(1000);
        assert!(!db.table(tid).needs_analyze(0.1));
        // Grow by 5%: below a 10% threshold, above a 1% threshold.
        db.insert_rows(tid, (0..50i64).map(|i| row_from(vec![Value::Int(i), Value::Int(0)])));
        assert!(!db.table(tid).needs_analyze(0.10));
        assert!(db.table(tid).needs_analyze(0.01));
        let refreshed = db.auto_analyze(0.01);
        assert_eq!(refreshed, vec![tid]);
        assert!(!db.table(tid).needs_analyze(0.01));
        assert_eq!(db.table(tid).column_stats(0).row_count, 1050);
        // Never-analyzed tables always need it.
        let mut raw = Database::new();
        let t2 = raw.add_table(TableSchema::new("u", vec![Column::new("a", ValueType::Int)]));
        assert!(raw.table(t2).needs_analyze(10.0));
    }

    #[test]
    fn create_and_drop_index_versions() {
        let (db, tid) = db_with_table(500);
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(tid, 0);
        assert_eq!(cfg.table_version(tid), 0);
        assert!(!cfg.contains(col));

        let io = cfg.create_index(&db, col, IndexOrigin::Online);
        assert!(cfg.contains(col));
        assert!(io.pages_written > 0);
        assert_eq!(cfg.table_version(tid), 1);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.online_pages() > 0);

        assert!(cfg.drop_index(col));
        assert!(!cfg.drop_index(col));
        assert_eq!(cfg.table_version(tid), 2);
        assert!(cfg.is_empty());
    }

    #[test]
    fn base_indices_exempt_from_online_accounting() {
        let (db, tid) = db_with_table(500);
        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, ColRef::new(tid, 0), IndexOrigin::Base);
        assert_eq!(cfg.online_pages(), 0);
        assert_eq!(cfg.online_columns().count(), 0);
        cfg.create_index(&db, ColRef::new(tid, 1), IndexOrigin::Online);
        assert_eq!(cfg.online_columns().count(), 1);
        assert!(cfg.online_pages() > 0);
    }

    #[test]
    fn stats_version_tracks_analyzes() {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new("v", vec![Column::new("a", ValueType::Int)]));
        assert_eq!(db.table(t).stats_version(), 0);
        db.insert_rows(t, (0..10i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();
        assert_eq!(db.table(t).stats_version(), 1);
        db.table_mut(t).analyze();
        assert_eq!(db.table(t).stats_version(), 2);
    }

    #[test]
    fn index_estimate_uses_table_shape() {
        let (db, tid) = db_with_table(2000);
        let est = db.index_estimate(ColRef::new(tid, 0));
        assert_eq!(est.entries, 2000);
        assert!(est.pages >= est.leaf_pages);
    }
}
