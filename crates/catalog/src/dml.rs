//! Data modification with index maintenance.
//!
//! The reproduction's tables are append-only (row ids are heap
//! positions), so the supported modification is ingestion: appending
//! rows while keeping every materialized index on the table consistent,
//! charging the physical work a disk-based system would do — the heap
//! page write (amortized: one write per filled page) and, per index, a
//! descent plus a leaf write.
//!
//! Statistics are *not* refreshed automatically — exactly as in a real
//! system, where the optimizer works off the last `ANALYZE`. Call
//! [`crate::Database::analyze_all`] (or [`crate::Table::analyze`]) to
//! refresh; the drift in between is realistic estimation noise.

use crate::database::{Database, PhysicalConfig};
use crate::schema::TableId;
use colt_storage::{tuples_per_page, IoStats, Row, RowId};

/// Append one row to `table`, maintaining all materialized indices on
/// it. Returns the new row id and the physical work charged.
pub fn insert_row(
    db: &mut Database,
    config: &mut PhysicalConfig,
    table: TableId,
    row: Row,
) -> (RowId, IoStats) {
    let mut io = IoStats::new();
    let t = db.table_mut(table);
    assert_eq!(row.len(), t.schema.arity(), "row arity must match the schema");
    let values = row.clone();
    let rid = t.heap.insert(row);
    io.tuples += 1;
    // Heap write: one page write each time a page fills up (amortized),
    // plus always the first row of a table.
    let per_page = tuples_per_page(t.heap.row_width());
    if rid.index().is_multiple_of(per_page) {
        io.pages_written += 1;
    }

    // Maintain every index on this table.
    for m in config.indices_on_mut(table) {
        let key = values[m.col.column as usize].clone();
        // Descent to the leaf plus the leaf write.
        io.random_pages += m.tree.height() as u64;
        io.pages_written += 1;
        m.tree.insert(key, rid);
    }
    (rid, io)
}

/// Append many rows; convenience wrapper returning the total charge.
pub fn insert_rows(
    db: &mut Database,
    config: &mut PhysicalConfig,
    table: TableId,
    rows: impl IntoIterator<Item = Row>,
) -> IoStats {
    let mut io = IoStats::new();
    for row in rows {
        let (_, cost) = insert_row(db, config, table, row);
        io.accumulate(&cost);
    }
    io
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOrigin;
    use crate::schema::{ColRef, Column, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, PhysicalConfig, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("a", ValueType::Int), Column::new("b", ValueType::Int)],
        ));
        db.insert_rows(t, (0..1_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 10)])));
        db.analyze_all();
        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, ColRef::new(t, 0), IndexOrigin::Online);
        (db, cfg, t)
    }

    #[test]
    fn insert_maintains_indices() {
        let (mut db, mut cfg, t) = setup();
        let col = ColRef::new(t, 0);
        let before = cfg.get(col).unwrap().tree.len();
        let (rid, io) = insert_row(&mut db, &mut cfg, t, row_from(vec![Value::Int(5_000), Value::Int(1)]));
        assert_eq!(rid, RowId(1_000));
        assert_eq!(cfg.get(col).unwrap().tree.len(), before + 1);
        assert!(io.random_pages > 0, "index descent charged");
        assert!(io.pages_written >= 1, "leaf write charged");

        // The new row is findable through the index.
        let mut probe_io = IoStats::new();
        let hits = cfg.get(col).unwrap().tree.lookup(&Value::Int(5_000), &mut probe_io);
        assert_eq!(hits, vec![rid]);
        // And through the heap.
        assert_eq!(db.table(t).heap.peek(rid).unwrap()[0], Value::Int(5_000));
    }

    #[test]
    fn bulk_ingestion_consistent_with_rebuild() {
        let (mut db, mut cfg, t) = setup();
        let col = ColRef::new(t, 0);
        let io = insert_rows(
            &mut db,
            &mut cfg,
            t,
            (0..500i64).map(|i| row_from(vec![Value::Int(10_000 + i), Value::Int(0)])),
        );
        assert!(io.pages_written >= 500, "one leaf write per row");

        // Rebuilding from scratch must agree with incremental maintenance.
        let mut fresh = PhysicalConfig::new();
        fresh.create_index(&db, col, IndexOrigin::Online);
        let a: Vec<_> = cfg.get(col).unwrap().tree.iter().map(|(k, r)| (k.clone(), r)).collect();
        let b: Vec<_> = fresh.get(col).unwrap().tree.iter().map(|(k, r)| (k.clone(), r)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_rejected() {
        let (mut db, mut cfg, t) = setup();
        insert_row(&mut db, &mut cfg, t, row_from(vec![Value::Int(1)]));
    }

    #[test]
    fn tables_without_indices_charge_heap_only() {
        let (mut db, _, t) = setup();
        let mut empty_cfg = PhysicalConfig::new();
        let (_, io) = insert_row(&mut db, &mut empty_cfg, t, row_from(vec![Value::Int(1), Value::Int(1)]));
        assert_eq!(io.random_pages, 0);
    }
}
