//! Logical schema: tables, columns, and column references.

use colt_storage::ValueType;
use std::fmt;

/// Identifier of a table within a [`crate::Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// A reference to one column of one table — the unit of indexing in the
/// paper (COLT materializes single-column indices only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColRef {
    /// Owning table.
    pub table: TableId,
    /// Zero-based position within the table schema.
    pub column: u32,
}

impl ColRef {
    /// Construct a column reference.
    pub fn new(table: TableId, column: u32) -> Self {
        ColRef { table, column }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.c{}", self.table.0, self.column)
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its table.
    pub name: String,
    /// Value type.
    pub vtype: ValueType,
}

impl Column {
    /// Construct a column definition.
    pub fn new(name: impl Into<String>, vtype: ValueType) -> Self {
        Column { name: name.into(), vtype }
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, unique within the database.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Construct a table schema.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema { name: name.into(), columns }
    }

    /// Total payload width of a row in bytes.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|c| c.vtype.byte_width()).sum()
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<u32> {
        self.columns.iter().position(|c| c.name == name).map(|i| i as u32)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                Column::new("o_orderkey", ValueType::Int),
                Column::new("o_totalprice", ValueType::Float),
                Column::new("o_comment", ValueType::Str),
            ],
        )
    }

    #[test]
    fn row_width_sums_columns() {
        assert_eq!(schema().row_width(), 8 + 8 + 24);
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("o_totalprice"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn colref_display_and_order() {
        let a = ColRef::new(TableId(1), 2);
        let b = ColRef::new(TableId(1), 3);
        assert!(a < b);
        assert_eq!(a.to_string(), "t1.c2");
    }
}
