//! Single-column index descriptors, size estimation, and builds.
//!
//! COLT only considers single-column indices (paper §2), so an index is
//! identified by the [`ColRef`] it covers. The optimizer costs both real
//! and hypothetical indices from the *estimates* here; the executor uses
//! the actual B+ tree once an index is materialized.

use crate::schema::ColRef;
use colt_storage::btree::default_order;
use colt_storage::{BPlusTree, HeapTable, IoStats, Value};

/// Estimated physical shape of a (possibly hypothetical) index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEstimate {
    /// Number of entries (table rows).
    pub entries: u64,
    /// Estimated leaf pages.
    pub leaf_pages: u64,
    /// Estimated total pages (leaves + internals).
    pub pages: u64,
    /// Estimated height (levels, including the leaf level).
    pub height: u32,
}

impl IndexEstimate {
    /// Estimate the shape of an index over `rows` keys of width
    /// `key_width` bytes, assuming the builder's ~90% fill factor.
    pub fn for_table(rows: u64, key_width: usize) -> Self {
        let order = default_order(key_width) as u64;
        let fill = (order * 9 / 10).max(4);
        if rows == 0 {
            return IndexEstimate { entries: 0, leaf_pages: 1, pages: 1, height: 1 };
        }
        let leaf_pages = rows.div_ceil(fill);
        let mut pages = leaf_pages;
        let mut level = leaf_pages;
        let mut height = 1;
        while level > 1 {
            level = level.div_ceil(fill);
            pages += level;
            height += 1;
        }
        IndexEstimate { entries: rows, leaf_pages, pages, height }
    }

    /// Estimated size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.pages * colt_storage::PAGE_SIZE as u64
    }
}

/// A materialized single-column index.
#[derive(Debug, Clone)]
pub struct MaterializedIndex {
    /// The indexed column.
    pub col: ColRef,
    /// The physical tree.
    pub tree: BPlusTree,
    /// Physical work that was charged to build it.
    pub build_io: IoStats,
    /// Whether the index belongs to the pre-tuned base configuration
    /// (exempt from the on-line storage budget) or was materialized by a
    /// tuner at run time.
    pub origin: IndexOrigin,
}

/// Who installed an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexOrigin {
    /// Part of the pre-tuned physical design the system started with.
    Base,
    /// Materialized on-line by a tuner; counts against the budget `B`.
    Online,
}

/// Build an index over `column` of `heap`, charging the physical work to
/// the returned [`IoStats`]: a full sequential heap scan, an external
/// sort (`n log2 n` comparisons), and the writes of every index page.
pub fn build_index(heap: &HeapTable, col: ColRef, key_width: usize) -> (BPlusTree, IoStats) {
    let mut io = IoStats::new();
    let column = col.column as usize;
    let mut entries: Vec<(Value, colt_storage::RowId)> = heap
        .scan(&mut io)
        .filter_map(|(rid, row)| row.get(column).cloned().map(|v| (v, rid)))
        .collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let n = entries.len() as u64;
    if n > 1 {
        io.cpu_ops += n * (64 - n.leading_zeros() as u64);
    }
    let tree = BPlusTree::bulk_load(key_width, entries);
    io.pages_written += tree.page_count() as u64;
    (tree, io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;
    use colt_storage::row_from;

    fn heap(n: i64) -> HeapTable {
        let mut h = HeapTable::new(8);
        for i in 0..n {
            h.insert(row_from(vec![Value::Int(i % 97)]));
        }
        h
    }

    #[test]
    fn estimate_empty() {
        let e = IndexEstimate::for_table(0, 8);
        assert_eq!(e.pages, 1);
        assert_eq!(e.height, 1);
    }

    #[test]
    fn estimate_grows_and_heightens() {
        let small = IndexEstimate::for_table(1_000, 8);
        let large = IndexEstimate::for_table(1_000_000, 8);
        assert!(large.pages > small.pages * 500);
        assert!(large.height >= small.height);
        assert!(large.byte_size() > 0);
    }

    #[test]
    fn estimate_close_to_real_build() {
        let h = heap(50_000);
        let (tree, _) = build_index(&h, ColRef::new(TableId(0), 0), 8);
        let est = IndexEstimate::for_table(50_000, 8);
        let real = tree.page_count() as f64;
        let ratio = est.pages as f64 / real;
        assert!((0.5..2.0).contains(&ratio), "estimate {} vs real {}", est.pages, real);
        assert_eq!(est.height as usize, tree.height());
    }

    #[test]
    fn build_charges_scan_sort_write() {
        let h = heap(10_000);
        let (tree, io) = build_index(&h, ColRef::new(TableId(0), 0), 8);
        assert_eq!(tree.len(), 10_000);
        assert_eq!(io.seq_pages as usize, h.page_count());
        assert_eq!(io.tuples, 10_000);
        assert_eq!(io.pages_written as usize, tree.page_count());
        assert!(io.cpu_ops > 10_000, "sort work charged");
        tree.check_invariants();
    }

    #[test]
    fn build_empty_heap() {
        let h = HeapTable::new(8);
        let (tree, io) = build_index(&h, ColRef::new(TableId(0), 0), 8);
        assert!(tree.is_empty());
        assert_eq!(io.tuples, 0);
    }
}
