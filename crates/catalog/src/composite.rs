//! Multi-column indices — the paper's stated future work (§2: "the
//! extension of our techniques to more general access structures, e.g.,
//! multi-column indices … is an interesting direction for future
//! work").
//!
//! A composite index covers an ordered list of columns of one table and
//! stores lexicographic `Vec<Value>` keys. It can serve any query whose
//! predicates match a *prefix* of the column list: a run of equalities,
//! optionally followed by one range on the next column.
//!
//! Composite indices live next to the single-column set inside
//! [`crate::PhysicalConfig`] but are *not* managed by COLT's on-line
//! loop (the paper's tuner is single-column by design); they are built
//! by the off-line advisor (`colt_offline::suggest_composites`) or by
//! hand, as part of the pre-tuned base configuration.
//!
//! This module holds only the key identity and the tree-level scan;
//! everything that needs the [`crate::database::Database`] (key widths,
//! shape estimates, the builder) lives in `database.rs` so the module
//! graph stays a DAG (`database` may depend on `composite`, never the
//! reverse).

use crate::schema::{ColRef, TableId};
use colt_storage::{CompositeBPlusTree, IoStats, RowId, Value};
use std::fmt;

/// Identity of a composite index: the table and the ordered columns.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompositeKey {
    /// Owning table.
    pub table: TableId,
    /// Ordered column positions (at least two).
    pub columns: Vec<u32>,
}

impl CompositeKey {
    /// Build a composite key; panics when fewer than two columns are
    /// given (use a single-column index instead) or on duplicates.
    pub fn new(table: TableId, columns: Vec<u32>) -> Self {
        assert!(columns.len() >= 2, "composite indices need at least two columns");
        let mut dedup = columns.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), columns.len(), "duplicate column in composite index");
        CompositeKey { table, columns }
    }

    /// The leading column, as a [`ColRef`].
    pub fn leading(&self) -> ColRef {
        ColRef::new(self.table, self.columns[0])
    }
}

impl fmt::Display for CompositeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.(", self.table.0)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "c{c}")?;
        }
        write!(f, ")")
    }
}

/// A materialized composite index.
#[derive(Debug, Clone)]
pub struct MaterializedComposite {
    /// The identity.
    pub key: CompositeKey,
    /// The physical tree over lexicographic composite keys.
    pub tree: CompositeBPlusTree,
    /// The physical work charged to build it.
    pub build_io: IoStats,
}

/// Lexicographic prefix scan of a composite index: `prefix` pins the
/// leading columns by equality; `next` optionally bounds the following
/// column. Returns the matching row ids, charging descent + leaf chain.
pub fn prefix_scan(
    index: &MaterializedComposite,
    prefix: &[Value],
    next: Option<(std::ops::Bound<Value>, std::ops::Bound<Value>)>,
    io: &mut IoStats,
) -> Vec<RowId> {
    use colt_storage::ScanControl;
    use std::ops::Bound;
    assert!(prefix.len() <= index.key.columns.len());
    let k = prefix.len();

    // Start bound: the prefix itself, extended by the range's lower
    // bound when it is inclusive/exclusive on the next column.
    let mut start = prefix.to_vec();
    let start_bound = match &next {
        Some((Bound::Included(lo), _)) | Some((Bound::Excluded(lo), _)) => {
            start.push(lo.clone());
            // Exclusive lower bounds still descend to the boundary key
            // and skip equal values via the keep closure.
            Bound::Included(start)
        }
        _ => Bound::Included(start),
    };

    let next_ref = &next;
    index.tree.scan_from(
        start_bound,
        move |key: &Vec<Value>| {
            if key.len() < k || key[..k] != *prefix {
                return ScanControl::Stop;
            }
            match next_ref {
                None => ScanControl::Take,
                Some((lo, hi)) => {
                    let v = &key[k];
                    let lo_ok = match lo {
                        Bound::Included(b) => v >= b,
                        Bound::Excluded(b) => v > b,
                        Bound::Unbounded => true,
                    };
                    let hi_ok = match hi {
                        Bound::Included(b) => v <= b,
                        Bound::Excluded(b) => v < b,
                        Bound::Unbounded => true,
                    };
                    if !hi_ok {
                        // Sorted within the prefix: nothing later matches.
                        ScanControl::Stop
                    } else if lo_ok {
                        ScanControl::Take
                    } else {
                        ScanControl::Skip
                    }
                }
            }
        },
        io,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{build_composite, Database};
    use crate::schema::{Column, TableSchema};
    use colt_storage::{row_from, ValueType};
    use std::ops::Bound;

    fn setup() -> (Database, TableId, CompositeKey) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("a", ValueType::Int),
                Column::new("b", ValueType::Int),
                Column::new("c", ValueType::Int),
            ],
        ));
        db.insert_rows(
            t,
            (0..2_000i64).map(|i| {
                row_from(vec![Value::Int(i % 20), Value::Int(i % 50), Value::Int(i)])
            }),
        );
        db.analyze_all();
        (db, t, CompositeKey::new(t, vec![0, 1]))
    }

    #[test]
    fn build_covers_all_rows() {
        let (db, _, key) = setup();
        let m = build_composite(&db, &key);
        assert_eq!(m.tree.len(), 2_000);
        assert!(m.build_io.pages_written > 0);
        m.tree.check_invariants();
    }

    #[test]
    fn full_composite_point_lookup() {
        let (db, t, key) = setup();
        let m = build_composite(&db, &key);
        let mut io = IoStats::new();
        // Rows with a=3, b=13: i ≡ 3 (mod 20) and i ≡ 13 (mod 50) →
        // i ≡ 63 (mod 100) → 20 of 2000 rows.
        let hits = prefix_scan(&m, &[Value::Int(3), Value::Int(13)], None, &mut io);
        assert_eq!(hits.len(), 20);
        for rid in hits {
            let row = db.table(t).heap.peek(rid).unwrap();
            assert_eq!(row[0], Value::Int(3));
            assert_eq!(row[1], Value::Int(13));
        }
    }

    #[test]
    fn prefix_only_scan() {
        let (db, t, key) = setup();
        let m = build_composite(&db, &key);
        let mut io = IoStats::new();
        let hits = prefix_scan(&m, &[Value::Int(3)], None, &mut io);
        assert_eq!(hits.len(), 100, "a=3 matches 100 of 2000 rows");
        for rid in hits {
            assert_eq!(db.table(t).heap.peek(rid).unwrap()[0], Value::Int(3));
        }
    }

    #[test]
    fn prefix_plus_range_scan() {
        let (db, t, key) = setup();
        let m = build_composite(&db, &key);
        let mut io = IoStats::new();
        let hits = prefix_scan(
            &m,
            &[Value::Int(3)],
            Some((Bound::Included(Value::Int(10)), Bound::Excluded(Value::Int(20)))),
            &mut io,
        );
        // a=3 → b = i%50 where i ≡ 3 (mod 20): b ∈ {3,23,43,13,33} each
        // 20 times; within [10,20): only b=13 → 20 rows.
        assert_eq!(hits.len(), 20);
        for rid in hits {
            let row = db.table(t).heap.peek(rid).unwrap();
            assert_eq!(row[0], Value::Int(3));
            assert_eq!(row[1], Value::Int(13));
        }
    }

    #[test]
    fn estimate_consistent_with_build() {
        let (db, _, key) = setup();
        let est = key.estimate(&db);
        let m = build_composite(&db, &key);
        let ratio = est.pages as f64 / m.tree.page_count() as f64;
        assert!((0.5..2.0).contains(&ratio), "est {} real {}", est.pages, m.tree.page_count());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_column_rejected() {
        CompositeKey::new(TableId(0), vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_column_rejected() {
        CompositeKey::new(TableId(0), vec![1, 1]);
    }
}
