//! Per-column statistics: row counts, distinct counts, min/max, and
//! equi-depth histograms.
//!
//! The optimizer estimates selectivities from these statistics (as a real
//! system's optimizer would), while the executor observes true counts.
//! The gap between the two is the estimation noise the paper's profiling
//! machinery has to tolerate.

use colt_storage::{HeapTable, Value};

/// Number of buckets in an equi-depth histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Maximum number of most-common values tracked per column.
pub const MAX_MCVS: usize = 8;

/// Statistics for one column.
///
/// # Examples
///
/// ```
/// use colt_catalog::ColumnStats;
/// use colt_storage::{row_from, HeapTable, Value};
///
/// let mut heap = HeapTable::new(8);
/// for i in 0..1_000i64 {
///     heap.insert(row_from(vec![Value::Int(i)]));
/// }
/// let stats = ColumnStats::analyze(&heap, 0);
/// assert_eq!(stats.n_distinct, 1_000);
/// // Equality on a unique column selects ~1/1000 of the rows.
/// assert!((stats.selectivity_eq(&Value::Int(7)) - 0.001).abs() < 1e-9);
/// // Half-range selectivity interpolates over the histogram.
/// let half = stats.selectivity_le(&Value::Int(499));
/// assert!((half - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Rows in the table when the statistics were gathered.
    pub row_count: u64,
    /// Estimated number of distinct values.
    pub n_distinct: u64,
    /// Minimum value, if the column is non-empty.
    pub min: Option<Value>,
    /// Maximum value, if the column is non-empty.
    pub max: Option<Value>,
    /// Equi-depth bucket boundaries: `bounds[0] = min`,
    /// `bounds[HISTOGRAM_BUCKETS] = max`; each bucket holds
    /// `row_count / HISTOGRAM_BUCKETS` rows.
    pub bounds: Vec<Value>,
    /// Most-common values and their exact frequencies (fractions),
    /// descending — PostgreSQL's MCV list. Only values noticeably more
    /// frequent than the uniform expectation are kept, so uniform
    /// columns have an empty list.
    pub mcvs: Vec<(Value, f64)>,
}

impl ColumnStats {
    /// Gather statistics for column `column` of `heap` by a full pass
    /// over the data (the reproduction's ANALYZE).
    pub fn analyze(heap: &HeapTable, column: usize) -> Self {
        let mut values: Vec<Value> = heap.iter().filter_map(|(_, r)| r.get(column).cloned()).collect();
        let row_count = values.len() as u64;
        values.sort_unstable();
        let n_distinct = count_distinct(&values);
        let (min, max) = match (values.first(), values.last()) {
            (Some(a), Some(b)) => (Some(a.clone()), Some(b.clone())),
            _ => (None, None),
        };
        let mut bounds = Vec::with_capacity(HISTOGRAM_BUCKETS + 1);
        if !values.is_empty() {
            for b in 0..=HISTOGRAM_BUCKETS {
                let idx = (b * (values.len() - 1)) / HISTOGRAM_BUCKETS;
                bounds.push(values[idx].clone());
            }
        }
        let mcvs = most_common(&values, n_distinct);
        ColumnStats { row_count, n_distinct, min, max, bounds, mcvs }
    }

    /// Estimated fraction of rows with value equal to `v`.
    ///
    /// Checks the MCV list first (exact frequencies for the skewed
    /// head); everything else uses the uniform assumption over the
    /// remaining mass: `(1 − Σ mcv) / (n_distinct − |mcv|)`.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        let (Some(min), Some(max)) = (&self.min, &self.max) else { return 0.0 };
        if v < min || v > max || self.n_distinct == 0 {
            return 0.0;
        }
        if let Some((_, f)) = self.mcvs.iter().find(|(m, _)| m == v) {
            return *f;
        }
        let mcv_mass: f64 = self.mcvs.iter().map(|(_, f)| f).sum();
        let rest = (self.n_distinct as usize).saturating_sub(self.mcvs.len()).max(1);
        ((1.0 - mcv_mass) / rest as f64).max(0.0)
    }

    /// Estimated fraction of rows with value `<= v` (inclusive upper
    /// bound), interpolated within the histogram bucket containing `v`.
    pub fn selectivity_le(&self, v: &Value) -> f64 {
        if self.bounds.is_empty() {
            return 0.0;
        }
        let min = &self.bounds[0];
        let max = &self.bounds[self.bounds.len() - 1];
        if v < min {
            return 0.0;
        }
        if v >= max {
            return 1.0;
        }
        // Find the bucket whose [lo, hi) range contains v.
        let nb = self.bounds.len() - 1;
        let mut b = self.bounds[1..].partition_point(|hi| hi <= v);
        if b >= nb {
            b = nb - 1;
        }
        let lo = &self.bounds[b];
        let hi = &self.bounds[b + 1];
        let (lof, hif, vf) = (lo.as_f64(), hi.as_f64(), v.as_f64());
        let within = if hif > lof { ((vf - lof) / (hif - lof)).clamp(0.0, 1.0) } else { 1.0 };
        ((b as f64) + within) / nb as f64
    }

    /// Estimated fraction of rows in the closed-open interval
    /// `[lo, hi)`; either side may be unbounded.
    pub fn selectivity_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        let hi_frac = match hi {
            Some(h) => self.selectivity_le(h) - self.selectivity_eq(h),
            None => 1.0,
        };
        let lo_frac = match lo {
            Some(l) => self.selectivity_le(l) - self.selectivity_eq(l),
            None => 0.0,
        };
        (hi_frac - lo_frac).clamp(0.0, 1.0)
    }
}

/// Exact frequencies of the most common values in sorted data; keeps up
/// to [`MAX_MCVS`] values that are at least 1.5× more frequent than the
/// uniform expectation.
fn most_common(sorted: &[Value], n_distinct: u64) -> Vec<(Value, f64)> {
    if sorted.is_empty() || n_distinct <= 1 {
        return Vec::new();
    }
    let n = sorted.len() as f64;
    let threshold = 1.5 / n_distinct as f64;
    let mut runs: Vec<(Value, f64)> = Vec::new();
    let mut start = 0;
    for i in 1..=sorted.len() {
        if i == sorted.len() || sorted[i] != sorted[start] {
            let freq = (i - start) as f64 / n;
            if freq >= threshold {
                runs.push((sorted[start].clone(), freq));
            }
            start = i;
        }
    }
    runs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    runs.truncate(MAX_MCVS);
    runs
}

fn count_distinct(sorted: &[Value]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_storage::row_from;

    fn heap_of_ints(values: &[i64]) -> HeapTable {
        let mut h = HeapTable::new(8);
        for &v in values {
            h.insert(row_from(vec![Value::Int(v)]));
        }
        h
    }

    #[test]
    fn analyze_basic_counts() {
        let vals: Vec<i64> = (0..1000).collect();
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        assert_eq!(s.row_count, 1000);
        assert_eq!(s.n_distinct, 1000);
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(999)));
        assert_eq!(s.bounds.len(), HISTOGRAM_BUCKETS + 1);
    }

    #[test]
    fn analyze_empty_column() {
        let s = ColumnStats::analyze(&heap_of_ints(&[]), 0);
        assert_eq!(s.row_count, 0);
        assert!(s.min.is_none());
        assert_eq!(s.selectivity_eq(&Value::Int(1)), 0.0);
        assert_eq!(s.selectivity_le(&Value::Int(1)), 0.0);
    }

    #[test]
    fn selectivity_eq_uniform() {
        let vals: Vec<i64> = (0..100).collect();
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        assert!((s.selectivity_eq(&Value::Int(50)) - 0.01).abs() < 1e-12);
        assert_eq!(s.selectivity_eq(&Value::Int(-5)), 0.0);
        assert_eq!(s.selectivity_eq(&Value::Int(1000)), 0.0);
    }

    #[test]
    fn selectivity_le_interpolates_uniform_data() {
        let vals: Vec<i64> = (0..=1000).collect();
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        for probe in [0i64, 100, 250, 500, 900, 1000] {
            let est = s.selectivity_le(&Value::Int(probe));
            let truth = (probe + 1) as f64 / 1001.0;
            assert!(
                (est - truth).abs() < 0.05,
                "probe {probe}: est {est} truth {truth}"
            );
        }
        assert_eq!(s.selectivity_le(&Value::Int(-1)), 0.0);
        assert_eq!(s.selectivity_le(&Value::Int(2000)), 1.0);
    }

    #[test]
    fn selectivity_le_skewed_data() {
        // 90% of rows are 0, the rest spread over 1..=100.
        let mut vals = vec![0i64; 900];
        vals.extend((1..=100).map(|i| i as i64));
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        let at_zero = s.selectivity_le(&Value::Int(0));
        assert!(at_zero > 0.8, "equi-depth histogram must capture the heavy value, got {at_zero}");
    }

    #[test]
    fn selectivity_range_combines_bounds() {
        let vals: Vec<i64> = (0..=1000).collect();
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        let sel = s.selectivity_range(Some(&Value::Int(200)), Some(&Value::Int(400)));
        assert!((sel - 0.2).abs() < 0.05, "got {sel}");
        let all = s.selectivity_range(None, None);
        assert!((all - 1.0).abs() < 1e-9);
        let none = s.selectivity_range(Some(&Value::Int(900)), Some(&Value::Int(100)));
        assert_eq!(none, 0.0);
    }

    #[test]
    fn mcvs_capture_skewed_head() {
        // 60% of rows are 7, 20% are 13, the rest spread over 0..100.
        let mut vals = vec![7i64; 600];
        vals.extend(vec![13i64; 200]);
        vals.extend((0..200).map(|i| i % 100));
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        assert!(!s.mcvs.is_empty());
        assert_eq!(s.mcvs[0].0, Value::Int(7));
        // The hot value's estimate is its exact frequency...
        let hot = s.selectivity_eq(&Value::Int(7));
        let true_hot = vals.iter().filter(|&&v| v == 7).count() as f64 / vals.len() as f64;
        assert!((hot - true_hot).abs() < 1e-9, "hot {hot} vs {true_hot}");
        // ...and a cold value is estimated far below the naive 1/ndv
        // that would otherwise be inflated by the head.
        let cold = s.selectivity_eq(&Value::Int(42));
        assert!(cold < hot / 10.0, "cold {cold} vs hot {hot}");
    }

    #[test]
    fn uniform_columns_have_no_mcvs() {
        let vals: Vec<i64> = (0..1000).collect();
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        assert!(s.mcvs.is_empty(), "{:?}", s.mcvs);
        // The uniform estimate is unchanged.
        assert!((s.selectivity_eq(&Value::Int(7)) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn mcv_list_bounded() {
        // 20 values each at 5% — all above threshold, but only MAX_MCVS
        // are kept.
        let mut vals = Vec::new();
        for v in 0..20i64 {
            vals.extend(vec![v; 50]);
        }
        let s = ColumnStats::analyze(&heap_of_ints(&vals), 0);
        assert!(s.mcvs.len() <= MAX_MCVS);
    }

    #[test]
    fn distinct_counting() {
        let s = ColumnStats::analyze(&heap_of_ints(&[1, 1, 1, 2, 2, 3]), 0);
        assert_eq!(s.n_distinct, 3);
    }
}
