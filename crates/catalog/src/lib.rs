//! # colt-catalog
//!
//! Logical schema, per-column statistics, index descriptors, and the
//! physical configuration (the set of materialized indices) for the COLT
//! reproduction.
//!
//! The catalog is where the optimizer's world model lives: selectivities
//! come from equi-depth histograms gathered by `ANALYZE`-style passes,
//! and hypothetical indices are costed from [`index::IndexEstimate`]
//! without being built.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod composite;
pub mod database;
pub mod dml;
pub mod index;
pub mod schema;
pub mod stats;

pub use composite::{prefix_scan, CompositeKey, MaterializedComposite};
pub use database::{build_composite, Database, PhysicalConfig, Table};
pub use dml::{insert_row, insert_rows as ingest_rows};
pub use index::{build_index, IndexEstimate, IndexOrigin, MaterializedIndex};
pub use schema::{ColRef, Column, TableId, TableSchema};
pub use stats::{ColumnStats, HISTOGRAM_BUCKETS};
