//! Black-box observability checks against the real `fig3` binary:
//!
//! * stdout is byte-identical between `COLT_OBS=off` and
//!   `COLT_OBS=full` — observability never perturbs experiment
//!   artifacts;
//! * with `COLT_OBS_PATH` set, the `.jsonl` dump parses line by line
//!   with the in-repo strict JSON parser and the `.prom` dump carries
//!   `colt_`-prefixed metrics in Prometheus text exposition format.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Tiny scale so the two spawned runs stay in CI-friendly territory.
const SCALE: &str = "0.004";

fn run_fig3(obs_level: &str, obs_path: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig3"));
    cmd.env("COLT_SCALE", SCALE)
        .env("COLT_SEED", "42")
        .env("COLT_THREADS", "2")
        .env("COLT_OBS", obs_level)
        .env_remove("COLT_OBS_PATH");
    if let Some(p) = obs_path {
        cmd.env("COLT_OBS_PATH", p);
    }
    let out = cmd.output().expect("spawn fig3");
    assert!(
        out.status.success(),
        "fig3 (COLT_OBS={obs_level}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn temp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("colt-obs-test-{}-{tag}", std::process::id()))
}

#[test]
fn fig3_stdout_is_byte_identical_across_obs_levels() {
    let base = temp_base("levels");
    let base_str = base.to_str().expect("utf-8 temp path");

    let off = run_fig3("off", None);
    let full = run_fig3("full", Some(base_str));

    assert!(!off.stdout.is_empty(), "fig3 must print its report to stdout");
    assert_eq!(
        off.stdout, full.stdout,
        "COLT_OBS must not change a single stdout byte"
    );
    // Off truly is silent; full is not.
    assert!(off.stderr.is_empty(), "COLT_OBS=off must keep stderr empty");
    assert!(!full.stderr.is_empty(), "COLT_OBS=full must emit JSONL to stderr");

    // The dumps written by the full run are valid.
    let jsonl_path = format!("{base_str}.jsonl");
    let prom_path = format!("{base_str}.prom");
    let jsonl = std::fs::read_to_string(&jsonl_path).expect("fig3 must write the .jsonl dump");
    let prom = std::fs::read_to_string(&prom_path).expect("fig3 must write the .prom dump");
    let _ = std::fs::remove_file(&jsonl_path);
    let _ = std::fs::remove_file(&prom_path);

    let mut events = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        let v = colt_core::json::parse(line)
            .unwrap_or_else(|e| panic!(".jsonl line {}: {e}: {line}", i + 1));
        assert!(
            v.get("event").and_then(colt_core::json::Json::as_str).is_some(),
            ".jsonl line {} lacks an event kind",
            i + 1
        );
        events += 1;
    }
    assert!(events > 0, "the merged event stream must not be empty");

    assert!(prom.lines().any(|l| l.starts_with("# TYPE colt_")), "missing TYPE headers");
    let metrics = prom.lines().filter(|l| l.starts_with("colt_")).count();
    assert!(metrics > 0, "no colt_ metric samples in the Prometheus dump");
    // The spans instrumented across the stack surface in the dump.
    for needle in ["colt_engine_execute", "colt_tuner_epoch", "colt_harness_queries"] {
        assert!(prom.contains(needle), "Prometheus dump lacks {needle}:\n{prom}");
    }
}

#[test]
fn obs_check_validates_a_real_dump() {
    let base = temp_base("check");
    let base_str = base.to_str().expect("utf-8 temp path");
    run_fig3("summary", Some(base_str));
    let jsonl_path = format!("{base_str}.jsonl");
    let prom_path = format!("{base_str}.prom");

    let out = Command::new(env!("CARGO_BIN_EXE_obs_check"))
        .args([&jsonl_path, &prom_path])
        .output()
        .expect("spawn obs_check");
    let _ = std::fs::remove_file(&jsonl_path);
    let _ = std::fs::remove_file(&prom_path);
    assert!(
        out.status.success(),
        "obs_check rejected a dump fig3 just wrote: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
