//! Black-box flight-recorder checks against the real `fig3` binary:
//! the `COLT_OBS_LEDGER` dump is byte-identical at 1 and 4 worker
//! threads (the ledger holds only simulated values and the merge is
//! submission-ordered), and its JSONL parses line by line.

use std::path::PathBuf;
use std::process::Command;

const SCALE: &str = "0.004";

fn run_fig3_with_ledger(threads: &str, ledger_path: &str) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig3"));
    cmd.env("COLT_SCALE", SCALE)
        .env("COLT_SEED", "42")
        .env("COLT_THREADS", threads)
        .env("COLT_OBS", "full")
        .env("COLT_OBS_LEDGER", ledger_path)
        .env_remove("COLT_OBS_PATH");
    let out = cmd.output().expect("spawn fig3");
    assert!(
        out.status.success(),
        "fig3 (COLT_THREADS={threads}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("colt-ledger-test-{}-{tag}.jsonl", std::process::id()))
}

#[test]
fn ledger_dump_is_byte_identical_across_thread_counts() {
    let p1 = temp_path("t1");
    let p4 = temp_path("t4");
    let stdout1 = run_fig3_with_ledger("1", p1.to_str().expect("utf-8 path"));
    let stdout4 = run_fig3_with_ledger("4", p4.to_str().expect("utf-8 path"));
    assert_eq!(stdout1, stdout4, "fig3 stdout must not depend on COLT_THREADS");

    let d1 = std::fs::read(&p1).expect("thread-1 ledger dump written");
    let d4 = std::fs::read(&p4).expect("thread-4 ledger dump written");
    assert!(!d1.is_empty(), "ledger dump must not be empty");
    assert_eq!(d1, d4, "COLT_OBS_LEDGER dump must be byte-identical at 1 vs 4 threads");

    // Every line is a JSON object tagged as a decision or series point.
    let text = String::from_utf8(d1).expect("ledger dump is utf-8");
    let mut decisions = 0usize;
    let mut points = 0usize;
    for (i, line) in text.lines().enumerate() {
        assert!(
            line.starts_with("{\"decision\":") || line.starts_with("{\"series_epoch\":"),
            "line {}: unexpected shape: {line}",
            i + 1
        );
        if line.starts_with("{\"decision\":") {
            decisions += 1;
        } else {
            points += 1;
        }
    }
    assert!(decisions > 0, "a tuned fig3 run must record decisions");
    assert!(points > 0, "a tuned fig3 run must record series points");

    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
}
