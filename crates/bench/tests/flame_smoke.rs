//! Black-box check of the folded-stack flame export: running the real
//! `fig3` binary with `COLT_OBS_FLAME=<path>` must produce a file of
//! parseable `outer;inner;leaf <ns>` lines that includes the
//! vectorized executor's `engine.exec.batch` spans nested under the
//! spans that open them.

use std::process::Command;

#[test]
fn fig3_writes_parseable_folded_stacks() {
    let path = std::env::temp_dir().join(format!("colt-flame-test-{}.folded", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");

    let out = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .env("COLT_SCALE", "0.004")
        .env("COLT_SEED", "42")
        .env("COLT_THREADS", "2")
        .env("COLT_OBS", "summary")
        .env("COLT_OBS_FLAME", path_str)
        .env_remove("COLT_OBS_PATH")
        .output()
        .expect("spawn fig3");
    assert!(out.status.success(), "fig3 failed: {}", String::from_utf8_lossy(&out.stderr));

    let folded = std::fs::read_to_string(&path).expect("fig3 must write the flame dump");
    let _ = std::fs::remove_file(&path);

    let mut frames = 0usize;
    let mut batch_frames = 0usize;
    for (i, line) in folded.lines().enumerate() {
        let (stack, ns) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("flame line {} is not `stack <ns>`: {line}", i + 1));
        let ns: u64 = ns.parse().unwrap_or_else(|e| panic!("flame line {}: {e}: {line}", i + 1));
        assert!(ns > 0, "flame line {} carries zero self time: {line}", i + 1);
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "flame line {} has an empty frame: {line}", i + 1);
        }
        if stack.split(';').any(|f| f == "engine.exec.batch") {
            // The executor's batch spans open inside `engine.execute`,
            // so they must appear as nested (never root) frames.
            assert_ne!(
                stack, "engine.exec.batch",
                "engine.exec.batch must be nested under its caller"
            );
            batch_frames += 1;
        }
        frames += 1;
    }
    assert!(frames > 0, "the flame dump must not be empty");
    assert!(batch_frames > 0, "no engine.exec.batch frames in the flame dump:\n{folded}");
}
