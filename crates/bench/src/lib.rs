//! # colt-bench
//!
//! Benchmark harness for the COLT reproduction: one binary per paper
//! exhibit (`table1`, `fig3`, `fig4`, `fig5`, `fig6`, `ablation`) plus
//! Criterion micro-benchmarks of the substrates (`cargo bench`).
//!
//! Every binary reads three environment variables:
//!
//! * `COLT_SCALE` — data scale relative to the paper's Table 1
//!   (default: 0.025 = 1/40),
//! * `COLT_SEED` — master seed (default: 42),
//! * `COLT_THREADS` — worker threads for the parallel harness
//!   (default: available parallelism). Results are bit-identical at
//!   every thread count; only wall-clock time changes.
//!
//! Results are printed to stdout in a form that pastes directly into
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

use colt_workload::{generate, TpchData, DEFAULT_SCALE};

/// Data scale from `COLT_SCALE` (default [`DEFAULT_SCALE`]).
pub fn scale() -> f64 {
    std::env::var("COLT_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SCALE)
}

/// Master seed from `COLT_SEED` (default 42).
pub fn seed() -> u64 {
    std::env::var("COLT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Worker-thread count for the parallel harness: `COLT_THREADS` if set,
/// else the machine's available parallelism. Cell results are
/// bit-identical at every thread count, so this only changes wall-clock
/// time.
pub fn threads() -> usize {
    colt_harness::default_threads()
}

/// Generate the experiment data set, reporting shape and timing through
/// the event sink (stderr only; silent under `COLT_OBS=off`).
pub fn build_data() -> TpchData {
    let scale = scale();
    let seed = seed();
    let t0 = std::time::Instant::now();
    let data = generate(scale, seed);
    colt_obs::progress(
        colt_obs::Event::new("setup")
            .field("scale", scale)
            .field("seed", seed)
            .field("tables", data.db.table_count())
            .field("tuples", data.db.total_tuples())
            .field("attributes", data.db.indexable_attributes())
            .field("wall_ms", t0.elapsed().as_secs_f64() * 1e3),
    );
    data
}

/// When `COLT_OBS_PATH` is set, dump a parallel batch's merged metrics
/// next to it: `<path>.jsonl` (the structured event stream, one JSON
/// object per line) and `<path>.prom` (the Prometheus-style text dump).
/// When `COLT_OBS_FLAME` is set, additionally write the merged span
/// stacks as folded-stack lines (`outer;inner;leaf <ns>`) to that path,
/// ready for `flamegraph.pl` / `inferno-flamegraph`. When
/// `COLT_OBS_LEDGER` is set, write the merged flight recorder (decision
/// ledger then per-epoch time series, JSONL) to that path — the dump
/// holds only deterministic simulated values, so it is byte-identical
/// at every `COLT_THREADS`. Does nothing otherwise. Dump destinations
/// and contents never touch stdout.
pub fn dump_obs(report: &colt_harness::ParallelReport) {
    dump_flame(report);
    dump_ledger(report);
    let Ok(path) = std::env::var("COLT_OBS_PATH") else { return };
    if path.is_empty() {
        return;
    }
    let snap = report.obs();
    let jsonl = format!("{path}.jsonl");
    let prom = format!("{path}.prom");
    if let Err(e) = std::fs::write(&jsonl, snap.events_jsonl()) {
        colt_obs::progress(
            colt_obs::Event::new("obs_dump_error").field("path", jsonl).field("error", e.to_string()),
        );
        return;
    }
    if let Err(e) = std::fs::write(&prom, snap.prometheus()) {
        colt_obs::progress(
            colt_obs::Event::new("obs_dump_error").field("path", prom).field("error", e.to_string()),
        );
        return;
    }
    colt_obs::progress(
        colt_obs::Event::new("obs_dump")
            .field("events", snap.events.len())
            .field("jsonl", jsonl)
            .field("prom", prom),
    );
}

/// Write the merged flame accumulator as folded-stack lines when
/// `COLT_OBS_FLAME=<path>` is set.
fn dump_flame(report: &colt_harness::ParallelReport) {
    let Ok(path) = std::env::var("COLT_OBS_FLAME") else { return };
    if path.is_empty() {
        return;
    }
    let snap = report.obs();
    if let Err(e) = std::fs::write(&path, snap.folded_flame()) {
        colt_obs::progress(
            colt_obs::Event::new("obs_dump_error").field("path", path).field("error", e.to_string()),
        );
        return;
    }
    colt_obs::progress(
        colt_obs::Event::new("obs_flame_dump").field("frames", snap.flame.len()).field("path", path),
    );
}

/// Write the merged flight recorder (ledger + time series JSONL) when
/// `COLT_OBS_LEDGER=<path>` is set.
fn dump_ledger(report: &colt_harness::ParallelReport) {
    let Ok(path) = std::env::var("COLT_OBS_LEDGER") else { return };
    if path.is_empty() {
        return;
    }
    let snap = report.obs();
    if let Err(e) = std::fs::write(&path, snap.flight_jsonl()) {
        colt_obs::progress(
            colt_obs::Event::new("obs_dump_error").field("path", path).field("error", e.to_string()),
        );
        return;
    }
    colt_obs::progress(
        colt_obs::Event::new("obs_ledger_dump")
            .field("decisions", snap.ledger.len() as u64)
            .field("series_points", snap.series.len() as u64)
            .field("path", path),
    );
}

/// Format a simulated-ms quantity compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 10_000.0 {
        format!("{:.1} s", ms / 1000.0)
    } else {
        format!("{ms:.1} ms")
    }
}

/// Minimal micro-benchmark runner (`cargo bench` harness): warm the
/// closure up for ~20 ms to size the measured iteration count, then
/// time it and print ns/op. Wrap results the optimizer could discard
/// in [`std::hint::black_box`] inside the closure.
pub fn bench(name: &str, mut f: impl FnMut()) {
    use std::time::{Duration, Instant};
    let warm = Instant::now();
    let mut warm_iters = 0u64;
    while warm.elapsed() < Duration::from_millis(20) {
        f();
        warm_iters += 1;
    }
    let iters = (warm_iters * 5).clamp(10, 200_000);
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    let shown = if per_ns >= 1e6 {
        format!("{:.3} ms/op", per_ns / 1e6)
    } else if per_ns >= 1e3 {
        format!("{:.3} µs/op", per_ns / 1e3)
    } else {
        format!("{per_ns:.1} ns/op")
    };
    // colt: allow(output-hygiene) — cargo-bench harness output, never part of a diffed experiment artifact
    println!("  {name:<44} {shown:>14}  ({iters} iters)");
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_defaults() {
        // Do not set the env vars: defaults must apply.
        assert!(super::scale() > 0.0);
        assert!(super::seed() > 0);
    }

    #[test]
    fn fmt_ms_shapes() {
        assert_eq!(super::fmt_ms(12.34), "12.3 ms");
        assert_eq!(super::fmt_ms(123_456.0), "123.5 s");
    }
}
