//! Extension experiment: on-line multi-column tuning (the paper's
//! future work, DESIGN.md §8).
//!
//! The workload pairs two mid-selectivity equality predicates on
//! lineitem (supplier × quantity). Each predicate alone is past the
//! random-page break-even — no single-column index helps, so the paper's
//! COLT is stuck at sequential scans. With a composite budget, the
//! extension mines the co-occurrence on-line and materializes the
//! two-column index.

use colt_bench::{build_data, dump_obs, fmt_ms, seed, threads};
use colt_core::ColtConfig;
use colt_harness::{emit_parallel_summary, run_cells, Cell, Policy};
use colt_storage::Prng;
use colt_workload::{fixed, QueryDistribution, QueryTemplate, SelSpec, TemplateSelection};

fn main() {
    let data = build_data();
    let db = &data.db;
    let inst = &data.instances[0];
    let li = inst.table("lineitem");
    let dist = QueryDistribution::new().with(
        1.0,
        QueryTemplate::single(
            li,
            vec![
                TemplateSelection { col: inst.col(db, "lineitem", "l_suppkey"), spec: SelSpec::Eq },
                TemplateSelection { col: inst.col(db, "lineitem", "l_quantity"), spec: SelSpec::Eq },
            ],
        ),
    );
    let mut rng = Prng::new(seed());
    let workload = fixed(&dist, 400, db, &mut rng);

    println!("# Extension — on-line multi-column tuning");
    println!("  workload: 400 lineitem queries pairing l_suppkey = x AND l_quantity = y");
    println!();

    let cells = [
        Cell::new("no tuning", db, &workload, Policy::None),
        Cell::new(
            "COLT single-column",
            db,
            &workload,
            Policy::colt(ColtConfig { storage_budget_pages: 4_096, ..Default::default() }),
        ),
        Cell::new(
            "COLT composite",
            db,
            &workload,
            Policy::colt(ColtConfig {
                storage_budget_pages: 4_096,
                composite_budget_pages: 4_096,
                ..Default::default()
            }),
        ),
    ];
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Composite cells", &report);
    dump_obs(&report);
    let none = report.get("no tuning").expect("baseline cell");
    let plain = report.get("COLT single-column").expect("plain cell");
    let extended = report.get("COLT composite").expect("extended cell");

    println!("  no tuning:            {:>10}", fmt_ms(none.total_millis()));
    println!(
        "  COLT (paper, single-column): {:>3} — single-column indices never pay here",
        fmt_ms(plain.total_millis())
    );
    println!(
        "  COLT + composite extension:  {:>3}",
        fmt_ms(extended.total_millis())
    );
    println!();
    println!(
        "  extension speedup over paper-COLT: {:.1}x",
        plain.total_millis() / extended.total_millis()
    );
}
