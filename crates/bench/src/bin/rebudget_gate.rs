//! Dynamic re-budgeting regression gate (PR 10 tentpole).
//!
//! The profiler's skip-proofs (see `colt_core::rebudget`) exist to stop
//! spending what-if probes on candidates whose gain interval already
//! proves they cannot change the knapsack outcome. This gate runs the
//! Figure 5 shifting preset end to end and compares probes *issued* per
//! epoch against the checked-in baseline:
//!
//! ```text
//! rebudget_gate                    # gate: exit 1 below 1.3x reduction
//! rebudget_gate --write-baseline   # refresh the baseline file
//! rebudget_gate --baseline <path>  # non-default baseline location
//! ```
//!
//! `--write-baseline` measures the run with `dynamic_rebudget` *off*
//! (the PR-9 profiler), so the gate always compares skip-proofs against
//! the exact behavior they replaced. Two conditions are enforced:
//!
//! 1. **Overhead**: probes issued per epoch must fall by at least
//!    [`REDUCTION_FLOOR`]x relative to the baseline.
//! 2. **Decision quality**: the final index set must be byte-identical
//!    to the baseline's — or, failing that, the converged tail cost must
//!    be strictly better. Skipping a probe is only legal when it cannot
//!    change the knapsack solution, so identical outcomes are the
//!    expected case, not a lucky one.
//!
//! Everything measured here is a deterministic count or simulated cost
//! (no wall-clock), so a single run suffices and the baseline transfers
//! across machines. The baseline records its `COLT_SCALE`/`COLT_SEED`;
//! the gate refuses to compare across workload shapes (exit 2).

use colt_bench::{build_data, scale, seed};
use colt_core::json::Json;
use colt_core::ColtConfig;
use colt_harness::{Experiment, Policy};
use colt_workload::presets;
use std::process::ExitCode;

/// Gate threshold: fail when (baseline probes issued per epoch) /
/// (current probes issued per epoch) drops below this.
const REDUCTION_FLOOR: f64 = 1.3;
/// Tail length (queries) over which converged cost is compared.
const TAIL_QUERIES: usize = 300;

fn default_baseline_path() -> String {
    format!("{}/baselines/rebudget_baseline.json", env!("CARGO_MANIFEST_DIR"))
}

/// One end-to-end run of the shifting preset; returns the metrics the
/// gate compares.
struct RunMetrics {
    epochs: u64,
    issued: u64,
    skipped: u64,
    tail_ms: f64,
    final_indices: Vec<String>,
}

fn run(data: &colt_workload::TpchData, dynamic_rebudget: bool) -> RunMetrics {
    let preset = presets::shifting(data, seed());
    let result = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            dynamic_rebudget,
            // Fixed-intensity profiling in BOTH arms: the r-ratio
            // hibernates the profiler so aggressively at gate scale
            // (<1 probe/epoch against a budget of 20) that there is
            // almost nothing left to skip. Pinning self-regulation off
            // isolates what the skip-proofs themselves save on the
            // probes the r-ratio would otherwise issue; the product
            // default keeps both mechanisms on, composed.
            self_regulation: false,
            ..Default::default()
        }))
        .run()
        .expect("run failed");
    let n = preset.queries.len();
    let tail = n.saturating_sub(TAIL_QUERIES)..n;
    RunMetrics {
        epochs: result.trace.epochs.len() as u64,
        issued: result.trace.epochs.iter().map(|e| e.whatif_used).sum(),
        skipped: result.trace.epochs.iter().map(|e| e.whatif_skipped).sum(),
        tail_ms: result.range_millis(tail),
        final_indices: result.final_indices.iter().map(|c| format!("{c}")).collect(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(default_baseline_path);

    let data = build_data();
    let m = run(&data, !write);
    let per_epoch = m.issued as f64 / (m.epochs as f64).max(1.0);
    let skipped_per_epoch = m.skipped as f64 / (m.epochs as f64).max(1.0);
    let label = if write { "dynamic_rebudget=off (baseline)" } else { "dynamic_rebudget=on" };
    println!(
        "# Re-budget gate ({label}, scale {}, seed {}): {} probes issued + {} skipped over {} epochs \
         = {per_epoch:.2} issued/epoch, {skipped_per_epoch:.2} skipped/epoch",
        scale(),
        seed(),
        m.issued,
        m.skipped,
        m.epochs
    );
    println!(
        "  converged tail (last {TAIL_QUERIES} queries): {:.1} simulated ms; final indices: [{}]",
        m.tail_ms,
        m.final_indices.join(", ")
    );

    if write {
        let json = Json::obj(vec![
            ("scale", Json::Float(scale())),
            ("seed", Json::UInt(seed())),
            ("epochs", Json::UInt(m.epochs)),
            ("probes_issued", Json::UInt(m.issued)),
            ("probes_issued_per_epoch", Json::Float(per_epoch)),
            ("tail_queries", Json::UInt(TAIL_QUERIES as u64)),
            ("converged_tail_ms", Json::Float(m.tail_ms)),
            (
                "final_indices",
                Json::Arr(m.final_indices.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
        ])
        .pretty();
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let raw = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: no baseline at {baseline_path} ({e}); run with --write-baseline first"
            );
            return ExitCode::from(2);
        }
    };
    let base = match colt_core::json::parse(&raw) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let base_f = |key: &str| -> Option<f64> {
        match base.get(key) {
            Some(Json::Float(f)) => Some(*f),
            Some(Json::UInt(u)) => Some(*u as f64),
            Some(Json::Int(i)) => Some(*i as f64),
            _ => None,
        }
    };
    let (Some(base_scale), Some(base_seed), Some(base_per_epoch), Some(base_tail_ms)) = (
        base_f("scale"),
        base_f("seed"),
        base_f("probes_issued_per_epoch"),
        base_f("converged_tail_ms"),
    ) else {
        eprintln!("error: baseline {baseline_path} is missing required fields");
        return ExitCode::from(2);
    };
    if (base_scale - scale()).abs() > 1e-12 || base_seed as u64 != seed() {
        eprintln!(
            "error: baseline was measured at COLT_SCALE={base_scale} COLT_SEED={base_seed}, \
             current run is {}/{}; pin them or refresh with --write-baseline",
            scale(),
            seed()
        );
        return ExitCode::from(2);
    }
    let base_indices: Vec<String> = match base.get("final_indices") {
        Some(Json::Arr(a)) => a
            .iter()
            .filter_map(|j| match j {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => {
            eprintln!("error: baseline {baseline_path} is missing final_indices");
            return ExitCode::from(2);
        }
    };

    let reduction = base_per_epoch / per_epoch.max(1e-9);
    println!(
        "  baseline {base_per_epoch:.2} issued/epoch -> {per_epoch:.2} issued/epoch \
         = {reduction:.2}x reduction (floor {REDUCTION_FLOOR}x)"
    );
    let mut ok = true;
    if reduction < REDUCTION_FLOOR {
        println!(
            "FAIL: probes issued per epoch fell only {reduction:.2}x, below the {REDUCTION_FLOOR}x floor"
        );
        ok = false;
    }
    if m.final_indices == base_indices {
        println!("  decision quality: final index set identical to baseline");
    } else if m.tail_ms < base_tail_ms {
        println!(
            "  decision quality: final index set differs but converged tail cost improved \
             ({:.1} ms vs baseline {base_tail_ms:.1} ms)",
            m.tail_ms
        );
    } else {
        println!(
            "FAIL: final index set differs from baseline ([{}] vs [{}]) and converged tail \
             cost did not improve ({:.1} ms vs {base_tail_ms:.1} ms)",
            m.final_indices.join(", "),
            base_indices.join(", "),
            m.tail_ms
        );
        ok = false;
    }
    if ok {
        println!("OK: skip-proofs cut issued probes {reduction:.2}x at unchanged-or-better decisions");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
