//! Flight-recorder report: exhibit-grade markdown from the tuner's
//! decision ledger and per-epoch time series.
//!
//! Runs the Figure 3 stable preset (OFFLINE + COLT cells) and renders:
//!
//! * the per-epoch decision timeline (what-if budget, knapsack solve,
//!   creates/drops, build cost);
//! * the "why each index exists" audit, joining every create/drop to
//!   the knapsack solve that produced it;
//! * the per-epoch access-path mix for both policy arms, showing the
//!   executor shifting from sequential scans to index access paths as
//!   the tuner materializes indices.
//!
//! Every value printed is deterministic (simulated cost units, page
//! counts, epochs — never the wall clock), so the output pastes into
//! EXPERIMENTS.md and diffs cleanly in CI at any thread count.

use colt_bench::{build_data, dump_obs, seed, threads};
use colt_core::ColtConfig;
use colt_harness::{
    render_access_path_mix, render_decision_timeline, render_index_explanations,
    render_ledger_digest, run_cells, Cell, Policy,
};
use colt_workload::presets;

fn main() {
    let data = build_data();
    let preset = presets::stable(&data, seed());
    println!(
        "# Flight recorder — stable workload ({} queries, {} relevant indices, budget {} pages)",
        preset.queries.len(),
        preset.relevant.len(),
        preset.budget_pages
    );

    let cells = [
        Cell::new(
            "OFFLINE",
            &data.db,
            &preset.queries,
            Policy::Offline { budget_pages: preset.budget_pages },
        ),
        Cell::new(
            "COLT",
            &data.db,
            &preset.queries,
            Policy::colt(ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() }),
        ),
    ];
    let report = run_cells(&cells, threads()).expect("run failed");
    let offline = report.get("OFFLINE").expect("offline cell");
    let colt = report.get("COLT").expect("colt cell");

    println!();
    print!("{}", render_decision_timeline(colt));
    println!();
    print!("{}", render_index_explanations(colt));
    println!();
    print!("{}", render_ledger_digest(&colt.obs));
    println!();
    print!("{}", render_access_path_mix("COLT", &colt.obs));
    println!();
    print!("{}", render_access_path_mix("OFFLINE", &offline.obs));
    println!();
    println!(
        "Ledger: {} decisions ({} evicted), {} time-series points.",
        colt.obs.ledger.len(),
        colt.obs.ledger.evicted(),
        colt.obs.series.len(),
    );
    dump_obs(&report);
}
