//! Ablation study of COLT's design choices (DESIGN.md §7).
//!
//! Runs the shifting workload (the Figure 4 setting) under variants of
//! the tuner and reports total time, tuning overhead, and churn:
//!
//! * **full** — COLT as configured by default;
//! * **no self-regulation** — the what-if budget is always `#WI_max`,
//!   modelling the fixed-intensity on-line tuners the paper contrasts
//!   against (§1); isolates the value of re-budgeting;
//! * **no swap hysteresis** — `swap_margin = 0`: the knapsack re-solve
//!   replaces the materialized set whenever the estimates say so;
//!   isolates the cost of materialization churn;
//! * **eager forecast window** (h=4) and **sluggish window** (h=24) —
//!   sensitivity of adaptation speed and noise resilience to the
//!   memory depth.
//!
//! Every variant is an independent run cell; the whole grid fans across
//! the parallel harness.

use colt_bench::{build_data, dump_obs, fmt_ms, seed, threads};
use colt_core::{ColtConfig, MaterializationStrategy};
use colt_harness::{emit_parallel_summary, run_cells, Cell, Policy};
use colt_workload::presets;

fn variants(base: &ColtConfig) -> Vec<(&'static str, ColtConfig)> {
    vec![
        ("full", base.clone()),
        ("no self-regulation", ColtConfig { self_regulation: false, ..base.clone() }),
        ("no swap hysteresis", ColtConfig { swap_margin: 0.0, ..base.clone() }),
        ("window h=4", ColtConfig { history_epochs: 4, candidate_ttl_epochs: 4, ..base.clone() }),
        ("window h=24", ColtConfig { history_epochs: 24, candidate_ttl_epochs: 24, ..base.clone() }),
    ]
}

fn run_table(
    data: &colt_workload::TpchData,
    title: &str,
    preset: &colt_workload::Preset,
) {
    let base = ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() };
    println!("# Ablation — {title} ({} queries)", preset.queries.len());
    let mut cells = vec![Cell::new(
        "OFFLINE",
        &data.db,
        &preset.queries,
        Policy::Offline { budget_pages: preset.budget_pages },
    )];
    cells.extend(
        variants(&base)
            .into_iter()
            .map(|(name, cfg)| Cell::new(name, &data.db, &preset.queries, Policy::colt(cfg))),
    );
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary(&format!("Ablation cells — {title}"), &report);

    let offline = &report.cells[0].result;
    println!("  OFFLINE reference: {}", fmt_ms(offline.total_millis()));
    println!();
    println!(
        "  {:<20} {:>12} {:>10} {:>9} {:>7} {:>7}",
        "variant", "total", "vs OFFLINE", "#what-if", "builds", "drops"
    );
    for cell in &report.cells[1..] {
        let run = &cell.result;
        let drops: usize = run.trace.epochs.iter().map(|e| e.dropped.len()).sum();
        println!(
            "  {:<20} {:>12} {:>9.1}% {:>9} {:>7} {:>7}",
            cell.label,
            fmt_ms(run.total_millis()),
            (run.total_millis() / offline.total_millis() - 1.0) * 100.0,
            run.trace.total_whatif(),
            run.trace.total_builds(),
            drops,
        );
    }
    println!();
}

fn scheduler_table(data: &colt_workload::TpchData, preset: &colt_workload::Preset) {
    use MaterializationStrategy as S;
    let base = ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() };
    println!("# Scheduler strategies — stable workload ({} queries)", preset.queries.len());
    println!(
        "  {:<12} {:>12} {:>16} {:>10}",
        "strategy", "total", "charged builds", "final idx"
    );
    let cells: Vec<Cell<'_>> =
        [("immediate", S::Immediate), ("idle-time", S::IdleTime), ("piggyback", S::Piggyback)]
            .into_iter()
            .map(|(name, strat)| {
                Cell::new(name, &data.db, &preset.queries, Policy::Colt(base.clone(), strat))
            })
            .collect();
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Scheduler cells", &report);
    dump_obs(&report);
    for cell in &report.cells {
        let run = &cell.result;
        let build_ms: f64 = run.samples.iter().map(|s| s.tuning_millis).sum();
        println!(
            "  {:<12} {:>12} {:>13.0} ms {:>10}",
            cell.label,
            fmt_ms(run.total_millis()),
            build_ms,
            run.final_indices.len(),
        );
    }
    println!();
    println!("  (idle-time defers builds to between-epoch gaps and charges");
    println!("   nothing to the stream; piggyback rides on sequential scans");
    println!("   and charges only the sort and index writes)");
    println!();
}

fn main() {
    let data = build_data();
    run_table(&data, "shifting workload", &presets::shifting(&data, seed()));
    run_table(&data, "stable workload", &presets::stable(&data, seed()));
    scheduler_table(&data, &presets::stable(&data, seed()));
    println!("  (lower total is better; 'no self-regulation' shows the extra");
    println!("   what-if calls the paper's mechanism avoids; 'no swap");
    println!("   hysteresis' shows materialization churn, which hurts most");
    println!("   on the stable workload)");
}
