//! Figure 5 of the paper: **overhead** — what-if calls per epoch over
//! the shifting workload of Figure 4.
//!
//! The paper's findings this bench checks:
//!
//! * the chart has four discernible peaks coinciding with the phase
//!   transitions;
//! * outside the peaks COLT uses less than half its budget (20 calls
//!   per 10-query epoch);
//! * only ~11% of the relevant indices are ever profiled accurately.
//!
//! The primary run is replicated across extra workload seeds to check
//! that the self-regulation shape is not a seed artifact; the replicas
//! run as parallel cells (`COLT_THREADS`). Everything printed to stdout
//! derives from run *results*, which are bit-identical at any thread
//! count; wall-clock and speedup go to stderr.

use colt_bench::{build_data, dump_obs, seed, threads};
use colt_core::ColtConfig;
use colt_harness::{emit_parallel_summary, render_whatif_series, run_cells, Cell, Policy};
use colt_workload::{phase_boundaries, presets};

/// Replicated workload seeds: the primary plus three more.
const REPLICAS: u64 = 4;

fn main() {
    let data = build_data();
    let presets: Vec<_> =
        (0..REPLICAS).map(|i| presets::shifting(&data, seed().wrapping_add(i))).collect();
    let colt_cfg =
        ColtConfig { storage_budget_pages: presets[0].budget_pages, ..Default::default() };
    let epoch_len = colt_cfg.epoch_length;
    let max_budget = colt_cfg.max_whatif_per_epoch;

    println!("# Figure 5 — What-if calls per epoch (shifting workload)");
    let cells: Vec<Cell<'_>> = presets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Cell::new(
                format!("COLT seed={}", seed().wrapping_add(i as u64)),
                &data.db,
                &p.queries,
                Policy::colt(ColtConfig {
                    storage_budget_pages: p.budget_pages,
                    ..colt_cfg.clone()
                }),
            )
        })
        .collect();
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Figure 5 cells", &report);
    dump_obs(&report);

    let colt = &report.cells[0].result;
    let series = colt.trace.whatif_per_epoch();
    println!("{}", render_whatif_series("#What-if calls per epoch", &series, max_budget));

    // Transition epochs (phase boundaries in epochs).
    let boundaries = phase_boundaries(4, 300, 50);
    let transition_epochs: Vec<usize> = boundaries.iter().map(|q| q / epoch_len).collect();
    println!("## Analysis");
    println!("  phase transitions begin at epochs {transition_epochs:?}");

    // Peak detection: mean usage in windows around transitions vs in
    // stable mid-phase windows.
    let window = 8;
    let mean = |range: std::ops::Range<usize>| -> f64 {
        let vals: Vec<u64> =
            range.filter_map(|i| series.get(i).copied()).collect();
        if vals.is_empty() { 0.0 } else { vals.iter().sum::<u64>() as f64 / vals.len() as f64 }
    };
    for (i, &te) in transition_epochs.iter().enumerate() {
        let peak = mean(te..te + window);
        let stable = mean((te.saturating_sub(12))..te.saturating_sub(4));
        println!(
            "  transition {}: mean what-if around transition {peak:.1} vs preceding stable {stable:.1}",
            i + 1
        );
    }
    let total_epochs = series.len();
    let stable_mean = {
        let stable_epochs: Vec<u64> = series
            .iter()
            .enumerate()
            .filter(|(i, _)| transition_epochs.iter().all(|&te| (*i as i64 - te as i64).abs() > 8))
            .map(|(_, &v)| v)
            .collect();
        stable_epochs.iter().sum::<u64>() as f64 / stable_epochs.len().max(1) as f64
    };
    println!(
        "  mean what-if per stable epoch: {stable_mean:.2} of budget {max_budget} (paper: < half budget)"
    );
    // The paper's denominator is the workload's relevant indices in the
    // broad sense: every indexable attribute of every referenced table.
    let referenced: std::collections::BTreeSet<_> =
        presets[0].queries.iter().flat_map(|q| q.tables.iter().copied()).collect();
    let attrs: usize = referenced.iter().map(|&t| data.db.table(t).schema.arity()).sum();
    println!(
        "  accurately profiled indices: {} of {} indexable attributes on referenced tables = {:.0}% (paper: ~11%)",
        colt.profiled_indices,
        attrs,
        100.0 * colt.profiled_indices as f64 / attrs as f64
    );
    println!("  total what-if calls: {} over {total_epochs} epochs", colt.trace.total_whatif());

    // Seed replicas: the self-regulation shape must hold for each.
    println!("## Seed replicas (stable-epoch budget use, paper: < half budget)");
    for cell in &report.cells {
        let s = cell.result.trace.whatif_per_epoch();
        let stable: Vec<u64> = s
            .iter()
            .enumerate()
            .filter(|(i, _)| transition_epochs.iter().all(|&te| (*i as i64 - te as i64).abs() > 8))
            .map(|(_, &v)| v)
            .collect();
        let m = stable.iter().sum::<u64>() as f64 / stable.len().max(1) as f64;
        println!(
            "  {:<16} total what-if {:>5}, mean stable epoch {m:.2}/{max_budget}",
            cell.label,
            cell.result.trace.total_whatif()
        );
    }
    println!("## Summary (primary seed)");
    println!("{}", colt.summary_json());
}
