//! Validate a `COLT_OBS_PATH` JSONL dump: every line must parse with the
//! strict in-repo JSON parser (`colt_core::json`) and carry an `"event"`
//! kind. CI runs this against the event stream `fig3` writes under
//! `COLT_OBS=full` to guarantee the sink's output stays machine-readable.
//!
//! Usage: `obs_check <path.jsonl> [<path.prom>]`. Exits non-zero (with a
//! diagnostic on stderr) on the first malformed line; prints a one-line
//! summary on success.

use colt_core::json::{parse, Json};

fn fail(msg: String) -> ! {
    eprintln!("obs_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jsonl_path = args.next().unwrap_or_else(|| fail("usage: obs_check <path.jsonl> [<path.prom>]".into()));
    let text = std::fs::read_to_string(&jsonl_path)
        .unwrap_or_else(|e| fail(format!("cannot read {jsonl_path}: {e}")));

    let mut events = 0usize;
    let mut kinds: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = parse(line)
            .unwrap_or_else(|e| fail(format!("{jsonl_path}:{}: not valid JSON: {e}", i + 1)));
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{jsonl_path}:{}: missing \"event\" kind", i + 1)));
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
        events += 1;
    }
    if events == 0 {
        fail(format!("{jsonl_path}: no events (was the producer run with COLT_OBS=full?)"));
    }

    if let Some(prom_path) = args.next() {
        let prom = std::fs::read_to_string(&prom_path)
            .unwrap_or_else(|e| fail(format!("cannot read {prom_path}: {e}")));
        let metrics = prom.lines().filter(|l| l.starts_with("colt_")).count();
        if metrics == 0 {
            fail(format!("{prom_path}: no colt_* metric lines"));
        }
        if !prom.lines().any(|l| l.starts_with("# TYPE colt_")) {
            fail(format!("{prom_path}: no # TYPE declarations"));
        }
        eprintln!("obs_check: {prom_path}: {metrics} metric lines ok");
    }

    let summary: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}×{n}")).collect();
    eprintln!("obs_check: {jsonl_path}: {events} events ok ({})", summary.join(", "));
}
