//! What-if throughput regression gate (PR 6 tentpole).
//!
//! The profiler's cost is dominated by `WhatIfOptimize` probes, and the
//! what-if memo cache exists to make *repeated* probes of the same
//! (query template, candidate) pair cheap within an epoch. This gate
//! measures exactly that workload: every query of the Figure 5 shifting
//! preset is probed on all of its candidate columns for `ROUNDS` rounds
//! against one long-lived [`colt_engine::Eqo`], and the probe rate
//! (probes per wall-clock second, best of `TRIALS` trials) is compared
//! against the checked-in baseline:
//!
//! ```text
//! whatif_gate                    # gate: exit 1 if < 2.0x baseline
//! whatif_gate --write-baseline   # refresh the baseline file
//! whatif_gate --baseline <path>  # non-default baseline location
//! ```
//!
//! Unlike `overhead_gate` (a *ceiling* on tuner overhead) this is a
//! *floor*: the baseline was measured with the memo cache absent, so the
//! gate fails when the cached probe rate drops below `THRESHOLD` times
//! the uncached rate — i.e. when the cache stops paying for itself.
//! The baseline records the `COLT_SCALE`/`COLT_SEED` it was measured
//! at; the gate refuses to compare across workload shapes (exit 2).

use colt_bench::{build_data, scale, seed};
use colt_catalog::{ColRef, PhysicalConfig};
use colt_core::json::Json;
use colt_engine::{Eqo, Query};
use colt_workload::presets;
use std::process::ExitCode;

/// Trials per measurement; the maximum probe rate is used.
const TRIALS: usize = 3;
/// Repeated-probe rounds over the workload within one trial.
const ROUNDS: usize = 8;
/// Gate threshold: fail when current rate is below baseline × this.
const THRESHOLD: f64 = 2.0;

fn default_baseline_path() -> String {
    format!("{}/baselines/whatif_baseline.json", env!("CARGO_MANIFEST_DIR"))
}

/// One measured trial: (timed probes answered, wall seconds, memo hits).
fn measure_once(
    data: &colt_workload::TpchData,
    probe_sets: &[(Query, Vec<ColRef>)],
) -> (u64, f64, u64) {
    let config = PhysicalConfig::new();
    let mut eqo = Eqo::new(&data.db);
    // One untimed warm round: the timed region then measures the steady
    // repeated-probe state the gate is about. Without a memo (as in the
    // baseline) the warm round changes nothing — probe cost is flat.
    for (q, probes) in probe_sets {
        eqo.what_if_optimize(q, probes, &config);
    }
    let warm_calls = eqo.counters().whatif_calls;
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        for (q, probes) in probe_sets {
            let gains = eqo.what_if_optimize(q, probes, &config);
            assert_eq!(gains.len(), probes.len(), "every probe must be answered");
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (eqo.counters().whatif_calls - warm_calls, secs, eqo.counters().memo_hits)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(default_baseline_path);

    let data = build_data();
    let preset = presets::shifting(&data, seed());
    let probe_sets: Vec<(Query, Vec<ColRef>)> =
        preset.queries.iter().map(|q| (q.clone(), q.candidate_columns())).collect();

    let mut best_rate = 0.0f64;
    let mut probes = 0u64;
    for trial in 0..TRIALS {
        let (n, secs, hits) = measure_once(&data, &probe_sets);
        let rate = n as f64 / secs.max(1e-9);
        println!(
            "  trial {}: {n} probes in {:.3} s = {:.0} probes/s ({hits} memo hits)",
            trial + 1,
            secs,
            rate
        );
        best_rate = best_rate.max(rate);
        probes = n;
    }
    println!(
        "# What-if throughput: best of {TRIALS} trials = {best_rate:.0} probes/s over {probes} probes (scale {}, seed {})",
        scale(),
        seed()
    );

    if write {
        let json = Json::obj(vec![
            ("scale", Json::Float(scale())),
            ("seed", Json::UInt(seed())),
            ("probes", Json::UInt(probes)),
            ("rounds", Json::UInt(ROUNDS as u64)),
            ("whatif_probes_per_sec", Json::Float(best_rate)),
        ])
        .pretty();
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let raw = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: no baseline at {baseline_path} ({e}); run with --write-baseline first"
            );
            return ExitCode::from(2);
        }
    };
    let base = match colt_core::json::parse(&raw) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let base_f = |key: &str| -> Option<f64> {
        match base.get(key) {
            Some(Json::Float(f)) => Some(*f),
            Some(Json::UInt(u)) => Some(*u as f64),
            Some(Json::Int(i)) => Some(*i as f64),
            _ => None,
        }
    };
    let (Some(base_scale), Some(base_rate)) = (base_f("scale"), base_f("whatif_probes_per_sec"))
    else {
        eprintln!("error: baseline {baseline_path} is missing scale/whatif_probes_per_sec");
        return ExitCode::from(2);
    };
    if (base_scale - scale()).abs() > 1e-12 {
        eprintln!(
            "error: baseline was measured at COLT_SCALE={base_scale}, current run is {}; \
             pin COLT_SCALE or refresh with --write-baseline",
            scale()
        );
        return ExitCode::from(2);
    }

    let floor = base_rate * THRESHOLD;
    println!("  baseline {base_rate:.0} probes/s, floor {THRESHOLD}x = {floor:.0} probes/s");
    if best_rate < floor {
        println!(
            "FAIL: what-if throughput {best_rate:.0} probes/s is below {THRESHOLD}x the uncached baseline ({base_rate:.0} probes/s)"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "OK: what-if memo sustains {:.1}x the uncached probe rate",
            best_rate / base_rate.max(1e-9)
        );
        ExitCode::SUCCESS
    }
}
