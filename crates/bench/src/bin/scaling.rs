//! Scale-invariance study (extension): the paper's headline shapes must
//! hold across data-set scales, since COLT's decisions depend only on
//! relative table sizes and selectivities (DESIGN.md §2's substitution
//! argument). Runs the stable and shifting experiments at three scales
//! and reports the headline metrics side by side.

use colt_bench::{fmt_ms, seed};
use colt_core::ColtConfig;
use colt_harness::{convergence_point, run_colt, run_offline};
use colt_workload::{generate, presets};

fn main() {
    println!("# Scale invariance of the headline results");
    println!();
    println!(
        "  {:<7} {:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "scale", "tuples", "f3 tail dev", "f3 converge", "f4 overall", "f4 phase-best"
    );
    for scale in [0.01f64, 0.025, 0.05] {
        let data = generate(scale, seed());

        // Figure 3 metrics.
        let stable = presets::stable(&data, seed());
        let off3 = run_offline(&data.db, &stable.queries, &stable.queries, stable.budget_pages);
        let colt3 = run_colt(
            &data.db,
            &stable.queries,
            ColtConfig { storage_budget_pages: stable.budget_pages, ..Default::default() },
        );
        let tail = 100..stable.queries.len();
        let dev = (colt3.range_millis(tail.clone()) / off3.range_millis(tail) - 1.0) * 100.0;
        let conv = convergence_point(&colt3, &off3, 20, 0.10)
            .map(|p| format!("q{p}"))
            .unwrap_or_else(|| "—".into());

        // Figure 4 metrics.
        let shifting = presets::shifting(&data, seed());
        let off4 =
            run_offline(&data.db, &shifting.queries, &shifting.queries, shifting.budget_pages);
        let colt4 = run_colt(
            &data.db,
            &shifting.queries,
            ColtConfig { storage_budget_pages: shifting.budget_pages, ..Default::default() },
        );
        let overall = (1.0 - colt4.total_millis() / off4.total_millis()) * 100.0;
        let best = [350..650, 700..1000, 1050..1350]
            .into_iter()
            .map(|s| (1.0 - colt4.range_millis(s.clone()) / off4.range_millis(s)) * 100.0)
            .fold(f64::NEG_INFINITY, f64::max);

        println!(
            "  {:<7} {:>10} | {:>11.1}% {:>12} | {:>11.1}% {:>11.1}%",
            scale,
            data.db.total_tuples(),
            dev,
            conv,
            overall,
            best,
        );
        eprintln!(
            "    [scale {scale}: stable COLT {} OFFLINE {}; shifting COLT {} OFFLINE {}]",
            fmt_ms(colt3.total_millis()),
            fmt_ms(off3.total_millis()),
            fmt_ms(colt4.total_millis()),
            fmt_ms(off4.total_millis()),
        );
    }
    println!();
    println!("  (f3 tail dev = COLT-vs-OFFLINE deviation after query 100 on the");
    println!("   stable workload, paper ≈1%; f4 overall = COLT's reduction on the");
    println!("   shifting workload, paper ≈33%. The shapes — convergence on");
    println!("   stable, a clear win on shifting — must hold at every scale.)");
}
