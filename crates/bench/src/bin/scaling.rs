//! Scale-invariance study (extension): the paper's headline shapes must
//! hold across data-set scales, since COLT's decisions depend only on
//! relative table sizes and selectivities (DESIGN.md §2's substitution
//! argument). Runs the stable and shifting experiments at three scales
//! and reports the headline metrics side by side.
//!
//! The grid is 3 scales × (stable, shifting) × (OFFLINE, COLT) = 12 run
//! cells, all independent: each borrows its own scale's database and
//! fans across the parallel harness.

use colt_bench::{dump_obs, fmt_ms, seed, threads};
use colt_core::ColtConfig;
use colt_harness::{convergence_point, emit_parallel_summary, run_cells, Cell, Policy};
use colt_workload::{generate, presets};

const SCALES: [f64; 3] = [0.01, 0.025, 0.05];

fn main() {
    println!("# Scale invariance of the headline results");
    println!();
    println!(
        "  {:<7} {:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "scale", "tuples", "f3 tail dev", "f3 converge", "f4 overall", "f4 phase-best"
    );

    // Build all data sets and presets first so the cells can borrow them.
    let setups: Vec<_> = SCALES
        .iter()
        .map(|&scale| {
            let data = generate(scale, seed());
            let stable = presets::stable(&data, seed());
            let shifting = presets::shifting(&data, seed());
            (scale, data, stable, shifting)
        })
        .collect();
    let cells: Vec<Cell<'_>> = setups
        .iter()
        .flat_map(|(scale, data, stable, shifting)| {
            [(stable, "f3"), (shifting, "f4")].into_iter().flat_map(move |(preset, fig)| {
                [
                    Cell::new(
                        format!("OFFLINE {fig} scale={scale}"),
                        &data.db,
                        &preset.queries,
                        Policy::Offline { budget_pages: preset.budget_pages },
                    ),
                    Cell::new(
                        format!("COLT {fig} scale={scale}"),
                        &data.db,
                        &preset.queries,
                        Policy::colt(ColtConfig {
                            storage_budget_pages: preset.budget_pages,
                            ..Default::default()
                        }),
                    ),
                ]
            })
        })
        .collect();
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Scaling cells", &report);
    dump_obs(&report);

    for (i, (scale, data, stable, _)) in setups.iter().enumerate() {
        let off3 = &report.cells[4 * i].result;
        let colt3 = &report.cells[4 * i + 1].result;
        let off4 = &report.cells[4 * i + 2].result;
        let colt4 = &report.cells[4 * i + 3].result;

        // Figure 3 metrics.
        let tail = 100..stable.queries.len();
        let dev = (colt3.range_millis(tail.clone()) / off3.range_millis(tail) - 1.0) * 100.0;
        let conv = convergence_point(colt3, off3, 20, 0.10)
            .map(|p| format!("q{p}"))
            .unwrap_or_else(|| "—".into());

        // Figure 4 metrics.
        let overall = (1.0 - colt4.total_millis() / off4.total_millis()) * 100.0;
        let best = [350..650, 700..1000, 1050..1350]
            .into_iter()
            .map(|s| (1.0 - colt4.range_millis(s.clone()) / off4.range_millis(s)) * 100.0)
            .fold(f64::NEG_INFINITY, f64::max);

        println!(
            "  {:<7} {:>10} | {:>11.1}% {:>12} | {:>11.1}% {:>11.1}%",
            scale,
            data.db.total_tuples(),
            dev,
            conv,
            overall,
            best,
        );
        colt_obs::progress(
            colt_obs::Event::new("scale_point")
                .field("scale", *scale)
                .field("stable_colt", fmt_ms(colt3.total_millis()))
                .field("stable_offline", fmt_ms(off3.total_millis()))
                .field("shifting_colt", fmt_ms(colt4.total_millis()))
                .field("shifting_offline", fmt_ms(off4.total_millis())),
        );
    }
    println!();
    println!("  (f3 tail dev = COLT-vs-OFFLINE deviation after query 100 on the");
    println!("   stable workload, paper ≈1%; f4 overall = COLT's reduction on the");
    println!("   shifting workload, paper ≈33%. The shapes — convergence on");
    println!("   stable, a clear win on shifting — must hold at every scale.)");
}
