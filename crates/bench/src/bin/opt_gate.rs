//! Optimizer-throughput regression gate (ROADMAP item 2: the last
//! ungated hot path).
//!
//! The tuner calls [`colt_engine::Optimizer::optimize`] on every query
//! — once to plan the real execution and once per what-if probe under a
//! hypothetical index view — so a plan-derivation slowdown taxes every
//! policy arm at once, and none of the existing gates (`exec_gate`,
//! `whatif_gate`, `overhead_gate`) would isolate it: they all measure
//! larger units that amortize planning. This gate times the planner
//! alone: every query of the Figure 5 shifting preset is planned under
//! both the real (empty) physical config and a hypothetical view
//! holding all of its candidate columns, for `ROUNDS` rounds, and the
//! derivation rate (plans per wall-clock second, best of `TRIALS`
//! trials) is compared against the checked-in baseline:
//!
//! ```text
//! opt_gate                    # gate: exit 1 if < baseline / 1.5
//! opt_gate --write-baseline   # refresh the baseline file
//! opt_gate --baseline <path>  # non-default baseline location
//! ```
//!
//! Unlike `whatif_gate` (whose baseline was measured with the memo
//! cache absent, so it demands a multiple *above* baseline) the
//! baseline here is the same code path, so the gate is a pure
//! regression floor: fail when the current rate drops below
//! `baseline / THRESHOLD`. The baseline records the
//! `COLT_SCALE`/`COLT_SEED` it was measured at; the gate refuses to
//! compare across workload shapes (exit 2).

use colt_bench::{build_data, scale, seed};
use colt_catalog::{ColRef, PhysicalConfig};
use std::collections::BTreeSet;
use colt_engine::{IndexSetView, Optimizer, Query};
use colt_workload::presets;
use std::process::ExitCode;

/// Trials per measurement; the maximum derivation rate is used.
const TRIALS: usize = 3;
/// Repeated planning rounds over the workload within one trial.
const ROUNDS: usize = 64;
/// Gate threshold: fail when current rate is below baseline ÷ this.
const THRESHOLD: f64 = 1.5;

fn default_baseline_path() -> String {
    format!("{}/baselines/opt_baseline.json", env!("CARGO_MANIFEST_DIR"))
}

/// One measured trial: (plans derived in the timed region, wall secs).
fn measure_once(data: &colt_workload::TpchData, work: &[(Query, BTreeSet<ColRef>)]) -> (u64, f64) {
    let config = PhysicalConfig::new();
    let opt = Optimizer::new(&data.db);
    let no_minus: BTreeSet<ColRef> = BTreeSet::new();
    // One untimed warm round so the timed region measures steady-state
    // planning, not first-touch cache effects in the catalog.
    for (q, cands) in work {
        std::hint::black_box(opt.optimize(q, IndexSetView::real(&config)));
        std::hint::black_box(opt.optimize(q, IndexSetView::hypothetical(&config, cands, &no_minus)));
    }
    let mut derivations = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        for (q, cands) in work {
            std::hint::black_box(opt.optimize(q, IndexSetView::real(&config)));
            std::hint::black_box(
                opt.optimize(q, IndexSetView::hypothetical(&config, cands, &no_minus)),
            );
            derivations += 2;
        }
    }
    (derivations, start.elapsed().as_secs_f64())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(default_baseline_path);

    let data = build_data();
    let preset = presets::shifting(&data, seed());
    let work: Vec<(Query, BTreeSet<ColRef>)> = preset
        .queries
        .iter()
        .map(|q| (q.clone(), q.candidate_columns().into_iter().collect()))
        .collect();

    let mut best_rate = 0.0f64;
    let mut derivations = 0u64;
    for trial in 0..TRIALS {
        let (n, secs) = measure_once(&data, &work);
        let rate = n as f64 / secs.max(1e-9);
        println!("  trial {}: {n} plans in {:.3} s = {:.0} plans/s", trial + 1, secs, rate);
        best_rate = best_rate.max(rate);
        derivations = n;
    }
    println!(
        "# Optimizer throughput: best of {TRIALS} trials = {best_rate:.0} plan derivations/s \
         over {derivations} plans (scale {}, seed {})",
        scale(),
        seed()
    );

    if write {
        let json = colt_core::json::Json::obj(vec![
            ("scale", colt_core::json::Json::Float(scale())),
            ("seed", colt_core::json::Json::UInt(seed())),
            ("plans", colt_core::json::Json::UInt(derivations)),
            ("rounds", colt_core::json::Json::UInt(ROUNDS as u64)),
            ("plan_derivations_per_sec", colt_core::json::Json::Float(best_rate)),
        ])
        .pretty();
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let raw = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: no baseline at {baseline_path} ({e}); run with --write-baseline first"
            );
            return ExitCode::from(2);
        }
    };
    let base = match colt_core::json::parse(&raw) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let base_f = |key: &str| -> Option<f64> {
        match base.get(key) {
            Some(colt_core::json::Json::Float(f)) => Some(*f),
            Some(colt_core::json::Json::UInt(u)) => Some(*u as f64),
            Some(colt_core::json::Json::Int(i)) => Some(*i as f64),
            _ => None,
        }
    };
    let (Some(base_scale), Some(base_seed), Some(base_rate)) =
        (base_f("scale"), base_f("seed"), base_f("plan_derivations_per_sec"))
    else {
        eprintln!("error: baseline {baseline_path} is missing scale/seed/plan_derivations_per_sec");
        return ExitCode::from(2);
    };
    if (base_scale - scale()).abs() > 1e-12 || (base_seed - seed() as f64).abs() > 1e-12 {
        eprintln!(
            "error: baseline was measured at COLT_SCALE={base_scale} COLT_SEED={base_seed}, \
             current run is scale {} seed {}; pin them or refresh with --write-baseline",
            scale(),
            seed()
        );
        return ExitCode::from(2);
    }

    let floor = base_rate / THRESHOLD;
    println!("  baseline {base_rate:.0} plans/s, floor = baseline/{THRESHOLD} = {floor:.0} plans/s");
    if best_rate < floor {
        println!(
            "FAIL: optimizer throughput {best_rate:.0} plans/s regressed below 1/{THRESHOLD} \
             of the baseline ({base_rate:.0} plans/s)"
        );
        ExitCode::FAILURE
    } else {
        println!("OK: optimizer sustains {:.2}x the baseline rate", best_rate / base_rate.max(1e-9));
        ExitCode::SUCCESS
    }
}
