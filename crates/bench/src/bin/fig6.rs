//! Figure 6 of the paper: COLT under a **noisy** workload.
//!
//! A fixed distribution `Q1` with bursts of queries from a disjoint
//! distribution `Q2` (20% of the workload). OFFLINE is tuned solely on
//! `Q1` (it ignores noise); the metric is the ratio of COLT's execution
//! time to OFFLINE's, excluding the first 100 queries. The paper's
//! findings:
//!
//! * short bursts (≤ ~20 queries) are ignored → ratio ≈ 1;
//! * long bursts (≥ ~70) get their indices materialized early enough to
//!   pay off → ratio ≈ 1;
//! * a worst-case band at 30–60 queries (≈ the forecast window) where
//!   COLT materializes indices that stop being useful → average ~18%
//!   loss.

use colt_bench::{build_data, seed};
use colt_core::ColtConfig;
use colt_harness::{run_colt, run_offline, time_ratio};
use colt_workload::presets;

fn main() {
    let data = build_data();
    println!("# Figure 6 — Performance ratio COLT/OFFLINE vs noise-burst duration");
    println!();
    println!("  burst  total  bursts  ratio   bar (1.0 = parity)");

    let mut ratios = Vec::new();
    for burst in [20usize, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 140] {
        let (preset, plan) = presets::noisy(&data, burst, seed());
        let q1_only: Vec<_> = preset
            .queries
            .iter()
            .enumerate()
            .filter(|(i, _)| !plan.is_noise(*i))
            .map(|(_, q)| q.clone())
            .collect();
        // OFFLINE tunes on Q1 alone, then runs the full noisy stream.
        let offline = run_offline(&data.db, &preset.queries, &q1_only, preset.budget_pages);
        let colt = run_colt(
            &data.db,
            &preset.queries,
            ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() },
        );
        let ratio = time_ratio(&colt, &offline, plan.warmup);
        ratios.push((burst, ratio));
        let bar_len = (ratio * 40.0).round() as usize;
        println!(
            "  {burst:>5}  {:>5}  {:>6}  {ratio:>5.3}  {}|",
            plan.total,
            plan.burst_starts.len(),
            "=".repeat(bar_len),
        );
    }

    println!();
    println!("## Analysis (paper: ≈1 at short and long bursts, dip of ~18% at 30–60)");
    let at = |b: usize| ratios.iter().find(|(x, _)| *x == b).unwrap().1;
    let short = (at(20) + at(30) + at(40)) / 3.0;
    let long = (at(120) + at(140)) / 2.0;
    let dip = ratios.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
    let dip_at = ratios.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    println!("  mean ratio at short bursts (20–40):  {short:.3}");
    println!("  worst ratio:                         {dip:.3} at burst {dip_at}");
    println!("  mean ratio at long bursts (120–140): {long:.3}");
    println!();
    println!("  The dip sits where the burst length is comparable to the");
    println!("  forecast window (h·w = 120 queries), the mechanism the paper");
    println!("  describes; our stabilized (window-averaged) forecast shifts it");
    println!("  toward the right edge of the paper's 30–60 band.");
}
