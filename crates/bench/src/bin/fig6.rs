//! Figure 6 of the paper: COLT under a **noisy** workload.
//!
//! A fixed distribution `Q1` with bursts of queries from a disjoint
//! distribution `Q2` (20% of the workload). OFFLINE is tuned solely on
//! `Q1` (it ignores noise); the metric is the ratio of COLT's execution
//! time to OFFLINE's, excluding the first 100 queries. The paper's
//! findings:
//!
//! * short bursts (≤ ~20 queries) are ignored → ratio ≈ 1;
//! * long bursts (≥ ~70) get their indices materialized early enough to
//!   pay off → ratio ≈ 1;
//! * a worst-case band at 30–60 queries (≈ the forecast window) where
//!   COLT materializes indices that stop being useful → average ~18%
//!   loss.
//!
//! Each burst duration contributes two independent run cells (OFFLINE
//! and COLT), all fanned across the parallel harness.

use colt_bench::{build_data, dump_obs, seed, threads};
use colt_core::ColtConfig;
use colt_harness::{emit_parallel_summary, run_cells, time_ratio, Cell, Policy};
use colt_workload::presets;

const BURSTS: [usize; 12] = [20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 140];

fn main() {
    let data = build_data();
    println!("# Figure 6 — Performance ratio COLT/OFFLINE vs noise-burst duration");
    println!();
    println!("  burst  total  bursts  ratio   bar (1.0 = parity)");

    let setups: Vec<_> = BURSTS
        .iter()
        .map(|&burst| {
            let (preset, plan) = presets::noisy(&data, burst, seed());
            // OFFLINE tunes on Q1 alone, then runs the full noisy stream.
            let q1_only: Vec<_> = preset
                .queries
                .iter()
                .enumerate()
                .filter(|(i, _)| !plan.is_noise(*i))
                .map(|(_, q)| q.clone())
                .collect();
            (burst, preset, plan, q1_only)
        })
        .collect();
    let cells: Vec<Cell<'_>> = setups
        .iter()
        .flat_map(|(burst, preset, _, q1_only)| {
            [
                Cell::new(
                    format!("OFFLINE burst={burst}"),
                    &data.db,
                    &preset.queries,
                    Policy::Offline { budget_pages: preset.budget_pages },
                )
                .analyzed(q1_only),
                Cell::new(
                    format!("COLT burst={burst}"),
                    &data.db,
                    &preset.queries,
                    Policy::colt(ColtConfig {
                        storage_budget_pages: preset.budget_pages,
                        ..Default::default()
                    }),
                ),
            ]
        })
        .collect();
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Figure 6 cells", &report);
    dump_obs(&report);

    let mut ratios = Vec::new();
    for (i, (burst, _, plan, _)) in setups.iter().enumerate() {
        let offline = &report.cells[2 * i].result;
        let colt = &report.cells[2 * i + 1].result;
        let ratio = time_ratio(colt, offline, plan.warmup);
        ratios.push((*burst, ratio));
        let bar_len = (ratio * 40.0).round() as usize;
        println!(
            "  {burst:>5}  {:>5}  {:>6}  {ratio:>5.3}  {}|",
            plan.total,
            plan.burst_starts.len(),
            "=".repeat(bar_len),
        );
    }

    println!();
    println!("## Analysis (paper: ≈1 at short and long bursts, dip of ~18% at 30–60)");
    let at = |b: usize| ratios.iter().find(|(x, _)| *x == b).unwrap().1;
    let short = (at(20) + at(30) + at(40)) / 3.0;
    let long = (at(120) + at(140)) / 2.0;
    let dip = ratios.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
    let dip_at = ratios.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    println!("  mean ratio at short bursts (20–40):  {short:.3}");
    println!("  worst ratio:                         {dip:.3} at burst {dip_at}");
    println!("  mean ratio at long bursts (120–140): {long:.3}");
    println!();
    println!("  The dip sits where the burst length is comparable to the");
    println!("  forecast window (h·w = 120 queries), the mechanism the paper");
    println!("  describes; our stabilized (window-averaged) forecast shifts it");
    println!("  toward the right edge of the paper's 30–60 band.");
}
