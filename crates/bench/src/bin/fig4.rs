//! Figure 4 of the paper: on-line tuning for a **shifting** workload.
//!
//! Four 300-query phases over different query distributions with
//! 50-query gradual transitions (1350 queries). OFFLINE tunes once for
//! the whole workload; COLT re-tunes per phase. The paper's findings:
//!
//! * COLT outperforms OFFLINE for the majority of the stream;
//! * in phase 2 (queries 350–650) COLT is ~49% faster;
//! * over the whole workload COLT is ~33% faster.

use colt_bench::{build_data, dump_obs, fmt_ms, seed, threads};
use colt_core::ColtConfig;
use colt_harness::{
    bucket_rows, emit_parallel_summary, render_buckets, run_cells, Cell, Policy,
};
use colt_workload::presets;

fn main() {
    let data = build_data();
    let preset = presets::shifting(&data, seed());
    println!(
        "# Figure 4 — Shifting workload ({} queries, 4 phases, {} relevant indices, budget {} pages)",
        preset.queries.len(),
        preset.relevant.len(),
        preset.budget_pages
    );

    let cells = [
        Cell::new(
            "OFFLINE",
            &data.db,
            &preset.queries,
            Policy::Offline { budget_pages: preset.budget_pages },
        ),
        Cell::new(
            "COLT",
            &data.db,
            &preset.queries,
            Policy::colt(ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() }),
        ),
    ];
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Figure 4 cells", &report);
    dump_obs(&report);
    let offline = report.get("OFFLINE").expect("offline cell");
    let colt = report.get("COLT").expect("colt cell");

    let rows = bucket_rows(colt, offline, 50);
    println!("{}", render_buckets("Execution time per 50-query bucket", &rows));

    println!("## Phase breakdown (paper: phase 2 ≈ 49% shorter, overall ≈ 33% shorter)");
    let spans = [
        ("phase 1 (0..300)", 0..300),
        ("phase 2 (350..650)", 350..650),
        ("phase 3 (700..1000)", 700..1000),
        ("phase 4 (1050..1350)", 1050..1350),
        ("overall (0..1350)", 0..preset.queries.len()),
    ];
    for (label, span) in spans {
        let c = colt.range_millis(span.clone());
        let o = offline.range_millis(span);
        let red = (1.0 - c / o) * 100.0;
        println!(
            "  {label:<22} COLT {:>12} OFFLINE {:>12}  reduction {red:+.1}%",
            fmt_ms(c),
            fmt_ms(o)
        );
    }
    println!(
        "  COLT built {} indices and dropped {} over the run",
        colt.trace.total_builds(),
        colt.trace.epochs.iter().map(|e| e.dropped.len()).sum::<usize>(),
    );
    println!("## Adaptation (paper: \"adapts rapidly to shifts\")");
    let bounds = colt_workload::phase_boundaries(4, 300, 50);
    for (i, &shift) in bounds.iter().enumerate() {
        let until = bounds.get(i + 1).copied().unwrap_or(preset.queries.len());
        match colt_harness::adaptation_latency(colt, shift, until, 20, 0.15) {
            Some(lat) => println!(
                "  after transition {} (query {shift}): settled within ~{lat} queries",
                i + 1
            ),
            None => println!("  after transition {} (query {shift}): did not settle", i + 1),
        }
    }
}
