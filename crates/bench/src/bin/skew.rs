//! Extension experiment: estimation robustness under data skew.
//!
//! A Zipf-distributed column breaks the uniform-within-distinct
//! assumption: the hot value matches thousands of rows (an index scan
//! would thrash), cold values match a handful (a sequential scan wastes
//! the table). With most-common-value statistics the optimizer picks
//! the right path *per constant*, and COLT's measured gains stay
//! calibrated — the tuner still converges to the off-line optimum.

use colt_bench::{dump_obs, fmt_ms, seed, threads};
use colt_catalog::{ColRef, Column, Database, IndexOrigin, PhysicalConfig, TableSchema};
use colt_core::ColtConfig;
use colt_engine::{Collect, Executor, IndexSetView, Optimizer, Query, SelPred};
use colt_harness::{emit_parallel_summary, run_cells, Cell, Policy};
use colt_storage::{row_from, Prng, Value, ValueType};
use colt_workload::gen::ColumnGen;

fn main() {
    // 60k-row table; `kind` is Zipf(1.0) over 500 distinct values.
    let mut db = Database::new();
    let t = db.add_table(TableSchema::new(
        "events",
        vec![Column::new("id", ValueType::Int), Column::new("kind", ValueType::Int)],
    ));
    let zipf = ColumnGen::Zipf { n: 500, s: 1.0 };
    let mut rng = Prng::new(seed());
    db.insert_rows(
        t,
        (0..60_000u64).map(|i| row_from(vec![Value::Int(i as i64), zipf.generate(i, 60_000, &mut rng)])),
    );
    db.analyze_all();
    let kind = ColRef::new(t, 1);
    let stats = db.table(t).column_stats(1);
    println!("# Extension — estimation robustness under Zipf skew");
    println!(
        "  events.kind: {} distinct, hottest value covers {:.1}% of rows, {} MCVs tracked",
        stats.n_distinct,
        stats.mcvs.first().map(|(_, f)| f * 100.0).unwrap_or(0.0),
        stats.mcvs.len()
    );

    // Per-constant plan choice with the index materialized.
    let mut cfg = PhysicalConfig::new();
    cfg.create_index(&db, kind, IndexOrigin::Online);
    let opt = Optimizer::new(&db);
    println!();
    println!("  per-constant access-path choice (index on kind materialized):");
    for probe in [0i64, 2, 50, 400] {
        let q = Query::single(t, vec![SelPred::eq(kind, probe)]);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res =
            Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).expect("plan matches query");
        let path = if plan.used_indices().is_empty() { "SeqScan " } else { "IndexScan" };
        println!(
            "    kind = {probe:>3}: {path}  ({} rows, {:.1} simulated ms)",
            res.row_count(), res.millis()
        );
    }

    // COLT on a Zipf-sampled eq workload.
    let workload: Vec<Query> = (0..400)
        .map(|i| {
            let v = zipf.generate(i, 400, &mut rng);
            Query::single(t, vec![SelPred::eq(kind, match v { Value::Int(x) => x, _ => 0 })])
        })
        .collect();
    let budget = db.index_estimate(kind).pages + 16;
    let cells = [
        Cell::new("OFFLINE", &db, &workload, Policy::Offline { budget_pages: budget }),
        Cell::new(
            "COLT",
            &db,
            &workload,
            Policy::colt(ColtConfig { storage_budget_pages: budget, ..Default::default() }),
        ),
    ];
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Skew cells", &report);
    dump_obs(&report);
    let offline = report.get("OFFLINE").expect("offline cell");
    let colt = report.get("COLT").expect("colt cell");
    println!();
    println!("  COLT vs OFFLINE on 400 Zipf-sampled equality queries:");
    println!("    OFFLINE {:>10}", fmt_ms(offline.total_millis()));
    println!("    COLT    {:>10}  ({:+.1}%)", fmt_ms(colt.total_millis()),
        (colt.total_millis() / offline.total_millis() - 1.0) * 100.0);
    let tail = 100..workload.len();
    println!(
        "    post-convergence deviation: {:+.1}%",
        (colt.range_millis(tail.clone()) / offline.range_millis(tail) - 1.0) * 100.0
    );
}
