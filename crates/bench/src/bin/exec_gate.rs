//! Executor throughput regression gate (PR 7 tentpole).
//!
//! The vectorized batch executor exists to make query execution fast;
//! this gate keeps it that way. Four microbenches exercise the operator
//! surface over the generated TPC-H data — a full materializing scan, a
//! selective filter, a hash join, and a grouped aggregation — and each
//! one's tuple throughput (tuples examined per wall-clock second, best
//! of `TRIALS` trials) is compared against the checked-in row-at-a-time
//! baseline:
//!
//! ```text
//! exec_gate                    # gate: exit 1 if geomean < 1.5x baseline
//! exec_gate --write-baseline   # refresh the baseline file
//! exec_gate --baseline <path>  # non-default baseline location
//! ```
//!
//! Like `whatif_gate` this is a *floor*: `--write-baseline` measures the
//! in-tree [`RowwiseExecutor`] reference (the pre-vectorization
//! execution model, kept for differential testing), so the baseline can
//! be refreshed on any machine and the gate always compares the
//! vectorized executor against the same row-at-a-time semantics it
//! replaced. It fails when the geometric-mean speedup across the four
//! microbenches drops below `THRESHOLD`. The baseline records the
//! `COLT_SCALE`/`COLT_SEED` it was measured at; the gate refuses to
//! compare across workload shapes (exit 2).

use colt_bench::{build_data, scale, seed};
use colt_catalog::PhysicalConfig;
use colt_core::json::Json;
use colt_engine::{
    AggExpr, AggFunc, AggSpec, Collect, Executor, IndexSetView, JoinPred, Optimizer, Plan, Query,
    RowwiseExecutor, SelPred,
};
use std::process::ExitCode;

/// Trials per workload; the maximum rate is used.
const TRIALS: usize = 3;
/// Each trial repeats its query until at least this much wall time has
/// been measured, so rates stay stable across scales and machines.
const MIN_TRIAL_SECS: f64 = 0.05;
/// Gate threshold: fail when the geometric-mean speedup over the
/// row-at-a-time baseline drops below this.
const THRESHOLD: f64 = 1.5;

fn default_baseline_path() -> String {
    format!("{}/baselines/exec_baseline.json", env!("CARGO_MANIFEST_DIR"))
}

/// One microbench: a planned query plus how to consume its result.
struct Workload {
    name: &'static str,
    query: Query,
    plan: Plan,
    collect: Collect,
    agg: Option<AggSpec>,
}

/// The four operator-surface microbenches, planned once against an
/// index-free configuration (seq scans + hash joins — the paths whose
/// inner loops the vectorized executor rewrote). Scan, filter, and join
/// consume count-only, which is how every harness run consumes results
/// (the paper's workloads are `SELECT *` queries whose results are
/// counted) and where the executor's late materialization pays off;
/// aggregation consumes every value column-at-a-time.
fn workloads(data: &colt_workload::TpchData) -> Vec<Workload> {
    let db = &data.db;
    let inst = &data.instances[0];
    let lineitem = inst.table("lineitem");
    let orders = inst.table("orders");
    let l_quantity = inst.col(db, "lineitem", "l_quantity");
    let l_orderkey = inst.col(db, "lineitem", "l_orderkey");
    let l_extendedprice = inst.col(db, "lineitem", "l_extendedprice");
    let l_returnflag = inst.col(db, "lineitem", "l_returnflag");
    let o_orderkey = inst.col(db, "orders", "o_orderkey");
    let o_orderpriority = inst.col(db, "orders", "o_orderpriority");

    let config = PhysicalConfig::new();
    let opt = Optimizer::new(db);
    let plan_of = |q: &Query| opt.optimize(q, IndexSetView::real(&config));

    let scan = Query::single(lineitem, vec![SelPred::ge(l_quantity, 1)]);
    let filter = Query::single(lineitem, vec![SelPred::le(l_quantity, 10)]);
    let join = Query::join(
        vec![orders, lineitem],
        vec![JoinPred::new(o_orderkey, l_orderkey)],
        vec![SelPred::eq(o_orderpriority, 0)],
    );
    let agg = Query::single(lineitem, Vec::new());
    let agg_spec = AggSpec {
        group_by: vec![l_returnflag],
        exprs: vec![
            AggExpr::count_star(),
            AggExpr::over(AggFunc::Sum, l_extendedprice),
            AggExpr::over(AggFunc::Avg, l_quantity),
        ],
    };

    vec![
        Workload {
            plan: plan_of(&scan),
            query: scan,
            name: "scan",
            collect: Collect::CountOnly,
            agg: None,
        },
        Workload {
            plan: plan_of(&filter),
            query: filter,
            name: "filter",
            collect: Collect::CountOnly,
            agg: None,
        },
        Workload {
            plan: plan_of(&join),
            query: join,
            name: "join",
            collect: Collect::CountOnly,
            agg: None,
        },
        Workload {
            plan: plan_of(&agg),
            query: agg,
            name: "aggregate",
            collect: Collect::CountOnly,
            agg: Some(agg_spec),
        },
    ]
}

/// Which execution model a measurement runs.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Vectorized,
    Rowwise,
}

/// Execute the workload once, returning the tuples the operators
/// examined (identical between engines — charge parity is what the
/// differential tests enforce — so rates divide cleanly).
fn run_once(data: &colt_workload::TpchData, config: &PhysicalConfig, w: &Workload, engine: Engine) -> u64 {
    match engine {
        Engine::Vectorized => {
            let exec = Executor::new(&data.db, config);
            match &w.agg {
                Some(spec) => {
                    exec.execute_aggregate(&w.query, &w.plan, spec).expect("plan matches query").0
                }
                None => {
                    exec.execute(&w.query, &w.plan, w.collect).expect("plan matches query").result
                }
            }
            .io
            .tuples
        }
        Engine::Rowwise => {
            let exec = RowwiseExecutor::new(&data.db, config);
            match &w.agg {
                Some(spec) => {
                    exec.execute_aggregate(&w.query, &w.plan, spec).expect("plan matches query").0
                }
                None => {
                    exec.execute(&w.query, &w.plan, w.collect).expect("plan matches query").result
                }
            }
            .io
            .tuples
        }
    }
}

/// Best-of-`TRIALS` tuple throughput for one workload.
fn measure(data: &colt_workload::TpchData, w: &Workload, engine: Engine) -> f64 {
    let config = PhysicalConfig::new();
    // Untimed warm run: page cache effects and lazy allocations settle.
    run_once(data, &config, w, engine);
    let mut best = 0.0f64;
    for _ in 0..TRIALS {
        let start = std::time::Instant::now();
        let mut tuples = 0u64;
        let mut reps = 0u64;
        while start.elapsed().as_secs_f64() < MIN_TRIAL_SECS || reps < 3 {
            tuples += run_once(data, &config, w, engine);
            reps += 1;
        }
        best = best.max(tuples as f64 / start.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(default_baseline_path);

    let data = build_data();
    let workloads = workloads(&data);
    let engine = if write { Engine::Rowwise } else { Engine::Vectorized };
    let label = if write { "row-at-a-time" } else { "vectorized" };

    let mut rates: Vec<(&'static str, f64)> = Vec::new();
    for w in &workloads {
        let rate = measure(&data, w, engine);
        println!("  {label} {:<9} {:>12.0} tuples/s (best of {TRIALS})", w.name, rate);
        rates.push((w.name, rate));
    }
    println!("# Executor throughput ({label}, scale {}, seed {})", scale(), seed());

    if write {
        let json = Json::obj(vec![
            ("scale", Json::Float(scale())),
            ("seed", Json::UInt(seed())),
            (
                "tuples_per_sec",
                Json::obj(rates.iter().map(|(n, r)| (*n, Json::Float(*r))).collect()),
            ),
        ])
        .pretty();
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let raw = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: no baseline at {baseline_path} ({e}); run with --write-baseline first"
            );
            return ExitCode::from(2);
        }
    };
    let base = match colt_core::json::parse(&raw) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let as_f = |j: &Json| -> Option<f64> {
        match j {
            Json::Float(f) => Some(*f),
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    };
    let Some(base_scale) = base.get("scale").and_then(&as_f) else {
        eprintln!("error: baseline {baseline_path} is missing scale");
        return ExitCode::from(2);
    };
    if (base_scale - scale()).abs() > 1e-12 {
        eprintln!(
            "error: baseline was measured at COLT_SCALE={base_scale}, current run is {}; \
             pin COLT_SCALE or refresh with --write-baseline",
            scale()
        );
        return ExitCode::from(2);
    }

    let mut ln_sum = 0.0f64;
    for (name, rate) in &rates {
        let Some(base_rate) =
            base.get("tuples_per_sec").and_then(|t| t.get(name)).and_then(&as_f)
        else {
            eprintln!("error: baseline {baseline_path} is missing tuples_per_sec.{name}");
            return ExitCode::from(2);
        };
        let ratio = rate / base_rate.max(1e-9);
        println!("  {name:<9} {ratio:>6.2}x row-at-a-time ({base_rate:.0} tuples/s baseline)");
        ln_sum += ratio.ln();
    }
    let geomean = (ln_sum / rates.len() as f64).exp();
    println!("  geometric mean speedup: {geomean:.2}x (floor {THRESHOLD}x)");
    if geomean < THRESHOLD {
        println!(
            "FAIL: vectorized executor throughput is {geomean:.2}x the row-at-a-time baseline, below the {THRESHOLD}x floor"
        );
        ExitCode::FAILURE
    } else {
        println!("OK: vectorized executor sustains {geomean:.2}x row-at-a-time throughput");
        ExitCode::SUCCESS
    }
}
