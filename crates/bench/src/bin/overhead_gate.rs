//! Tuner-overhead regression gate (ROADMAP item).
//!
//! Runs the Figure 5 shifting workload once per trial with span
//! recording forced on, computes `Trace::overhead_summary`'s
//! `tuner_wall_ms` (profiling + epoch-boundary work, real wall-clock)
//! per query, and compares the best of `TRIALS` trials against the
//! checked-in baseline:
//!
//! ```text
//! overhead_gate                    # gate: exit 1 if > 1.5× baseline
//! overhead_gate --write-baseline   # refresh the baseline file
//! overhead_gate --baseline <path>  # non-default baseline location
//! ```
//!
//! The baseline records the `COLT_SCALE`/`COLT_SEED` it was measured at;
//! the gate refuses to compare across different workload shapes (exit
//! 2). Taking the minimum over trials keeps scheduler noise out of the
//! numerator; the 1.5× margin absorbs what remains.

use colt_bench::{build_data, scale, seed};
use colt_core::json::Json;
use colt_core::ColtConfig;
use colt_harness::{Experiment, Policy};
use colt_workload::presets;
use std::process::ExitCode;

/// Trials per measurement; the minimum wall time is used.
const TRIALS: usize = 3;
/// Gate threshold: fail when current exceeds baseline by this factor.
const THRESHOLD: f64 = 1.5;

fn default_baseline_path() -> String {
    format!("{}/baselines/overhead_baseline.json", env!("CARGO_MANIFEST_DIR"))
}

/// One measured run: (tuner wall ms, query count).
fn measure_once(data: &colt_workload::TpchData) -> (f64, usize) {
    let preset = presets::shifting(data, seed());
    let cfg = ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() };
    // Force span recording regardless of COLT_OBS: Experiment::run
    // inherits the level of a pre-installed recorder. The environment
    // can still raise the level (CI runs the gate with COLT_OBS=full to
    // assert the flight recorder's overhead stays inside the floor).
    let level = colt_obs::Level::from_env().max(colt_obs::Level::Summary);
    let prev = colt_obs::install(colt_obs::Recorder::new(level));
    let result = Experiment::new(&data.db, &preset.queries).policy(Policy::colt(cfg)).run().expect("run failed");
    match prev {
        Some(r) => {
            colt_obs::install(r);
        }
        None => {
            colt_obs::take();
        }
    }
    let summary = result.trace.overhead_summary(&result.obs);
    let wall = match summary.get("tuner_wall_ms") {
        Some(Json::Float(f)) => *f,
        _ => 0.0,
    };
    (wall, preset.queries.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(default_baseline_path);

    let data = build_data();
    let mut best_wall = f64::INFINITY;
    let mut queries = 0usize;
    for trial in 0..TRIALS {
        let (wall, n) = measure_once(&data);
        println!("  trial {}: tuner wall {:.2} ms over {} queries", trial + 1, wall, n);
        best_wall = best_wall.min(wall);
        queries = n;
    }
    let per_query = best_wall / queries.max(1) as f64;
    println!(
        "# Tuner overhead: best of {TRIALS} trials = {best_wall:.2} ms / {queries} queries = {:.4} ms/query (scale {}, seed {})",
        per_query,
        scale(),
        seed()
    );

    if write {
        let json = Json::obj(vec![
            ("scale", Json::Float(scale())),
            ("seed", Json::UInt(seed())),
            ("queries", Json::UInt(queries as u64)),
            ("tuner_wall_ms", Json::Float(best_wall)),
            ("tuner_wall_ms_per_query", Json::Float(per_query)),
        ])
        .pretty();
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let raw = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: no baseline at {baseline_path} ({e}); run with --write-baseline first"
            );
            return ExitCode::from(2);
        }
    };
    let base = match colt_core::json::parse(&raw) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let base_f = |key: &str| -> Option<f64> {
        match base.get(key) {
            Some(Json::Float(f)) => Some(*f),
            Some(Json::UInt(u)) => Some(*u as f64),
            Some(Json::Int(i)) => Some(*i as f64),
            _ => None,
        }
    };
    let (Some(base_scale), Some(base_per_query)) =
        (base_f("scale"), base_f("tuner_wall_ms_per_query"))
    else {
        eprintln!("error: baseline {baseline_path} is missing scale/tuner_wall_ms_per_query");
        return ExitCode::from(2);
    };
    if (base_scale - scale()).abs() > 1e-12 {
        eprintln!(
            "error: baseline was measured at COLT_SCALE={base_scale}, current run is {}; \
             pin COLT_SCALE or refresh with --write-baseline",
            scale()
        );
        return ExitCode::from(2);
    }

    let limit = base_per_query * THRESHOLD;
    println!(
        "  baseline {:.4} ms/query, limit {THRESHOLD}x = {:.4} ms/query",
        base_per_query, limit
    );
    if per_query > limit {
        println!(
            "FAIL: tuner overhead {per_query:.4} ms/query exceeds {THRESHOLD}x baseline ({base_per_query:.4} ms/query)"
        );
        ExitCode::FAILURE
    } else {
        println!("OK: tuner overhead within budget");
        ExitCode::SUCCESS
    }
}
