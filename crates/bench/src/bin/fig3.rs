//! Figure 3 of the paper: on-line tuning for a **stable** workload.
//!
//! 500 queries from a fixed distribution with 18 relevant indices; the
//! budget fits 3–6 of them. The paper's findings this bench checks:
//!
//! * during the first ~100 queries COLT pays for monitoring and index
//!   creation;
//! * afterwards COLT's execution time is essentially equal to the ideal
//!   OFFLINE technique (the paper reports a ~1% deviation).

use colt_bench::{build_data, dump_obs, fmt_ms, seed, threads};
use colt_core::ColtConfig;
use colt_harness::{
    bucket_rows, emit_breakdown, emit_parallel_summary, render_buckets, run_cells, Cell, Policy,
};
use colt_workload::presets;

fn main() {
    let data = build_data();
    let preset = presets::stable(&data, seed());
    println!(
        "# Figure 3 — Stable workload ({} queries, {} relevant indices, budget {} pages)",
        preset.queries.len(),
        preset.relevant.len(),
        preset.budget_pages
    );

    let cells = [
        Cell::new(
            "OFFLINE",
            &data.db,
            &preset.queries,
            Policy::Offline { budget_pages: preset.budget_pages },
        ),
        Cell::new(
            "COLT",
            &data.db,
            &preset.queries,
            Policy::colt(ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() }),
        ),
    ];
    let report = run_cells(&cells, threads()).expect("run failed");
    emit_parallel_summary("Figure 3 cells", &report);
    let offline = report.get("OFFLINE").expect("offline cell");
    let colt = report.get("COLT").expect("colt cell");
    emit_breakdown("OFFLINE", offline);
    emit_breakdown("COLT", colt);
    dump_obs(&report);

    let rows = bucket_rows(colt, offline, 50);
    println!("{}", render_buckets("Execution time per 50-query bucket", &rows));

    // Convergence metrics (paper: ≤ ~1% deviation after query 100).
    let tail = 100..preset.queries.len();
    let colt_tail = colt.range_millis(tail.clone());
    let off_tail = offline.range_millis(tail);
    let deviation = (colt_tail / off_tail - 1.0) * 100.0;
    println!("## Convergence");
    println!(
        "  first 100 queries: COLT {} vs OFFLINE {} (start-up: monitoring + builds)",
        fmt_ms(colt.range_millis(0..100)),
        fmt_ms(offline.range_millis(0..100)),
    );
    println!(
        "  queries 100..{}: COLT {} vs OFFLINE {} → deviation {deviation:+.1}% (paper: ~1%)",
        preset.queries.len(),
        fmt_ms(colt_tail),
        fmt_ms(off_tail),
    );
    println!(
        "  OFFLINE selected {:?} ({} indices); COLT ended with {:?}",
        offline.offline.as_ref().map(|s| s.indices.len()),
        offline.final_indices.len(),
        colt.final_indices.len(),
    );
    println!("  index builds by COLT: {}", colt.trace.total_builds());
    match colt_harness::convergence_point(colt, offline, 20, 0.10) {
        Some(p) => println!(
            "  convergence: within 10% of OFFLINE from query ~{p} onward (paper: ~100)"
        ),
        None => println!("  convergence: not reached within the run"),
    }
    println!(
        "  mean what-if budget utilization: {:.1}%",
        100.0 * colt_harness::budget_utilization(colt, 20)
    );
    println!("## Summary (COLT)");
    println!("{}", colt.summary_json());
}
