//! Table 1 of the paper: data set characteristics.
//!
//! Prints the characteristics at the paper's scale (1.0) next to the
//! experiment scale actually used by the figure benches, and verifies
//! the generated database matches the declared summary at the
//! experiment scale.

use colt_bench::{build_data, scale};
use colt_workload::summary;

fn main() {
    let paper = summary(1.0);
    let ours = summary(scale());

    println!("# Table 1 — Data Set Characteristics");
    println!();
    println!("  {:<28} {:>15} {:>15}", "", "paper scale", format!("scale {}", scale()));
    println!("  {:<28} {:>15} {:>15}", "Size (binary data)", gb(paper.bytes), gb(ours.bytes));
    println!("  {:<28} {:>15} {:>15}", "# Tables", paper.tables, ours.tables);
    println!("  {:<28} {:>15} {:>15}", "# Tuples in all tables", paper.total_tuples, ours.total_tuples);
    println!("  {:<28} {:>15} {:>15}", "# Tuples in largest table", paper.largest, ours.largest);
    println!("  {:<28} {:>15} {:>15}", "# Tuples in smallest table", paper.smallest, ours.smallest);
    println!("  {:<28} {:>15} {:>15}", "# Indexable attributes", paper.attributes, ours.attributes);
    println!();
    println!("  (paper reports: 1.4 GB, 32 tables, 6,928,120 tuples, largest");
    println!("   1,200,000, smallest 5, 244 indexable attributes)");

    // Cross-check the generator against the declared summary.
    let data = build_data();
    assert_eq!(data.db.table_count(), ours.tables);
    assert_eq!(data.db.total_tuples(), ours.total_tuples);
    assert_eq!(data.db.indexable_attributes(), ours.attributes);
    let largest = data.db.tables().iter().map(|t| t.heap.row_count()).max().unwrap() as u64;
    let smallest = data.db.tables().iter().map(|t| t.heap.row_count()).min().unwrap() as u64;
    assert_eq!(largest, ours.largest);
    assert_eq!(smallest, ours.smallest);
    println!();
    println!("  generator cross-check at scale {}: OK", scale());
}

fn gb(bytes: u64) -> String {
    let gb = bytes as f64 / (1024.0 * 1024.0 * 1024.0);
    if gb >= 0.1 {
        format!("{gb:.2} GB")
    } else {
        format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
    }
}
