//! Micro-benchmarks of COLT's own machinery: per-query profiling
//! overhead, the knapsack solver, and hot-set selection — the costs a
//! production deployment of the tuner would care about.

use colt_bench::bench;
use colt_catalog::{ColRef, PhysicalConfig, TableId};
use colt_core::{hotset, knapsack, ColtConfig, ColtTuner};
use colt_engine::Eqo;
use colt_storage::Prng;
use colt_workload::{generate, stable_distribution};
use std::hint::black_box;

/// Full tuner step (profile + amortized reorganization) per query.
fn bench_tuner_step() {
    let data = generate(0.01, 42);
    let db = &data.db;
    let dist = stable_distribution(&data, 0);
    let mut rng = Prng::new(1);
    let queries: Vec<_> = (0..512).map(|_| dist.sample(db, &mut rng)).collect();

    let mut physical = PhysicalConfig::new();
    let mut tuner =
        ColtTuner::new(ColtConfig { storage_budget_pages: 10_000, ..Default::default() });
    let mut eqo = Eqo::new(db);
    let mut i = 0usize;
    bench("tuner/on_query_amortized", || {
        let q = &queries[i % queries.len()];
        i += 1;
        let plan = eqo.optimize(q, &physical);
        black_box(tuner.on_query(db, &mut physical, &mut eqo, q, &plan));
    });
}

fn bench_knapsack() {
    for n in [16usize, 64, 256] {
        let items: Vec<knapsack::Item> = (0..n)
            .map(|i| knapsack::Item {
                size: (i as u64 * 37 % 200) + 1,
                value: ((i * 61) % 997) as f64,
            })
            .collect();
        let capacity: u64 = items.iter().map(|it| it.size).sum::<u64>() / 4;
        bench(&format!("knapsack/solve/{n}"), || {
            black_box(knapsack::solve(&items, capacity));
        });
    }
}

fn bench_hotset() {
    for n in [32usize, 256, 2048] {
        let benefits: Vec<(ColRef, f64)> = (0..n)
            .map(|i| {
                (ColRef::new(TableId((i / 64) as u32), (i % 64) as u32), ((i * 101) % 1009) as f64)
            })
            .collect();
        bench(&format!("hotset/select/{n}"), || {
            black_box(hotset::select_hot(&benefits, 10));
        });
    }
}

fn main() {
    println!("# tuner micro-benchmarks");
    bench_tuner_step();
    bench_knapsack();
    bench_hotset();
}
