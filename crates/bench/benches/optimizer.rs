//! Micro-benchmarks of the optimizer and the what-if interface —
//! the cost that COLT's profiling budget is denominated in.

use colt_bench::bench;
use colt_catalog::{ColRef, PhysicalConfig};
use colt_engine::{Eqo, IndexSetView, Optimizer, Query, SelPred};
use colt_workload::generate;
use std::hint::black_box;

fn bench_optimize() {
    let data = generate(0.01, 42);
    let db = &data.db;
    let inst = &data.instances[0];
    let cfg = PhysicalConfig::new();
    let opt = Optimizer::new(db);

    let single = Query::single(
        inst.table("lineitem"),
        vec![SelPred::between(
            inst.col(db, "lineitem", "l_shipdate"),
            colt_storage::Value::Date(100),
            colt_storage::Value::Date(130),
        )],
    );
    bench("optimizer/single_table", || {
        black_box(opt.optimize(&single, IndexSetView::real(&cfg)));
    });

    let join = Query::join(
        vec![inst.table("lineitem"), inst.table("orders"), inst.table("customer")],
        vec![
            colt_engine::JoinPred::new(
                inst.col(db, "lineitem", "l_orderkey"),
                inst.col(db, "orders", "o_orderkey"),
            ),
            colt_engine::JoinPred::new(
                inst.col(db, "orders", "o_custkey"),
                inst.col(db, "customer", "c_custkey"),
            ),
        ],
        vec![SelPred::eq(inst.col(db, "customer", "c_mktsegment"), 2i64)],
    );
    bench("optimizer/three_table_join", || {
        black_box(opt.optimize(&join, IndexSetView::real(&cfg)));
    });
}

fn bench_whatif() {
    let data = generate(0.01, 42);
    let db = &data.db;
    let inst = &data.instances[0];
    let cfg = PhysicalConfig::new();

    let q = Query::single(
        inst.table("lineitem"),
        vec![
            SelPred::eq(inst.col(db, "lineitem", "l_partkey"), 7i64),
            SelPred::eq(inst.col(db, "lineitem", "l_quantity"), 10i64),
        ],
    );
    let probes: Vec<ColRef> =
        vec![inst.col(db, "lineitem", "l_partkey"), inst.col(db, "lineitem", "l_quantity")];

    let mut eqo = Eqo::new(db);
    bench("whatif/two_probes", || {
        black_box(eqo.what_if_optimize(&q, &probes, &cfg));
    });
}

fn bench_executor() {
    use colt_catalog::IndexOrigin;
    use colt_engine::{Collect, Executor};
    let data = generate(0.01, 42);
    let db = &data.db;
    let inst = &data.instances[0];
    let col = inst.col(db, "lineitem", "l_partkey");
    let q = Query::single(inst.table("lineitem"), vec![SelPred::eq(col, 7i64)]);

    let bare = PhysicalConfig::new();
    let opt = Optimizer::new(db);
    let seq_plan = opt.optimize(&q, IndexSetView::real(&bare));
    bench("executor/seq_scan_lineitem", || {
        black_box(Executor::new(db, &bare).execute(&q, &seq_plan, Collect::CountOnly))
            .expect("plan matches query");
    });

    let mut indexed = PhysicalConfig::new();
    indexed.create_index(db, col, IndexOrigin::Online);
    let idx_plan = opt.optimize(&q, IndexSetView::real(&indexed));
    assert!(!idx_plan.used_indices().is_empty());
    bench("executor/index_scan_lineitem", || {
        black_box(Executor::new(db, &indexed).execute(&q, &idx_plan, Collect::CountOnly))
            .expect("plan matches query");
    });
}

fn main() {
    println!("# optimizer micro-benchmarks");
    bench_optimize();
    bench_whatif();
    bench_executor();
}
