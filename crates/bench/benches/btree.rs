//! Micro-benchmarks of the B+ tree substrate: bulk loads, incremental
//! inserts, point lookups, and range scans across tree sizes.

use colt_storage::{BPlusTree, IoStats, RowId, Value};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::ops::Bound;

fn entries(n: usize) -> Vec<(Value, RowId)> {
    (0..n).map(|i| (Value::Int(i as i64), RowId(i as u32))).collect()
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree/bulk_load");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let data = entries(n);
            b.iter(|| BPlusTree::bulk_load(8, black_box(data.clone())));
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree/insert");
    for &n in &[1_000usize, 10_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut t = BPlusTree::new(8);
                // Scrambled order stresses splits.
                for i in 0..n {
                    let k = (i.wrapping_mul(2654435761)) % n;
                    t.insert(Value::Int(k as i64), RowId(i as u32));
                }
                t
            });
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let tree = BPlusTree::bulk_load(8, entries(100_000));
    c.bench_function("btree/lookup/100k", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i * 75 + 74) % 65_537;
            let mut io = IoStats::new();
            black_box(tree.lookup(&Value::Int(i % 100_000), &mut io))
        });
    });
}

fn bench_range(c: &mut Criterion) {
    let tree = BPlusTree::bulk_load(8, entries(100_000));
    let mut g = c.benchmark_group("btree/range");
    for &width in &[100i64, 1_000, 10_000] {
        g.throughput(Throughput::Elements(width as u64));
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| {
                let mut io = IoStats::new();
                black_box(tree.range(
                    Bound::Included(Value::Int(5_000)),
                    Bound::Excluded(Value::Int(5_000 + w)),
                    &mut io,
                ))
            });
        });
    }
    g.finish();
}

fn bench_composite(c: &mut Criterion) {
    use colt_storage::CompositeBPlusTree;
    let entries: Vec<(Vec<Value>, RowId)> = (0..100_000)
        .map(|i| (vec![Value::Int(i % 100), Value::Int(i / 100)], RowId(i as u32)))
        .collect();
    let mut sorted = entries.clone();
    sorted.sort();
    let tree = CompositeBPlusTree::bulk_load(16, sorted);

    c.bench_function("btree/composite_lookup/100k", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i * 75 + 74) % 65_537;
            let mut io = IoStats::new();
            black_box(tree.lookup(&vec![Value::Int(i % 100), Value::Int(i % 1000)], &mut io))
        });
    });

    c.bench_function("btree/composite_prefix_scan/100k", |b| {
        use colt_storage::ScanControl;
        let mut i = 0i64;
        b.iter(|| {
            i = (i * 75 + 74) % 97;
            let prefix = vec![Value::Int(i)];
            let mut io = IoStats::new();
            black_box(tree.scan_from(
                Bound::Included(prefix.clone()),
                |k: &Vec<Value>| {
                    if k.starts_with(&prefix) {
                        ScanControl::Take
                    } else {
                        ScanControl::Stop
                    }
                },
                &mut io,
            ))
        });
    });
}

criterion_group!(benches, bench_bulk_load, bench_insert, bench_lookup, bench_range, bench_composite);
criterion_main!(benches);
