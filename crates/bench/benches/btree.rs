//! Micro-benchmarks of the B+ tree substrate: bulk loads, incremental
//! inserts, point lookups, and range scans across tree sizes.

use colt_bench::bench;
use colt_storage::{BPlusTree, IoStats, RowId, Value};
use std::hint::black_box;
use std::ops::Bound;

fn entries(n: usize) -> Vec<(Value, RowId)> {
    (0..n).map(|i| (Value::Int(i as i64), RowId(i as u32))).collect()
}

fn bench_bulk_load() {
    for n in [1_000usize, 10_000, 100_000] {
        let data = entries(n);
        bench(&format!("btree/bulk_load/{n}"), || {
            black_box(BPlusTree::bulk_load(8, black_box(data.clone())));
        });
    }
}

fn bench_insert() {
    for n in [1_000usize, 10_000] {
        bench(&format!("btree/insert/{n}"), || {
            let mut t = BPlusTree::new(8);
            // Scrambled order stresses splits.
            for i in 0..n {
                let k = (i.wrapping_mul(2654435761)) % n;
                t.insert(Value::Int(k as i64), RowId(i as u32));
            }
            black_box(t);
        });
    }
}

fn bench_lookup() {
    let tree = BPlusTree::bulk_load(8, entries(100_000));
    let mut i = 0i64;
    bench("btree/lookup/100k", || {
        i = (i * 75 + 74) % 65_537;
        let mut io = IoStats::new();
        black_box(tree.lookup(&Value::Int(i % 100_000), &mut io));
    });
}

fn bench_range() {
    let tree = BPlusTree::bulk_load(8, entries(100_000));
    for width in [100i64, 1_000, 10_000] {
        bench(&format!("btree/range/{width}"), || {
            let mut io = IoStats::new();
            black_box(tree.range(
                Bound::Included(Value::Int(5_000)),
                Bound::Excluded(Value::Int(5_000 + width)),
                &mut io,
            ));
        });
    }
}

fn bench_composite() {
    use colt_storage::CompositeBPlusTree;
    let entries: Vec<(Vec<Value>, RowId)> = (0..100_000)
        .map(|i| (vec![Value::Int(i % 100), Value::Int(i / 100)], RowId(i as u32)))
        .collect();
    let mut sorted = entries.clone();
    sorted.sort();
    let tree = CompositeBPlusTree::bulk_load(16, sorted);

    let mut i = 0i64;
    bench("btree/composite_lookup/100k", || {
        i = (i * 75 + 74) % 65_537;
        let mut io = IoStats::new();
        black_box(tree.lookup(&vec![Value::Int(i % 100), Value::Int(i % 1000)], &mut io));
    });

    let mut j = 0i64;
    bench("btree/composite_prefix_scan/100k", || {
        use colt_storage::ScanControl;
        j = (j * 75 + 74) % 97;
        let prefix = vec![Value::Int(j)];
        let mut io = IoStats::new();
        black_box(tree.scan_from(
            Bound::Included(prefix.clone()),
            |k: &Vec<Value>| {
                if k.starts_with(&prefix) {
                    ScanControl::Take
                } else {
                    ScanControl::Stop
                }
            },
            &mut io,
        ));
    });
}

fn main() {
    println!("# btree micro-benchmarks");
    bench_bulk_load();
    bench_insert();
    bench_lookup();
    bench_range();
    bench_composite();
}
