//! Randomized property tests for the workload machinery: noise-plan
//! geometry, histogram quantiles, selectivity-targeted sampling, and
//! workload assembly invariants. Cases come from the in-repo seeded
//! PRNG, so every run checks the same inputs.

use colt_catalog::{ColRef, Column, Database, TableId, TableSchema};
use colt_engine::selectivity::predicate_selectivity;
use colt_storage::{row_from, Prng, Value, ValueType};
use colt_workload::distribution::quantile;
use colt_workload::{
    fixed, phase_boundaries, phased, with_noise, NoisePlan, QueryDistribution, QueryTemplate,
    SelSpec, TemplateSelection,
};

fn db_with(values: &[i64]) -> (Database, TableId) {
    let mut db = Database::new();
    let t = db.add_table(TableSchema::new("t", vec![Column::new("k", ValueType::Int)]));
    db.insert_rows(t, values.iter().map(|&v| row_from(vec![Value::Int(v)])));
    db.analyze_all();
    (db, t)
}

/// Noise-plan geometry for arbitrary burst lengths: ≥500 queries,
/// exactly 20% noise, ≥2 non-overlapping bursts after the warm-up.
#[test]
fn noise_plan_geometry() {
    let mut rng = Prng::new(0x3014_0001);
    for case in 0..48u64 {
        let burst = 1 + rng.below(299);
        let p = NoisePlan::paper(burst);
        assert!(p.total >= 500, "case {case}");
        assert!(p.burst_starts.len() >= 2, "case {case}");
        assert!((p.noise_fraction() - 0.2).abs() < 1e-9, "case {case}");
        assert!(p.burst_starts[0] >= p.warmup, "case {case}");
        for w in p.burst_starts.windows(2) {
            assert!(w[0] + p.burst_len <= w[1], "case {case}: bursts overlap");
        }
        assert!(p.burst_starts.last().unwrap() + p.burst_len <= p.total, "case {case}");
        // is_noise must agree with the starts.
        let marked = (0..p.total).filter(|&i| p.is_noise(i)).count();
        assert_eq!(marked, p.burst_starts.len() * p.burst_len, "case {case}");
    }
}

/// Histogram quantiles are monotone and bounded by the data range.
#[test]
fn quantiles_monotone() {
    let mut rng = Prng::new(0x3014_0002);
    for case in 0..48u64 {
        let len = 32 + rng.below(1968);
        let mut values: Vec<i64> = (0..len).map(|_| rng.int_range(-10_000, 9_999)).collect();
        let mut qs: Vec<f64> = (0..2 + rng.below(8)).map(|_| rng.next_f64()).collect();

        let (db, t) = db_with(&values);
        let stats = db.table(t).column_stats(0);
        values.sort_unstable();
        qs.sort_by(f64::total_cmp);
        let mut last = Value::Int(i64::MIN);
        for q in qs {
            let v = quantile(stats, q);
            assert!(v >= last, "case {case}");
            assert!(v >= Value::Int(values[0]), "case {case}");
            assert!(v <= Value::Int(*values.last().unwrap()), "case {case}");
            last = v;
        }
    }
}

/// Range templates hit their target selectivity within histogram
/// tolerance on uniform data.
#[test]
fn range_templates_calibrated() {
    let mut rng = Prng::new(0x3014_0003);
    for case in 0..48u64 {
        let n = 2_000 + rng.below(18_000);
        let frac = rng.f64_range(0.01, 0.4);

        let values: Vec<i64> = (0..n as i64).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let tpl = QueryTemplate::single(
            t,
            vec![TemplateSelection { col, spec: SelSpec::RangeFrac { lo_frac: frac, hi_frac: frac } }],
        );
        let q = tpl.sample(&db, &mut rng);
        // Exact fraction of rows matched.
        let matched = values
            .iter()
            .filter(|&&v| q.selections[0].matches(&Value::Int(v)))
            .count() as f64
            / n as f64;
        assert!(
            (matched - frac).abs() < 0.08 + frac * 0.5,
            "case {case}: target {frac}, matched {matched}"
        );
    }
}

/// Workload assembly: lengths and well-formedness for arbitrary phase
/// shapes.
#[test]
fn phased_lengths() {
    let mut rng = Prng::new(0x3014_0004);
    for case in 0..48u64 {
        let phases = 1 + rng.below(4);
        let phase_len = 1 + rng.below(39);
        let transition = rng.below(20);

        let values: Vec<i64> = (0..500).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let dist = |_: usize| {
            QueryDistribution::new().with(
                1.0,
                QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]),
            )
        };
        let dists: Vec<_> = (0..phases).map(dist).collect();
        let w = phased(&dists, phase_len, transition, &db, &mut rng);
        assert_eq!(w.len(), phases * phase_len + (phases - 1) * transition, "case {case}");
        for q in &w {
            assert!(q.validate().is_ok(), "case {case}");
        }
        let bounds = phase_boundaries(phases, phase_len, transition);
        assert_eq!(bounds.len(), phases - 1, "case {case}");
        for (i, b) in bounds.iter().enumerate() {
            assert_eq!(*b, (i + 1) * phase_len + i * transition, "case {case}");
        }
    }
}

/// Noise injection places exactly the planned queries.
#[test]
fn noise_injection_exact() {
    let mut rng = Prng::new(0x3014_0005);
    for case in 0..24u64 {
        let burst = 10 + rng.below(110);

        let values: Vec<i64> = (0..200).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let base = QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]),
        );
        let noise = QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(
                t,
                vec![TemplateSelection { col, spec: SelSpec::RangeFrac { lo_frac: 0.1, hi_frac: 0.2 } }],
            ),
        );
        let plan = NoisePlan::paper(burst);
        let w = with_noise(&base, &noise, &plan, &db, &mut rng);
        assert_eq!(w.len(), plan.total, "case {case}");
        for (i, q) in w.iter().enumerate() {
            let is_range = matches!(q.selections[0].kind, colt_engine::PredicateKind::Range { .. });
            assert_eq!(is_range, plan.is_noise(i), "case {case}: query {i}");
        }
    }
}

/// `fixed` is deterministic in (distribution, seed).
#[test]
fn fixed_deterministic() {
    let mut rng = Prng::new(0x3014_0006);
    for case in 0..48u64 {
        let n = 1 + rng.below(99);
        let seed = rng.next_u64() % 1000;

        let values: Vec<i64> = (0..300).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let dist = QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]),
        );
        let a = fixed(&dist, n, &db, &mut Prng::new(seed));
        let b = fixed(&dist, n, &db, &mut Prng::new(seed));
        assert_eq!(a, b, "case {case}");
    }
}

/// Selectivity bucketing: sampled Eq predicates on a key column are
/// always classified selective at the paper's 2% boundary once the
/// domain is large enough.
#[test]
fn eq_on_key_is_selective() {
    let mut rng = Prng::new(0x3014_0007);
    for case in 0..48u64 {
        let n = 200 + rng.below(4800);
        let values: Vec<i64> = (0..n as i64).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let tpl = QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]);
        let q = tpl.sample(&db, &mut rng);
        let sel = predicate_selectivity(&db, &q.selections[0]);
        assert!(sel < 0.02, "case {case}: eq selectivity {sel}");
    }
}
