//! Property tests for the workload machinery: noise-plan geometry,
//! histogram quantiles, selectivity-targeted sampling, and workload
//! assembly invariants.

use colt_catalog::{ColRef, Column, Database, TableId, TableSchema};
use colt_engine::selectivity::predicate_selectivity;
use colt_storage::{row_from, Value, ValueType};
use colt_workload::distribution::quantile;
use colt_workload::{
    fixed, phase_boundaries, phased, with_noise, NoisePlan, QueryDistribution, QueryTemplate,
    SelSpec, TemplateSelection,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn db_with(values: &[i64]) -> (Database, TableId) {
    let mut db = Database::new();
    let t = db.add_table(TableSchema::new("t", vec![Column::new("k", ValueType::Int)]));
    db.insert_rows(t, values.iter().map(|&v| row_from(vec![Value::Int(v)])));
    db.analyze_all();
    (db, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Noise-plan geometry for arbitrary burst lengths: ≥500 queries,
    /// exactly 20% noise, ≥2 non-overlapping bursts after the warm-up.
    #[test]
    fn noise_plan_geometry(burst in 1usize..300) {
        let p = NoisePlan::paper(burst);
        prop_assert!(p.total >= 500);
        prop_assert!(p.burst_starts.len() >= 2);
        prop_assert!((p.noise_fraction() - 0.2).abs() < 1e-9);
        prop_assert!(p.burst_starts[0] >= p.warmup);
        for w in p.burst_starts.windows(2) {
            prop_assert!(w[0] + p.burst_len <= w[1], "bursts overlap");
        }
        prop_assert!(p.burst_starts.last().unwrap() + p.burst_len <= p.total);
        // is_noise must agree with the starts.
        let marked = (0..p.total).filter(|&i| p.is_noise(i)).count();
        prop_assert_eq!(marked, p.burst_starts.len() * p.burst_len);
    }

    /// Histogram quantiles are monotone and bounded by the data range.
    #[test]
    fn quantiles_monotone(
        mut values in prop::collection::vec(-10_000i64..10_000, 32..2000),
        qs in prop::collection::vec(0.0f64..1.0, 2..10),
    ) {
        let (db, t) = db_with(&values);
        let stats = db.table(t).column_stats(0);
        values.sort_unstable();
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut last = Value::Int(i64::MIN);
        for q in qs {
            let v = quantile(stats, q);
            prop_assert!(v >= last);
            prop_assert!(v >= Value::Int(values[0]));
            prop_assert!(v <= Value::Int(*values.last().unwrap()));
            last = v;
        }
    }

    /// Range templates hit their target selectivity within histogram
    /// tolerance on uniform data.
    #[test]
    fn range_templates_calibrated(
        n in 2_000usize..20_000,
        frac in 0.01f64..0.4,
        seed in 0u64..1_000,
    ) {
        let values: Vec<i64> = (0..n as i64).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let tpl = QueryTemplate::single(
            t,
            vec![TemplateSelection { col, spec: SelSpec::RangeFrac { lo_frac: frac, hi_frac: frac } }],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let q = tpl.sample(&db, &mut rng);
        // Exact fraction of rows matched.
        let matched = values
            .iter()
            .filter(|&&v| q.selections[0].matches(&Value::Int(v)))
            .count() as f64
            / n as f64;
        prop_assert!(
            (matched - frac).abs() < 0.08 + frac * 0.5,
            "target {frac}, matched {matched}"
        );
    }

    /// Workload assembly: lengths and well-formedness for arbitrary
    /// phase shapes.
    #[test]
    fn phased_lengths(
        phases in 1usize..5,
        phase_len in 1usize..40,
        transition in 0usize..20,
        seed in 0u64..100,
    ) {
        let values: Vec<i64> = (0..500).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let dist = |_: usize| {
            QueryDistribution::new().with(
                1.0,
                QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]),
            )
        };
        let dists: Vec<_> = (0..phases).map(dist).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = phased(&dists, phase_len, transition, &db, &mut rng);
        prop_assert_eq!(w.len(), phases * phase_len + (phases - 1) * transition);
        for q in &w {
            prop_assert!(q.validate().is_ok());
        }
        let bounds = phase_boundaries(phases, phase_len, transition);
        prop_assert_eq!(bounds.len(), phases - 1);
        for (i, b) in bounds.iter().enumerate() {
            prop_assert_eq!(*b, (i + 1) * phase_len + i * transition);
        }
    }

    /// Noise injection places exactly the planned queries.
    #[test]
    fn noise_injection_exact(burst in 10usize..120, seed in 0u64..50) {
        let values: Vec<i64> = (0..200).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let base = QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]),
        );
        let noise = QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(
                t,
                vec![TemplateSelection { col, spec: SelSpec::RangeFrac { lo_frac: 0.1, hi_frac: 0.2 } }],
            ),
        );
        let plan = NoisePlan::paper(burst);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = with_noise(&base, &noise, &plan, &db, &mut rng);
        prop_assert_eq!(w.len(), plan.total);
        for (i, q) in w.iter().enumerate() {
            let is_range = matches!(q.selections[0].kind, colt_engine::PredicateKind::Range { .. });
            prop_assert_eq!(is_range, plan.is_noise(i), "query {}", i);
        }
    }

    /// `fixed` is deterministic in (distribution, seed).
    #[test]
    fn fixed_deterministic(n in 1usize..100, seed in 0u64..1000) {
        let values: Vec<i64> = (0..300).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let dist = QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]),
        );
        let a = fixed(&dist, n, &db, &mut StdRng::seed_from_u64(seed));
        let b = fixed(&dist, n, &db, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    /// Selectivity bucketing: sampled Eq predicates on a key column are
    /// always classified selective at the paper's 2% boundary once the
    /// domain is large enough.
    #[test]
    fn eq_on_key_is_selective(n in 200usize..5000) {
        let values: Vec<i64> = (0..n as i64).collect();
        let (db, t) = db_with(&values);
        let col = ColRef::new(t, 0);
        let tpl = QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]);
        let mut rng = StdRng::seed_from_u64(1);
        let q = tpl.sample(&db, &mut rng);
        let sel = predicate_selectivity(&db, &q.selections[0]);
        prop_assert!(sel < 0.02, "eq selectivity {sel}");
    }
}
