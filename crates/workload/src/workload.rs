//! Workload assembly: fixed streams, phased (shifting) streams with
//! gradual transitions, and burst-noise injection — the three workload
//! shapes of the paper's evaluation (§6).

use crate::distribution::QueryDistribution;
use colt_catalog::Database;
use colt_engine::Query;
use colt_storage::Prng;

/// `n` queries from one distribution.
pub fn fixed(dist: &QueryDistribution, n: usize, db: &Database, rng: &mut Prng) -> Vec<Query> {
    (0..n).map(|_| dist.sample(db, rng)).collect()
}

/// A shifting workload: each phase contributes `phase_len` queries from
/// its own distribution, and consecutive phases are bridged by
/// `transition_len` extra queries during which the mix shifts linearly
/// from the old to the new distribution.
///
/// With the paper's parameters (4 phases × 300, transitions of 50) this
/// yields `4·300 + 3·50 = 1350` queries.
pub fn phased(
    dists: &[QueryDistribution],
    phase_len: usize,
    transition_len: usize,
    db: &Database,
    rng: &mut Prng,
) -> Vec<Query> {
    assert!(!dists.is_empty(), "need at least one phase");
    let mut out = Vec::with_capacity(dists.len() * phase_len + dists.len().saturating_sub(1) * transition_len);
    for (i, dist) in dists.iter().enumerate() {
        out.extend(fixed(dist, phase_len, db, rng));
        if let Some(next) = dists.get(i + 1) {
            for k in 0..transition_len {
                let p_next = (k + 1) as f64 / (transition_len + 1) as f64;
                let pick = if rng.chance(p_next) { next } else { dist };
                out.push(pick.sample(db, rng));
            }
        }
    }
    out
}

/// Positions (query indices) of each phase boundary of a [`phased`]
/// workload, for plotting and asserting.
pub fn phase_boundaries(num_phases: usize, phase_len: usize, transition_len: usize) -> Vec<usize> {
    (1..num_phases).map(|i| i * phase_len + (i - 1) * transition_len).collect()
}

/// Plan for a noisy workload (§6.2, "Effect of Noise").
#[derive(Debug, Clone)]
pub struct NoisePlan {
    /// Total number of queries.
    pub total: usize,
    /// Warm-up queries drawn purely from the base distribution.
    pub warmup: usize,
    /// Length of each noise burst.
    pub burst_len: usize,
    /// Start positions of the bursts.
    pub burst_starts: Vec<usize>,
}

impl NoisePlan {
    /// Build the paper's plan: at least 500 queries, at least two
    /// injections, noise = 20% of the workload, 100 warm-up queries.
    ///
    /// # Examples
    ///
    /// ```
    /// use colt_workload::NoisePlan;
    ///
    /// let plan = NoisePlan::paper(40);
    /// assert!(plan.total >= 500);
    /// assert!((plan.noise_fraction() - 0.2).abs() < 1e-9);
    /// assert!(!plan.is_noise(0)); // warm-up is pure base distribution
    /// ```
    pub fn paper(burst_len: usize) -> Self {
        assert!(burst_len > 0);
        let mut total = 500usize.max(10 * burst_len);
        // Number of bursts so that noise is 20% of the total.
        let bursts = (((0.2 * total as f64) / burst_len as f64).ceil().max(2.0)) as usize;
        total = 5 * bursts * burst_len; // make the 20% exact
        let warmup = 100;
        // Spread bursts evenly through the post-warm-up region.
        let usable = total - warmup;
        let gap = (usable - bursts * burst_len) / (bursts + 1);
        let burst_starts: Vec<usize> =
            (0..bursts).map(|i| warmup + gap + i * (burst_len + gap)).collect();
        NoisePlan { total, warmup, burst_len, burst_starts }
    }

    /// Is query `i` inside a noise burst?
    pub fn is_noise(&self, i: usize) -> bool {
        self.burst_starts.iter().any(|&s| (s..s + self.burst_len).contains(&i))
    }

    /// Fraction of the workload that is noise.
    pub fn noise_fraction(&self) -> f64 {
        (self.burst_starts.len() * self.burst_len) as f64 / self.total as f64
    }
}

/// Generate a noisy workload: base distribution `q1` with bursts of
/// `q2` at the positions given by `plan`.
pub fn with_noise(
    q1: &QueryDistribution,
    q2: &QueryDistribution,
    plan: &NoisePlan,
    db: &Database,
    rng: &mut Prng,
) -> Vec<Query> {
    (0..plan.total)
        .map(|i| if plan.is_noise(i) { q2.sample(db, rng) } else { q1.sample(db, rng) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{QueryTemplate, SelSpec, TemplateSelection};
    use colt_catalog::{ColRef, Column, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, QueryDistribution, QueryDistribution) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("a", ValueType::Int), Column::new("b", ValueType::Int)],
        ));
        db.insert_rows(t, (0..10_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i)])));
        db.analyze_all();
        let d = |c: u32| {
            QueryDistribution::new().with(
                1.0,
                QueryTemplate::single(
                    t,
                    vec![TemplateSelection { col: ColRef::new(t, c), spec: SelSpec::Eq }],
                ),
            )
        };
        (db, d(0), d(1))
    }

    #[test]
    fn fixed_length() {
        let (db, d1, _) = setup();
        let mut rng = Prng::new(1);
        assert_eq!(fixed(&d1, 57, &db, &mut rng).len(), 57);
    }

    #[test]
    fn phased_total_matches_paper() {
        let (db, d1, d2) = setup();
        let dists = vec![d1.clone(), d2.clone(), d1, d2];
        let mut rng = Prng::new(1);
        let w = phased(&dists, 300, 50, &db, &mut rng);
        assert_eq!(w.len(), 1350);
        assert_eq!(phase_boundaries(4, 300, 50), vec![300, 650, 1000]);
    }

    #[test]
    fn transition_mixes_gradually() {
        let (db, d1, d2) = setup();
        let mut rng = Prng::new(2);
        let w = phased(&[d1, d2], 300, 50, &db, &mut rng);
        assert_eq!(w.len(), 650);
        // Pure phase 1: all queries on column 0.
        assert!(w[..300].iter().all(|q| q.selections[0].col.column == 0));
        // Pure phase 2 region: all on column 1.
        assert!(w[350..].iter().all(|q| q.selections[0].col.column == 1));
        // Transition region contains both.
        let trans = &w[300..350];
        assert!(trans.iter().any(|q| q.selections[0].col.column == 0));
        assert!(trans.iter().any(|q| q.selections[0].col.column == 1));
    }

    #[test]
    fn noise_plan_respects_paper_constraints() {
        for burst in [20, 30, 40, 50, 60, 70, 80, 90] {
            let p = NoisePlan::paper(burst);
            assert!(p.total >= 500, "burst {burst}: total {}", p.total);
            assert!(p.burst_starts.len() >= 2);
            assert!((p.noise_fraction() - 0.2).abs() < 1e-9, "burst {burst}");
            assert!(p.burst_starts[0] >= p.warmup, "first burst after warm-up");
            let end = p.burst_starts.last().unwrap() + p.burst_len;
            assert!(end <= p.total);
            // Bursts must not overlap.
            for w in p.burst_starts.windows(2) {
                assert!(w[0] + p.burst_len <= w[1]);
            }
        }
    }

    #[test]
    fn noise_injection_matches_plan() {
        let (db, d1, d2) = setup();
        let plan = NoisePlan::paper(40);
        let mut rng = Prng::new(3);
        let w = with_noise(&d1, &d2, &plan, &db, &mut rng);
        assert_eq!(w.len(), plan.total);
        for (i, q) in w.iter().enumerate() {
            let expected = if plan.is_noise(i) { 1 } else { 0 };
            assert_eq!(q.selections[0].col.column, expected, "query {i}");
        }
    }
}
