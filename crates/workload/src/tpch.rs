//! The synthetic data set of the paper's evaluation: four instances of a
//! TPC-H-like schema (Table 1 of the paper).
//!
//! Characteristics at scale 1.0 (the paper's scale):
//!
//! * 32 tables (8 per instance × 4 instances),
//! * 6,928,120 tuples in total,
//! * largest table 1,200,000 tuples, smallest 5 tuples,
//! * 244 indexable attributes (61 per instance × 4),
//! * ≈ 1 GB of binary data at the 8 KiB page model (the paper reports
//!   1.4 GB; our fixed 24-byte string width narrows rows slightly).
//!
//! The `scale` parameter shrinks every table proportionally (floors keep
//! the tiny dimension tables intact), preserving the inter-table ratios
//! that drive index-selection behaviour while letting experiments run in
//! seconds. The default experiment scale is 1/40.

use crate::gen::ColumnGen;
use colt_catalog::{ColRef, Column, Database, TableId, TableSchema};
use colt_storage::{row_from, ValueType};
use colt_storage::Prng;

/// The paper's experiment scale relative to Table 1 (1/40).
pub const DEFAULT_SCALE: f64 = 0.025;

/// Days covered by date columns.
const DATE_LO: i32 = 0;
const DATE_HI: i32 = 2555; // ~7 years

/// Definition of one table of the schema.
struct TableDef {
    name: &'static str,
    base_rows: u64,
    columns: Vec<(&'static str, ValueType, ColumnGen)>,
}

/// Row counts of one instance at scale 1.0, chosen to reproduce the
/// paper's Table 1 exactly: per-instance total 1,732,030 tuples.
fn table_defs(scale: f64) -> Vec<TableDef> {
    let n = |base: u64, floor: u64| -> u64 { ((base as f64 * scale) as u64).max(floor) };
    let region = 5; // never scaled: the paper's smallest table has 5 rows
    let nation = 25;
    let supplier = n(2_000, 40);
    let customer = n(30_000, 300);
    let part = n(40_000, 400);
    let partsupp = n(160_000, 800);
    let orders = n(300_000, 1_500);
    let lineitem = n(1_200_000, 6_000);

    use ColumnGen as G;
    use ValueType as V;
    vec![
        TableDef {
            name: "region",
            base_rows: region,
            columns: vec![
                ("r_regionkey", V::Int, G::Key),
                ("r_name", V::Str, G::StrPool { pool: 5 }),
                ("r_comment", V::Str, G::StrPool { pool: 5 }),
            ],
        },
        TableDef {
            name: "nation",
            base_rows: nation,
            columns: vec![
                ("n_nationkey", V::Int, G::Key),
                ("n_name", V::Str, G::StrPool { pool: 25 }),
                ("n_regionkey", V::Int, G::ForeignKey { target_rows: region }),
                ("n_comment", V::Str, G::StrPool { pool: 25 }),
            ],
        },
        TableDef {
            name: "supplier",
            base_rows: supplier,
            columns: vec![
                ("s_suppkey", V::Int, G::Key),
                ("s_name", V::Str, G::StrPool { pool: 1000 }),
                ("s_address", V::Str, G::StrPool { pool: 1000 }),
                ("s_nationkey", V::Int, G::ForeignKey { target_rows: nation }),
                ("s_phone", V::Str, G::StrPool { pool: 1000 }),
                ("s_acctbal", V::Float, G::FloatUniform { lo: -999.99, hi: 9999.99 }),
                ("s_comment", V::Str, G::StrPool { pool: 1000 }),
            ],
        },
        TableDef {
            name: "customer",
            base_rows: customer,
            columns: vec![
                ("c_custkey", V::Int, G::Key),
                ("c_name", V::Str, G::StrPool { pool: 10_000 }),
                ("c_address", V::Str, G::StrPool { pool: 10_000 }),
                ("c_nationkey", V::Int, G::ForeignKey { target_rows: nation }),
                ("c_phone", V::Str, G::StrPool { pool: 10_000 }),
                ("c_acctbal", V::Float, G::FloatUniform { lo: -999.99, hi: 9999.99 }),
                ("c_mktsegment", V::Int, G::Choice { choices: 5 }),
                ("c_comment", V::Str, G::StrPool { pool: 10_000 }),
            ],
        },
        TableDef {
            name: "part",
            base_rows: part,
            columns: vec![
                ("p_partkey", V::Int, G::Key),
                ("p_name", V::Str, G::StrPool { pool: 20_000 }),
                ("p_mfgr", V::Int, G::Choice { choices: 5 }),
                ("p_brand", V::Int, G::Choice { choices: 25 }),
                ("p_type", V::Int, G::Choice { choices: 150 }),
                ("p_size", V::Int, G::IntUniform { lo: 1, hi: 50 }),
                ("p_container", V::Int, G::Choice { choices: 40 }),
                ("p_retailprice", V::Float, G::FloatUniform { lo: 900.0, hi: 2100.0 }),
                ("p_comment", V::Str, G::StrPool { pool: 20_000 }),
            ],
        },
        TableDef {
            name: "partsupp",
            base_rows: partsupp,
            columns: vec![
                ("ps_partkey", V::Int, G::ForeignKey { target_rows: part }),
                ("ps_suppkey", V::Int, G::ForeignKey { target_rows: supplier }),
                ("ps_availqty", V::Int, G::IntUniform { lo: 1, hi: 9999 }),
                ("ps_supplycost", V::Float, G::FloatUniform { lo: 1.0, hi: 1000.0 }),
                ("ps_comment", V::Str, G::StrPool { pool: 20_000 }),
            ],
        },
        TableDef {
            name: "orders",
            base_rows: orders,
            columns: vec![
                ("o_orderkey", V::Int, G::Key),
                ("o_custkey", V::Int, G::ForeignKey { target_rows: customer }),
                ("o_orderstatus", V::Int, G::Choice { choices: 3 }),
                ("o_totalprice", V::Float, G::FloatUniform { lo: 800.0, hi: 500_000.0 }),
                ("o_orderdate", V::Date, G::DateUniform { lo: DATE_LO, hi: DATE_HI }),
                ("o_orderpriority", V::Int, G::Choice { choices: 5 }),
                ("o_clerk", V::Int, G::Choice { choices: 1000 }),
                ("o_shippriority", V::Int, G::Choice { choices: 2 }),
                ("o_comment", V::Str, G::StrPool { pool: 50_000 }),
            ],
        },
        TableDef {
            name: "lineitem",
            base_rows: lineitem,
            columns: vec![
                ("l_orderkey", V::Int, G::ForeignKey { target_rows: orders }),
                ("l_partkey", V::Int, G::ForeignKey { target_rows: part }),
                ("l_suppkey", V::Int, G::ForeignKey { target_rows: supplier }),
                ("l_linenumber", V::Int, G::IntUniform { lo: 1, hi: 7 }),
                ("l_quantity", V::Int, G::IntUniform { lo: 1, hi: 50 }),
                ("l_extendedprice", V::Float, G::FloatUniform { lo: 900.0, hi: 105_000.0 }),
                ("l_discount", V::Float, G::FloatUniform { lo: 0.0, hi: 0.11 }),
                ("l_tax", V::Float, G::FloatUniform { lo: 0.0, hi: 0.09 }),
                ("l_returnflag", V::Int, G::Choice { choices: 3 }),
                ("l_linestatus", V::Int, G::Choice { choices: 2 }),
                ("l_shipdate", V::Date, G::DateUniform { lo: DATE_LO, hi: DATE_HI }),
                ("l_commitdate", V::Date, G::DateUniform { lo: DATE_LO, hi: DATE_HI }),
                ("l_receiptdate", V::Date, G::DateUniform { lo: DATE_LO, hi: DATE_HI }),
                ("l_shipinstruct", V::Int, G::Choice { choices: 4 }),
                ("l_shipmode", V::Int, G::Choice { choices: 7 }),
                ("l_comment", V::Str, G::StrPool { pool: 50_000 }),
            ],
        },
    ]
}

/// Map from table names to ids for one schema instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Which of the four instances this is (0–3).
    pub index: usize,
    tables: Vec<(String, TableId)>,
}

impl Instance {
    /// The id of a table by its TPC-H name (e.g. `"lineitem"`).
    pub fn table(&self, name: &str) -> TableId {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            // colt: allow(panic-policy) — lookup by compile-time TPC-H name; a typo is a programming error
            .unwrap_or_else(|| panic!("unknown table {name}"))
            .1
    }

    /// A column reference by table and column name.
    pub fn col(&self, db: &Database, table: &str, column: &str) -> ColRef {
        let tid = self.table(table);
        let idx = db
            .table(tid)
            .schema
            .column_index(column)
            // colt: allow(panic-policy) — lookup by compile-time TPC-H name; a typo is a programming error
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"));
        ColRef::new(tid, idx)
    }
}

/// The generated data set: the database plus instance maps.
#[derive(Debug)]
pub struct TpchData {
    /// The populated, analyzed database.
    pub db: Database,
    /// The four schema instances.
    pub instances: Vec<Instance>,
    /// The scale the data was generated at.
    pub scale: f64,
}

/// Number of schema instances (the paper uses four).
pub const INSTANCES: usize = 4;

/// Generate the four-instance data set at the given scale.
pub fn generate(scale: f64, seed: u64) -> TpchData {
    let mut db = Database::new();
    let mut instances = Vec::with_capacity(INSTANCES);
    let mut rng = Prng::new(seed);
    for inst in 0..INSTANCES {
        let mut tables = Vec::new();
        for def in table_defs(scale) {
            let name = format!("{}{}", def.name, inst);
            let schema = TableSchema::new(
                name.clone(),
                def.columns.iter().map(|(n, t, _)| Column::new(*n, *t)).collect(),
            );
            let tid = db.add_table(schema);
            let rows = def.base_rows;
            db.insert_rows(
                tid,
                (0..rows).map(|r| {
                    row_from(
                        def.columns.iter().map(|(_, _, g)| g.generate(r, rows, &mut rng)).collect(),
                    )
                }),
            );
            tables.push((def.name.to_string(), tid));
        }
        instances.push(Instance { index: inst, tables });
    }
    db.analyze_all();
    TpchData { db, instances, scale }
}

/// Declared characteristics at a given scale without generating data —
/// used by the Table 1 bench to print the paper-scale numbers instantly.
pub struct DataSetSummary {
    /// Number of tables.
    pub tables: usize,
    /// Total tuples across all tables.
    pub total_tuples: u64,
    /// Tuples in the largest table.
    pub largest: u64,
    /// Tuples in the smallest table.
    pub smallest: u64,
    /// Indexable attributes.
    pub attributes: usize,
    /// Approximate binary size in bytes (heap pages).
    pub bytes: u64,
}

/// Compute the summary for a scale.
pub fn summary(scale: f64) -> DataSetSummary {
    let defs = table_defs(scale);
    let per_instance_tuples: u64 = defs.iter().map(|d| d.base_rows).sum();
    // colt: allow(panic-policy) — table_defs() returns the fixed eight TPC-H tables, never empty
    let largest = defs.iter().map(|d| d.base_rows).max().unwrap();
    // colt: allow(panic-policy) — table_defs() returns the fixed eight TPC-H tables, never empty
    let smallest = defs.iter().map(|d| d.base_rows).min().unwrap();
    let attributes: usize = defs.iter().map(|d| d.columns.len()).sum();
    let bytes: u64 = defs
        .iter()
        .map(|d| {
            let width: usize = d.columns.iter().map(|(_, t, _)| t.byte_width()).sum();
            colt_storage::pages_for(d.base_rows as usize, width) as u64
                * colt_storage::PAGE_SIZE as u64
        })
        .sum();
    DataSetSummary {
        tables: defs.len() * INSTANCES,
        total_tuples: per_instance_tuples * INSTANCES as u64,
        largest,
        smallest,
        attributes: attributes * INSTANCES,
        bytes: bytes * INSTANCES as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table_1() {
        let s = summary(1.0);
        assert_eq!(s.tables, 32);
        assert_eq!(s.total_tuples, 6_928_120);
        assert_eq!(s.largest, 1_200_000);
        assert_eq!(s.smallest, 5);
        assert_eq!(s.attributes, 244);
        // On the order of the paper's 1.4 GB (our fixed string width
        // yields slightly narrower rows).
        let gb = s.bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((0.7..2.0).contains(&gb), "binary size {gb:.2} GB");
    }

    #[test]
    fn generated_data_matches_summary() {
        let scale = 0.002;
        let data = generate(scale, 7);
        let s = summary(scale);
        assert_eq!(data.db.table_count(), s.tables);
        assert_eq!(data.db.total_tuples(), s.total_tuples);
        assert_eq!(data.db.indexable_attributes(), s.attributes);
        assert_eq!(data.instances.len(), 4);
    }

    #[test]
    fn instances_are_disjoint_tables() {
        let data = generate(0.002, 7);
        let a = data.instances[0].table("lineitem");
        let b = data.instances[1].table("lineitem");
        assert_ne!(a, b);
        // Same schema shape, different table ids.
        assert_eq!(
            data.db.table(a).schema.arity(),
            data.db.table(b).schema.arity()
        );
    }

    #[test]
    fn col_lookup_works() {
        let data = generate(0.002, 7);
        let col = data.instances[2].col(&data.db, "orders", "o_orderdate");
        assert_eq!(col.table, data.instances[2].table("orders"));
        let t = data.db.table(col.table);
        assert_eq!(t.schema.columns[col.column as usize].name, "o_orderdate");
    }

    #[test]
    fn statistics_are_gathered() {
        let data = generate(0.002, 7);
        for t in data.db.tables() {
            assert_eq!(t.stats.len(), t.schema.arity(), "stats for {}", t.schema.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.001, 42);
        let b = generate(0.001, 42);
        let ta = a.instances[0].table("orders");
        let tb = b.instances[0].table("orders");
        let rows_a: Vec<_> = a.db.table(ta).heap.iter().take(20).map(|(_, r)| r.clone()).collect();
        let rows_b: Vec<_> = b.db.table(tb).heap.iter().take(20).map(|(_, r)| r.clone()).collect();
        assert_eq!(rows_a, rows_b);
    }
}
