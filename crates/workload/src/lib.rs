//! # colt-workload
//!
//! The synthetic data set and workloads of the paper's evaluation: four
//! instances of a TPC-H-like schema (32 tables, 244 indexable
//! attributes; Table 1 of the paper), a seeded SPJ query generator with
//! histogram-driven selectivity control, and the three experiment
//! workload shapes — stable, shifting (four phases with gradual
//! transitions), and noisy (20% burst injections).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distribution;
pub mod gen;
pub mod presets;
pub mod tpch;
pub mod workload;

pub use distribution::{QueryDistribution, QueryTemplate, SelSpec, TemplateSelection};
pub use presets::{budget_for, noisy, shifting, stable, stable_distribution, Preset};
pub use tpch::{generate, summary, Instance, TpchData, DEFAULT_SCALE};
pub use workload::{fixed, phase_boundaries, phased, with_noise, NoisePlan};
