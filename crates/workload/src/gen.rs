//! Column value generators for synthetic data.

use colt_storage::Value;
use colt_storage::Prng;

/// How the values of one column are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnGen {
    /// Dense primary key `0..rows`.
    Key,
    /// Foreign key: uniform over `0..target_rows`.
    ForeignKey {
        /// Cardinality of the referenced table.
        target_rows: u64,
    },
    /// Uniform integer in `[lo, hi]`.
    IntUniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Categorical: uniform over `0..choices` distinct integers.
    Choice {
        /// Number of distinct values.
        choices: u64,
    },
    /// Uniform float in `[lo, hi)`, rounded to cents.
    FloatUniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Uniform date in `[lo, hi]` (days).
    DateUniform {
        /// Inclusive lower bound in days.
        lo: i32,
        /// Inclusive upper bound in days.
        hi: i32,
    },
    /// Short string drawn from a pool of `pool` variants with a prefix.
    StrPool {
        /// Number of distinct strings.
        pool: u64,
    },
    /// Zipf-distributed integer over `0..n`: value `k` has probability
    /// proportional to `1/(k+1)^s`. Models skewed categorical data
    /// (hot customers, popular parts), which stresses the equi-depth
    /// histograms and the uniform-within-distinct equality estimate.
    Zipf {
        /// Number of distinct values.
        n: u64,
        /// Skew exponent (`0` = uniform; `1` = classic Zipf).
        s: f64,
    },
}

impl ColumnGen {
    /// Generate the value for row `row` of a table with `rows` rows.
    pub fn generate(&self, row: u64, _rows: u64, rng: &mut Prng) -> Value {
        match self {
            ColumnGen::Key => Value::Int(row as i64),
            ColumnGen::ForeignKey { target_rows } => {
                Value::Int(rng.below_u64((*target_rows).max(1)) as i64)
            }
            ColumnGen::IntUniform { lo, hi } => Value::Int(rng.int_range(*lo, *hi)),
            ColumnGen::Choice { choices } => Value::Int(rng.below_u64((*choices).max(1)) as i64),
            ColumnGen::FloatUniform { lo, hi } => {
                let v: f64 = rng.f64_range(*lo, *hi);
                Value::Float((v * 100.0).round() / 100.0)
            }
            ColumnGen::DateUniform { lo, hi } => Value::Date(rng.int_range(*lo as i64, *hi as i64) as i32),
            ColumnGen::StrPool { pool } => {
                let k = rng.below_u64((*pool).max(1));
                Value::Str(format!("s{k:08}"))
            }
            ColumnGen::Zipf { n, s } => Value::Int(zipf_sample(*n, *s, rng)),
        }
    }

    /// Domain bounds `(lo, hi)` on the real line, for query generation.
    /// `None` for dense keys (domain depends on the table size).
    pub fn domain(&self) -> Option<(f64, f64)> {
        match self {
            ColumnGen::Key => None,
            ColumnGen::ForeignKey { target_rows } => Some((0.0, (*target_rows).max(1) as f64 - 1.0)),
            ColumnGen::IntUniform { lo, hi } => Some((*lo as f64, *hi as f64)),
            ColumnGen::Choice { choices } => Some((0.0, (*choices).max(1) as f64 - 1.0)),
            ColumnGen::FloatUniform { lo, hi } => Some((*lo, *hi)),
            ColumnGen::DateUniform { lo, hi } => Some((*lo as f64, *hi as f64)),
            ColumnGen::StrPool { .. } => None,
            ColumnGen::Zipf { n, .. } => Some((0.0, (*n).max(1) as f64 - 1.0)),
        }
    }

    /// Approximate number of distinct values in a table of `rows` rows.
    pub fn distinct(&self, rows: u64) -> u64 {
        match self {
            ColumnGen::Key => rows,
            ColumnGen::ForeignKey { target_rows } => (*target_rows).min(rows).max(1),
            ColumnGen::IntUniform { lo, hi } => ((hi - lo + 1) as u64).min(rows).max(1),
            ColumnGen::Choice { choices } => (*choices).min(rows).max(1),
            ColumnGen::FloatUniform { .. } => rows.max(1),
            ColumnGen::DateUniform { lo, hi } => ((hi - lo + 1) as u64).min(rows).max(1),
            ColumnGen::StrPool { pool } => (*pool).min(rows).max(1),
            ColumnGen::Zipf { n, .. } => (*n).min(rows).max(1),
        }
    }
}

/// Draw one Zipf(s) sample over `0..n` by inverse-CDF over the
/// generalized harmonic numbers (O(log n) per draw after an O(n) table
/// would be ideal; for generation-time use the direct rejection-free
/// partial-sum walk is fine at our domain sizes).
fn zipf_sample(n: u64, s: f64, rng: &mut Prng) -> i64 {
    let n = n.max(1);
    // Normalization constant H_{n,s}.
    let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let target: f64 = rng.f64_range(0.0, h);
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        if acc >= target {
            return (k - 1) as i64;
        }
    }
    (n - 1) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> Prng {
        Prng::new(1)
    }

    #[test]
    fn key_is_dense() {
        let g = ColumnGen::Key;
        let mut r = rng();
        assert_eq!(g.generate(42, 100, &mut r), Value::Int(42));
        assert_eq!(g.distinct(100), 100);
    }

    #[test]
    fn choice_respects_cardinality() {
        let g = ColumnGen::Choice { choices: 5 };
        let mut r = rng();
        for row in 0..200 {
            match g.generate(row, 200, &mut r) {
                Value::Int(v) => assert!((0..5).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(g.distinct(200), 5);
        assert_eq!(g.domain(), Some((0.0, 4.0)));
    }

    #[test]
    fn ranges_respected() {
        let mut r = rng();
        let g = ColumnGen::IntUniform { lo: -5, hi: 5 };
        for row in 0..100 {
            let Value::Int(v) = g.generate(row, 100, &mut r) else { panic!() };
            assert!((-5..=5).contains(&v));
        }
        let g = ColumnGen::DateUniform { lo: 100, hi: 200 };
        let Value::Date(d) = g.generate(0, 1, &mut r) else { panic!() };
        assert!((100..=200).contains(&d));
        let g = ColumnGen::FloatUniform { lo: 1.0, hi: 2.0 };
        let Value::Float(f) = g.generate(0, 1, &mut r) else { panic!() };
        assert!((1.0..=2.0).contains(&f));
    }

    #[test]
    fn strings_from_pool() {
        let g = ColumnGen::StrPool { pool: 3 };
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for row in 0..100 {
            let Value::Str(s) = g.generate(row, 100, &mut r) else { panic!() };
            seen.insert(s);
        }
        assert!(seen.len() <= 3);
        assert_eq!(g.distinct(100), 3);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let g = ColumnGen::Zipf { n: 100, s: 1.0 };
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        for row in 0..20_000 {
            let Value::Int(v) = g.generate(row, 20_000, &mut r) else { panic!() };
            assert!((0..100).contains(&v));
            counts[v as usize] += 1;
        }
        // Head dominates: value 0 far more frequent than value 50.
        assert!(counts[0] > counts[50] * 10, "{} vs {}", counts[0], counts[50]);
        // But the tail is populated.
        assert!(counts[50] > 0);
        assert_eq!(g.distinct(20_000), 100);
        assert_eq!(g.domain(), Some((0.0, 99.0)));
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let g = ColumnGen::Zipf { n: 10, s: 0.0 };
        let mut r = rng();
        let mut counts = vec![0u32; 10];
        for row in 0..10_000 {
            let Value::Int(v) = g.generate(row, 10_000, &mut r) else { panic!() };
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ColumnGen::ForeignKey { target_rows: 1000 };
        let mut a = rng();
        let mut b = rng();
        for row in 0..50 {
            assert_eq!(g.generate(row, 50, &mut a), g.generate(row, 50, &mut b));
        }
    }
}
