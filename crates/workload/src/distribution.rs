//! Query distributions: weighted templates that sample concrete SPJ
//! queries with controlled selectivities.
//!
//! A template fixes the query *shape* (tables, joins, restricted
//! columns and their selectivity ranges); sampling instantiates fresh
//! predicate constants. Selectivity control uses the column's equi-depth
//! histogram: a range predicate targeting a fraction `f` picks a random
//! start quantile `q` and spans `[quantile(q), quantile(q+f)]`.

use colt_catalog::{ColRef, ColumnStats, Database};
use colt_engine::{JoinPred, Query, SelPred};
use colt_storage::{Prng, Value};

/// How a template restricts one column.
#[derive(Debug, Clone, PartialEq)]
pub enum SelSpec {
    /// Equality with a fresh uniform value from the column's domain.
    Eq,
    /// Range covering a fraction of the rows, sampled uniformly from
    /// `[lo_frac, hi_frac]`.
    RangeFrac {
        /// Minimum fraction of rows covered.
        lo_frac: f64,
        /// Maximum fraction of rows covered.
        hi_frac: f64,
    },
}

/// One templated selection.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSelection {
    /// The restricted column.
    pub col: ColRef,
    /// Selectivity specification.
    pub spec: SelSpec,
}

/// A query template.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// Referenced tables.
    pub tables: Vec<colt_catalog::TableId>,
    /// Equi-join predicates.
    pub joins: Vec<JoinPred>,
    /// Templated selections.
    pub selections: Vec<TemplateSelection>,
}

impl QueryTemplate {
    /// Single-table template.
    pub fn single(table: colt_catalog::TableId, selections: Vec<TemplateSelection>) -> Self {
        QueryTemplate { tables: vec![table], joins: Vec::new(), selections }
    }

    /// Instantiate a concrete query.
    pub fn sample(&self, db: &Database, rng: &mut Prng) -> Query {
        let selections = self
            .selections
            .iter()
            .map(|ts| {
                let stats = db.table(ts.col.table).column_stats(ts.col.column);
                match &ts.spec {
                    SelSpec::Eq => SelPred::eq(ts.col, sample_domain_value(stats, rng)),
                    SelSpec::RangeFrac { lo_frac, hi_frac } => {
                        let f = rng.f64_range(*lo_frac, *hi_frac).clamp(0.0, 1.0);
                        let q0 = rng.f64_range(0.0, (1.0 - f).max(0.0));
                        let lo = quantile(stats, q0);
                        let hi = quantile(stats, (q0 + f).min(1.0));
                        SelPred::between(ts.col, lo, hi)
                    }
                }
            })
            .collect();
        Query { tables: self.tables.clone(), joins: self.joins.clone(), selections }
    }
}

/// A uniform value from the column's observed domain (integer-like
/// columns sample uniformly in `[min, max]`; other types pick an
/// existing histogram boundary).
fn sample_domain_value(stats: &ColumnStats, rng: &mut Prng) -> Value {
    match (&stats.min, &stats.max) {
        (Some(Value::Int(lo)), Some(Value::Int(hi))) => Value::Int(rng.int_range(*lo, *hi)),
        (Some(Value::Date(lo)), Some(Value::Date(hi))) => Value::Date(rng.int_range(*lo as i64, *hi as i64) as i32),
        _ => {
            if stats.bounds.is_empty() {
                Value::Int(0)
            } else {
                stats.bounds[rng.below(stats.bounds.len())].clone()
            }
        }
    }
}

/// Value at quantile `q ∈ [0, 1]` of the column's equi-depth histogram,
/// with linear interpolation inside the bucket.
pub fn quantile(stats: &ColumnStats, q: f64) -> Value {
    assert!(!stats.bounds.is_empty(), "quantile needs statistics");
    let nb = stats.bounds.len() - 1;
    let pos = q.clamp(0.0, 1.0) * nb as f64;
    let lo_idx = (pos.floor() as usize).min(nb);
    let hi_idx = (lo_idx + 1).min(nb);
    let frac = pos - lo_idx as f64;
    let lo = &stats.bounds[lo_idx];
    let hi = &stats.bounds[hi_idx];
    interpolate(lo, hi, frac)
}

fn interpolate(lo: &Value, hi: &Value, frac: f64) -> Value {
    match (lo, hi) {
        (Value::Int(a), Value::Int(b)) => Value::Int(a + ((*b - *a) as f64 * frac).round() as i64),
        (Value::Date(a), Value::Date(b)) => {
            Value::Date(a + ((*b - *a) as f64 * frac).round() as i32)
        }
        (Value::Float(a), Value::Float(b)) => Value::Float(a + (b - a) * frac),
        _ => {
            if frac < 0.5 {
                lo.clone()
            } else {
                hi.clone()
            }
        }
    }
}

/// A weighted mixture of query templates.
#[derive(Debug, Clone, Default)]
pub struct QueryDistribution {
    templates: Vec<(f64, QueryTemplate)>,
    total_weight: f64,
}

impl QueryDistribution {
    /// Empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a template with a weight.
    pub fn push(&mut self, weight: f64, template: QueryTemplate) {
        assert!(weight > 0.0, "weights must be positive");
        self.total_weight += weight;
        self.templates.push((weight, template));
    }

    /// Builder-style [`QueryDistribution::push`].
    pub fn with(mut self, weight: f64, template: QueryTemplate) -> Self {
        self.push(weight, template);
        self
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the distribution has no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Sample one query.
    pub fn sample(&self, db: &Database, rng: &mut Prng) -> Query {
        assert!(!self.templates.is_empty(), "cannot sample an empty distribution");
        let mut pick = rng.f64_range(0.0, self.total_weight);
        for (w, t) in &self.templates {
            if pick < *w {
                return t.sample(db, rng);
            }
            pick -= w;
        }
        // colt: allow(panic-policy) — sample() asserts a non-empty template list on entry
        self.templates.last().unwrap().1.sample(db, rng)
    }

    /// All columns restricted by any template — the distribution's
    /// relevant indices.
    pub fn relevant_columns(&self) -> Vec<ColRef> {
        let mut cols: Vec<ColRef> = self
            .templates
            .iter()
            .flat_map(|(_, t)| t.selections.iter().map(|s| s.col))
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableSchema};
    use colt_engine::selectivity::predicate_selectivity;
    use colt_storage::{row_from, ValueType};

    fn db() -> (Database, colt_catalog::TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("k", ValueType::Int), Column::new("d", ValueType::Date)],
        ));
        db.insert_rows(
            t,
            (0..50_000i64).map(|i| row_from(vec![Value::Int(i), Value::Date((i % 2000) as i32)])),
        );
        db.analyze_all();
        (db, t)
    }

    #[test]
    fn quantile_monotone_and_bounded() {
        let (db, t) = db();
        let stats = db.table(t).column_stats(0);
        let q0 = quantile(stats, 0.0);
        let q5 = quantile(stats, 0.5);
        let q1 = quantile(stats, 1.0);
        assert!(q0 <= q5 && q5 <= q1);
        assert_eq!(q0, Value::Int(0));
        assert_eq!(q1, Value::Int(49_999));
        // Mid-quantile near the median for uniform data.
        let Value::Int(v) = q5 else { panic!() };
        assert!((v - 25_000).abs() < 2_000, "got {v}");
    }

    #[test]
    fn range_frac_hits_target_selectivity() {
        let (db, t) = db();
        let col = ColRef::new(t, 0);
        let tpl = QueryTemplate::single(
            t,
            vec![TemplateSelection { col, spec: SelSpec::RangeFrac { lo_frac: 0.01, hi_frac: 0.01 } }],
        );
        let mut rng = Prng::new(3);
        for _ in 0..20 {
            let q = tpl.sample(&db, &mut rng);
            let sel = predicate_selectivity(&db, &q.selections[0]);
            assert!((0.002..0.05).contains(&sel), "selectivity {sel}");
        }
    }

    #[test]
    fn eq_sampling_in_domain() {
        let (db, t) = db();
        let col = ColRef::new(t, 1);
        let tpl =
            QueryTemplate::single(t, vec![TemplateSelection { col, spec: SelSpec::Eq }]);
        let mut rng = Prng::new(3);
        for _ in 0..20 {
            let q = tpl.sample(&db, &mut rng);
            let colt_engine::PredicateKind::Eq(Value::Date(d)) = &q.selections[0].kind else {
                panic!("expected date eq");
            };
            assert!((0..2000).contains(d));
        }
    }

    #[test]
    fn mixture_uses_all_templates() {
        let (db, t) = db();
        let c0 = ColRef::new(t, 0);
        let c1 = ColRef::new(t, 1);
        let dist = QueryDistribution::new()
            .with(1.0, QueryTemplate::single(t, vec![TemplateSelection { col: c0, spec: SelSpec::Eq }]))
            .with(1.0, QueryTemplate::single(t, vec![TemplateSelection { col: c1, spec: SelSpec::Eq }]));
        assert_eq!(dist.relevant_columns(), vec![c0, c1]);
        let mut rng = Prng::new(5);
        let mut seen = [false, false];
        for _ in 0..100 {
            let q = dist.sample(&db, &mut rng);
            seen[q.selections[0].col.column as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn sampling_is_deterministic() {
        let (db, t) = db();
        let col = ColRef::new(t, 0);
        let dist = QueryDistribution::new().with(
            1.0,
            QueryTemplate::single(
                t,
                vec![TemplateSelection { col, spec: SelSpec::RangeFrac { lo_frac: 0.01, hi_frac: 0.1 } }],
            ),
        );
        let mut a = Prng::new(9);
        let mut b = Prng::new(9);
        for _ in 0..10 {
            assert_eq!(dist.sample(&db, &mut a), dist.sample(&db, &mut b));
        }
    }
}
