//! The concrete workloads of the paper's experimental study (§6),
//! expressed over the four-instance TPC-H data set.
//!
//! * [`stable`] — a fixed query distribution with 18 relevant indices of
//!   varying benefit (Figure 3),
//! * [`shifting`] — four phases of 300 queries over different schema
//!   instances, bridged by 50-query gradual transitions, 1350 queries
//!   total, with some overlap between consecutive optimal index sets
//!   (Figures 4 and 5),
//! * [`noisy`] — a fixed distribution `Q1` with bursts from a disjoint
//!   distribution `Q2` making up 20% of the workload (Figure 6).
//!
//! Each preset also recommends the storage budget `B`: the paper chooses
//! `B` so that 3–6 of the relevant indices fit, making the selection
//! non-trivial.

use crate::distribution::{QueryDistribution, QueryTemplate, SelSpec, TemplateSelection};
use crate::tpch::TpchData;
use crate::workload::{self, NoisePlan};
use colt_catalog::{ColRef, Database};
use colt_engine::{JoinPred, Query};
use colt_storage::Prng;

/// A generated experiment workload.
#[derive(Debug, Clone)]
pub struct Preset {
    /// The query stream.
    pub queries: Vec<Query>,
    /// All columns any query restricts (the "relevant indices").
    pub relevant: Vec<ColRef>,
    /// Recommended on-line storage budget in pages.
    pub budget_pages: u64,
}

fn sel(col: ColRef, spec: SelSpec) -> TemplateSelection {
    TemplateSelection { col, spec }
}

/// Selective range: 0.05–0.5% of the rows — well inside the paper's
/// 0–2% "selective" bucket and comfortably below the index-scan
/// break-even of the cost model (≈0.7% for the largest tables under the
/// 4× random-page penalty), so the implied indices have high potential
/// benefit as the experiments require.
fn narrow() -> SelSpec {
    SelSpec::RangeFrac { lo_frac: 0.0005, hi_frac: 0.005 }
}

/// Non-selective range: 10–30% of the rows.
fn wide() -> SelSpec {
    SelSpec::RangeFrac { lo_frac: 0.10, hi_frac: 0.30 }
}

/// The fixed distribution of the stable-workload experiment: 18
/// relevant indices on instance `inst`, many with high potential
/// benefit, some deliberately unhelpful.
pub fn stable_distribution(data: &TpchData, inst: usize) -> QueryDistribution {
    let db = &data.db;
    let i = &data.instances[inst];
    let li = i.table("lineitem");
    let ord = i.table("orders");
    let cust = i.table("customer");
    let part = i.table("part");
    let ps = i.table("partsupp");
    let sup = i.table("supplier");
    let c = |t: &str, col: &str| i.col(db, t, col);

    QueryDistribution::new()
        // lineitem: selective date and price ranges, selective fk
        // equalities — prime index candidates on the largest table.
        .with(1.5, QueryTemplate::single(li, vec![sel(c("lineitem", "l_shipdate"), narrow())]))
        .with(
            1.2,
            QueryTemplate::single(
                li,
                vec![sel(c("lineitem", "l_partkey"), SelSpec::Eq), sel(c("lineitem", "l_quantity"), wide())],
            ),
        )
        .with(1.2, QueryTemplate::single(li, vec![sel(c("lineitem", "l_extendedprice"), narrow())]))
        .with(0.8, QueryTemplate::single(li, vec![sel(c("lineitem", "l_suppkey"), SelSpec::Eq)]))
        // orders
        .with(1.2, QueryTemplate::single(ord, vec![sel(c("orders", "o_orderdate"), narrow())]))
        .with(1.0, QueryTemplate::single(ord, vec![sel(c("orders", "o_totalprice"), narrow())]))
        .with(1.0, QueryTemplate::single(ord, vec![sel(c("orders", "o_custkey"), SelSpec::Eq)]))
        .with(0.6, QueryTemplate::single(ord, vec![sel(c("orders", "o_clerk"), SelSpec::Eq)]))
        // customer: one selective, one non-selective (low benefit).
        .with(0.8, QueryTemplate::single(cust, vec![sel(c("customer", "c_acctbal"), narrow())]))
        .with(0.5, QueryTemplate::single(cust, vec![sel(c("customer", "c_nationkey"), SelSpec::Eq)]))
        // part
        .with(0.8, QueryTemplate::single(part, vec![sel(c("part", "p_retailprice"), narrow())]))
        .with(0.6, QueryTemplate::single(part, vec![sel(c("part", "p_type"), SelSpec::Eq)]))
        // partsupp
        .with(0.8, QueryTemplate::single(ps, vec![sel(c("partsupp", "ps_supplycost"), narrow())]))
        .with(0.6, QueryTemplate::single(ps, vec![sel(c("partsupp", "ps_partkey"), SelSpec::Eq)]))
        // supplier
        .with(0.5, QueryTemplate::single(sup, vec![sel(c("supplier", "s_acctbal"), narrow())]))
        // joins: selective driver + join, exercising multi-table plans.
        .with(
            0.8,
            QueryTemplate {
                tables: vec![ord, cust],
                joins: vec![JoinPred::new(c("orders", "o_custkey"), c("customer", "c_custkey"))],
                selections: vec![
                    sel(c("orders", "o_orderdate"), narrow()),
                    sel(c("customer", "c_mktsegment"), SelSpec::Eq),
                ],
            },
        )
        .with(
            0.7,
            QueryTemplate {
                tables: vec![li, part],
                joins: vec![JoinPred::new(c("lineitem", "l_partkey"), c("part", "p_partkey"))],
                selections: vec![sel(c("part", "p_size"), SelSpec::Eq)],
            },
        )
}

/// Budget so that roughly 3–6 of the relevant indices fit: a quarter of
/// their total estimated size.
pub fn budget_for(db: &Database, relevant: &[ColRef]) -> u64 {
    budget_fraction(db, relevant, 4)
}

/// Budget as `1/denominator` of the total estimated size of the given
/// indices.
pub fn budget_fraction(db: &Database, relevant: &[ColRef], denominator: u64) -> u64 {
    let total: u64 = relevant.iter().map(|&c| db.index_estimate(c).pages).sum();
    (total / denominator.max(1)).max(1)
}

/// Stable workload (Figure 3): 500 queries from one fixed distribution.
pub fn stable(data: &TpchData, seed: u64) -> Preset {
    let dist = stable_distribution(data, 0);
    let mut rng = Prng::new(seed);
    let queries = workload::fixed(&dist, 500, &data.db, &mut rng);
    let relevant = dist.relevant_columns();
    let budget_pages = budget_for(&data.db, &relevant);
    Preset { queries, relevant, budget_pages }
}

/// A compact phase distribution focusing on a few attributes of one
/// instance, with its own selectivity profile.
fn phase_distribution(data: &TpchData, inst: usize, flavor: usize) -> QueryDistribution {
    let db = &data.db;
    let i = &data.instances[inst];
    let li = i.table("lineitem");
    let ord = i.table("orders");
    let cust = i.table("customer");
    let part = i.table("part");
    let ps = i.table("partsupp");
    let c = |t: &str, col: &str| i.col(db, t, col);

    match flavor % 4 {
        0 => QueryDistribution::new()
            .with(2.0, QueryTemplate::single(li, vec![sel(c("lineitem", "l_shipdate"), narrow())]))
            .with(1.5, QueryTemplate::single(li, vec![sel(c("lineitem", "l_partkey"), SelSpec::Eq)]))
            .with(1.0, QueryTemplate::single(ord, vec![sel(c("orders", "o_orderdate"), narrow())]))
            .with(0.7, QueryTemplate::single(cust, vec![sel(c("customer", "c_acctbal"), narrow())])),
        1 => QueryDistribution::new()
            .with(2.0, QueryTemplate::single(li, vec![sel(c("lineitem", "l_extendedprice"), narrow())]))
            .with(1.2, QueryTemplate::single(li, vec![sel(c("lineitem", "l_suppkey"), SelSpec::Eq)]))
            .with(1.0, QueryTemplate::single(ps, vec![sel(c("partsupp", "ps_supplycost"), narrow())]))
            .with(0.7, QueryTemplate::single(part, vec![sel(c("part", "p_retailprice"), narrow())])),
        2 => QueryDistribution::new()
            .with(2.0, QueryTemplate::single(ord, vec![sel(c("orders", "o_totalprice"), narrow())]))
            .with(1.5, QueryTemplate::single(ord, vec![sel(c("orders", "o_custkey"), SelSpec::Eq)]))
            .with(1.0, QueryTemplate::single(li, vec![sel(c("lineitem", "l_receiptdate"), narrow())]))
            .with(
                0.8,
                QueryTemplate {
                    tables: vec![ord, cust],
                    joins: vec![JoinPred::new(c("orders", "o_custkey"), c("customer", "c_custkey"))],
                    selections: vec![sel(c("orders", "o_orderdate"), narrow())],
                },
            ),
        _ => QueryDistribution::new()
            .with(2.0, QueryTemplate::single(li, vec![sel(c("lineitem", "l_commitdate"), narrow())]))
            .with(1.2, QueryTemplate::single(part, vec![sel(c("part", "p_type"), SelSpec::Eq)]))
            .with(1.0, QueryTemplate::single(ps, vec![sel(c("partsupp", "ps_partkey"), SelSpec::Eq)]))
            .with(0.7, QueryTemplate::single(ord, vec![sel(c("orders", "o_clerk"), SelSpec::Eq)])),
    }
}

/// Shifting workload (Figures 4 and 5): four 300-query phases over
/// different instances, with 50-query gradual transitions (1350 queries
/// total). Consecutive phases share one template so the optimal index
/// sets overlap, as in the paper.
pub fn shifting(data: &TpchData, seed: u64) -> Preset {
    let mut dists = Vec::new();
    for phase in 0..4 {
        // Each phase focuses on its own instance & flavor...
        let mut d = phase_distribution(data, phase % data.instances.len(), phase);
        // ...but overlaps with the previous phase through one template.
        if phase > 0 {
            let prev = phase_distribution(data, (phase - 1) % data.instances.len(), phase - 1);
            let carry =
                prev.relevant_columns().first().map(|&col| {
                    QueryTemplate::single(col.table, vec![sel(col, narrow())])
                });
            if let Some(t) = carry {
                d.push(0.5, t);
            }
        }
        dists.push(d);
    }
    let mut rng = Prng::new(seed);
    let queries = workload::phased(&dists, 300, 50, &data.db, &mut rng);
    let mut relevant: Vec<ColRef> = dists.iter().flat_map(|d| d.relevant_columns()).collect();
    relevant.sort_unstable();
    relevant.dedup();
    let budget_pages = budget_for(&data.db, &relevant);
    Preset { queries, relevant, budget_pages }
}

/// Noisy workload (Figure 6): base distribution `Q1` on instance 0 with
/// bursts from `Q2` on instance 1 — the optimal index sets are disjoint
/// by construction. Noise is 20% of the workload; the first 100 queries
/// are pure `Q1`.
pub fn noisy(data: &TpchData, burst_len: usize, seed: u64) -> (Preset, NoisePlan) {
    let q1 = phase_distribution(data, 0, 0);
    let q2 = phase_distribution(data, 1, 1);
    debug_assert!(
        q1.relevant_columns().iter().all(|c| !q2.relevant_columns().contains(c)),
        "Q1 and Q2 optimal sets must be disjoint"
    );
    let plan = NoisePlan::paper(burst_len);
    let mut rng = Prng::new(seed);
    let queries = workload::with_noise(&q1, &q2, &plan, &data.db, &mut rng);
    let mut relevant = q1.relevant_columns();
    relevant.extend(q2.relevant_columns());
    relevant.sort_unstable();
    relevant.dedup();
    // The budget must make reacting to the noise *possible* but not
    // free: 5/8 of the union's total size fits Q1's optimal set, while
    // materializing Q2's dominant index requires evicting useful Q1
    // incumbents — the mistake whose cost Figure 6 measures.
    let total: u64 = relevant.iter().map(|&c| data.db.index_estimate(c).pages).sum();
    let budget_pages = (total * 5 / 8).max(1);
    (Preset { queries, relevant, budget_pages }, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch;

    fn data() -> TpchData {
        tpch::generate(0.004, 11)
    }

    #[test]
    fn stable_has_18_relevant_indices() {
        let data = data();
        let p = stable(&data, 1);
        assert_eq!(p.queries.len(), 500);
        assert_eq!(p.relevant.len(), 18, "relevant: {:?}", p.relevant);
        assert!(p.budget_pages > 0);
        for q in &p.queries {
            q.validate().expect("well-formed query");
        }
    }

    #[test]
    fn shifting_is_1350_queries_with_4_phases() {
        let data = data();
        let p = shifting(&data, 1);
        assert_eq!(p.queries.len(), 1350);
        for q in &p.queries {
            q.validate().expect("well-formed query");
        }
        // The four phases must focus on different column sets: compare
        // the columns used in the middle of phase 1 and phase 2.
        let cols = |range: std::ops::Range<usize>| -> std::collections::BTreeSet<ColRef> {
            p.queries[range].iter().flat_map(|q| q.candidate_columns()).collect()
        };
        let p1 = cols(100..200);
        let p2 = cols(450..550);
        assert!(p1.intersection(&p2).count() < p1.len(), "phases must differ");
    }

    #[test]
    fn noisy_has_disjoint_distributions() {
        let data = data();
        let (p, plan) = noisy(&data, 40, 1);
        assert_eq!(p.queries.len(), plan.total);
        assert!((plan.noise_fraction() - 0.2).abs() < 1e-9);
        // First 100 queries draw from Q1 only (instance 0 tables).
        let inst0_tables: std::collections::BTreeSet<_> =
            (0..8).map(|i| data.instances[0].table(["region","nation","supplier","customer","part","partsupp","orders","lineitem"][i])).collect();
        for q in &p.queries[..100] {
            for t in &q.tables {
                assert!(inst0_tables.contains(t), "warm-up must be pure Q1");
            }
        }
    }

    #[test]
    fn budget_fits_3_to_6_relevant_indices() {
        let data = data();
        let p = stable(&data, 1);
        let mut sizes: Vec<u64> =
            p.relevant.iter().map(|&c| data.db.index_estimate(c).pages).collect();
        sizes.sort_unstable();
        // Greedily count how many of the smallest fit (upper bound on
        // count) and how many of the largest fit (lower bound).
        let fit = |sizes: &[u64]| {
            let mut used = 0u64;
            let mut n = 0;
            for &s in sizes {
                if used + s <= p.budget_pages {
                    used += s;
                    n += 1;
                }
            }
            n
        };
        let max_fit = fit(&sizes);
        let large_first: Vec<u64> = sizes.iter().rev().copied().collect();
        let min_fit = fit(&large_first);
        assert!(min_fit >= 1, "at least one large index must fit");
        // The budget must force a real choice: several indices fit, but
        // never all of them. (The paper's "3 to 6" holds at full scale;
        // this test runs at a toy scale where tiny-table floors compress
        // the size spread.)
        assert!(max_fit >= 3, "max fit {max_fit} (budget {})", p.budget_pages);
        assert!(max_fit < p.relevant.len(), "budget must not fit everything");
    }
}
