//! The shipped tree must be lint-clean: every wall-clock read, hash
//! iteration, print, and panic site is either structurally fine or
//! carries a reasoned waiver. This is the analyzer's own copy of the
//! check each library crate also runs.

#[test]
fn shipped_workspace_has_no_violations() {
    let root = colt_analyze::workspace_root();
    let report = colt_analyze::check_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(report.is_clean(), "{}", report.render());
}
