//! End-to-end exit-code contract for the `colt-analyze` binary:
//! 0 on a clean tree, 1 when violations are found, 2 on usage errors.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_colt-analyze"))
}

/// A scratch tree under target/ (unique per test to allow parallelism).
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/analyze-cli-tests")
        .join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("reset scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write(root: &Path, rel: &str, src: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(path, src).expect("write source");
}

#[test]
fn check_exits_zero_on_clean_tree() {
    let root = scratch("clean");
    write(&root, "crates/core/src/lib.rs", "pub fn ok() -> u32 { 1 }\n");
    let out = bin().args(["--check", "--root"]).arg(&root).output().expect("run");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn check_exits_one_on_violation_and_names_it() {
    let root = scratch("dirty");
    write(
        &root,
        "crates/engine/src/lib.rs",
        "pub fn shout() { println!(\"hi\"); }\n",
    );
    let out = bin().args(["--check", "--root"]).arg(&root).output().expect("run");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/engine/src/lib.rs:1: output-hygiene:"),
        "missing file:line: lint prefix in:\n{stdout}"
    );
}

#[test]
fn check_json_reports_counts() {
    let root = scratch("json");
    write(
        &root,
        "crates/core/src/lib.rs",
        "pub fn boom(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = bin()
        .args(["--check", "--json", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"violation_count\": 1"), "{stdout}");
    assert!(stdout.contains("panic-policy"), "{stdout}");
}

#[test]
fn every_violation_fixture_fails_the_binary() {
    // The ISSUE's acceptance bar: --check exits non-zero on every fixture
    // violation, run end-to-end through the binary.
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&fixtures)
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with("_violation.rs"))
        })
        .collect();
    entries.sort();
    assert!(!entries.is_empty());
    for fixture in entries {
        let src = std::fs::read_to_string(&fixture).expect("fixture readable");
        let first = src.lines().next().unwrap_or_default();
        let rel = first
            .split_whitespace()
            .find_map(|p| p.strip_prefix("path="))
            .expect("directive path");
        let name = fixture.file_name().expect("name").to_string_lossy().to_string();
        let root = scratch(name.trim_end_matches(".rs"));
        write(&root, rel, &src);
        let out = bin().args(["--check", "--root"]).arg(&root).output().expect("run");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name}: expected exit 1, got {:?}\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn list_and_explain_succeed() {
    let out = bin().arg("--list").output().expect("run");
    assert_eq!(out.status.code(), Some(0));
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(listing.contains("hash-iteration"), "{listing}");

    let out = bin().args(["--explain", "layering"]).output().expect("run");
    assert_eq!(out.status.code(), Some(0));

    let out = bin().args(["--explain", "no-such-lint"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_usage_exits_two() {
    let out = bin().arg("--frobnicate").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
}
