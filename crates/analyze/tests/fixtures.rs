//! The fixture corpus: every file in `tests/fixtures/` declares, on its
//! first line, the workspace path it impersonates and the lint set it
//! must trigger:
//!
//! ```text
//! //! analyze-fixture: path=crates/core/src/fixture.rs expect=hash-iteration
//! //! analyze-fixture: path=crates/core/src/fixture.rs expect=clean
//! ```
//!
//! `_violation` fixtures must trigger exactly their intended lint;
//! `_waived` fixtures carry waivers and must come out clean (which also
//! proves the waivers themselves count as used).

use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

struct Fixture {
    file: String,
    path: String,
    expect: BTreeSet<String>,
    source: String,
}

fn parse_directive(file: &str, src: &str) -> Fixture {
    let first = src.lines().next().unwrap_or_default();
    let rest = first
        .strip_prefix("//! analyze-fixture:")
        .unwrap_or_else(|| panic!("{file}: first line must be an analyze-fixture directive"));
    let mut path = None;
    let mut expect = BTreeSet::new();
    for part in rest.split_whitespace() {
        if let Some(p) = part.strip_prefix("path=") {
            path = Some(p.to_string());
        } else if let Some(e) = part.strip_prefix("expect=") {
            for lint in e.split(',') {
                if lint != "clean" {
                    expect.insert(lint.to_string());
                }
            }
        }
    }
    Fixture {
        file: file.to_string(),
        path: path.unwrap_or_else(|| panic!("{file}: directive missing path=")),
        expect,
        source: src.to_string(),
    }
}

fn load_fixtures() -> Vec<Fixture> {
    let mut out = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fixture corpus must not be empty");
    for p in entries {
        let name = p.file_name().unwrap_or_default().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&p).expect("fixture readable");
        out.push(parse_directive(&name, &src));
    }
    out
}

#[test]
fn every_fixture_triggers_exactly_its_intended_lints() {
    for f in load_fixtures() {
        let violations = colt_analyze::analyze_source(&f.path, &f.source);
        let got: BTreeSet<String> =
            violations.iter().map(|v| v.lint.name().to_string()).collect();
        assert_eq!(
            got, f.expect,
            "{}: expected lints {:?}, got {:?} ({:#?})",
            f.file, f.expect, got, violations
        );
    }
}

#[test]
fn every_lint_has_a_positive_fixture() {
    let covered: BTreeSet<String> =
        load_fixtures().into_iter().flat_map(|f| f.expect).collect();
    for lint in colt_analyze::rules::Lint::all() {
        assert!(
            covered.contains(lint.name()),
            "no fixture triggers lint `{}`",
            lint.name()
        );
    }
}

#[test]
fn violation_fixtures_report_real_lines() {
    for f in load_fixtures() {
        for v in colt_analyze::analyze_source(&f.path, &f.source) {
            let lines = f.source.lines().count() as u32;
            assert!(
                v.line >= 1 && v.line <= lines,
                "{}: violation line {} out of range 1..={lines}",
                f.file,
                v.line
            );
            assert_eq!(v.file, f.path);
            let rendered = v.render();
            assert!(
                rendered.starts_with(&format!("{}:{}: {}:", v.file, v.line, v.lint.name())),
                "render format drifted: {rendered}"
            );
        }
    }
}
