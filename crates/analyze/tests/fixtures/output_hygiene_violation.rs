//! analyze-fixture: path=crates/engine/src/fixture.rs expect=output-hygiene
pub fn report(rows: usize) {
    println!("rows: {rows}");
}
