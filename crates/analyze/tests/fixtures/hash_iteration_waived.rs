//! analyze-fixture: path=crates/core/src/fixture.rs expect=clean
use std::collections::HashMap;

pub fn keys_sorted() -> Vec<u32> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let mut out = Vec::new();
    // colt: allow(hash-iteration) — fixture: output is sorted immediately below
    for (k, _) in &m {
        out.push(*k);
    }
    out.sort_unstable();
    out
}
