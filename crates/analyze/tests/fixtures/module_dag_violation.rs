//! analyze-fixture: path=crates/storage/src/value.rs expect=module-dag

use crate::btree::BPlusTree;

pub fn lowest_key(t: &BPlusTree) -> u64 {
    t.min_key()
}
