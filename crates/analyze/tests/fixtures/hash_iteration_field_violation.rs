//! analyze-fixture: path=crates/core/src/fixture.rs expect=hash-iteration
//! Persistent hash-keyed state is flagged even without iteration — the
//! shape the `cluster.rs` BTreeMap fix guards against.
use std::collections::HashMap;

pub struct ClusterIndex {
    by_key: HashMap<String, u32>,
}

impl ClusterIndex {
    pub fn get(&self, key: &str) -> Option<u32> {
        self.by_key.get(key).copied()
    }
}
