//! analyze-fixture: path=crates/core/src/fixture.rs expect=hash-iteration
use std::collections::HashMap;

pub fn keys_in_hash_order() -> Vec<u32> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let mut out = Vec::new();
    for (k, _) in &m {
        out.push(*k);
    }
    out
}
