//! analyze-fixture: path=crates/core/src/fixture.rs expect=clean
// colt: allow(wall-clock) — fixture: timing never reaches results
use std::time::Instant;

pub fn elapsed_ms() -> f64 {
    // colt: allow(wall-clock) — fixture: timing never reaches results
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64() * 1e3
}
