//! analyze-fixture: path=crates/core/src/fixture.rs expect=clean

pub fn tune(ready: bool) -> Option<u32> {
    // colt: allow(span-pairing) — begin marker is wall-time only by design
    let _ = colt_obs::span("tuner.begin");
    let span = colt_obs::span("tuner.epoch");
    if !ready {
        // colt: allow(span-pairing) — a skipped epoch charges nothing by design
        return None;
    }
    span.sim_ms(1.0);
    Some(1)
}
