//! analyze-fixture: path=crates/core/src/fixture.rs expect=nondet-seed
use std::collections::hash_map::RandomState;

pub fn ambient() -> RandomState {
    RandomState::new()
}
