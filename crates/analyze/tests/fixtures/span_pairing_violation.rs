//! analyze-fixture: path=crates/core/src/fixture.rs expect=span-pairing

pub fn tune(ready: bool) -> Option<u32> {
    let _ = colt_obs::span("tuner.begin");
    let span = colt_obs::span("tuner.epoch");
    if !ready {
        return None;
    }
    span.sim_ms(1.0);
    Some(1)
}
