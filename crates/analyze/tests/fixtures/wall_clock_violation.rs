//! analyze-fixture: path=crates/core/src/fixture.rs expect=wall-clock
use std::time::Instant;

pub fn elapsed_ms() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64() * 1e3
}
