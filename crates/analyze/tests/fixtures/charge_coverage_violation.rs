//! analyze-fixture: path=crates/storage/src/fixture.rs expect=charge-coverage

pub struct HeapFixture {
    rows: Vec<u64>,
}

impl HeapFixture {
    pub fn read_row(&self, at: usize) -> Option<&u64> {
        self.rows.get(at)
    }
}
