//! analyze-fixture: path=crates/storage/src/fixture.rs expect=layering
use colt_engine::Query;

pub fn peek(q: &Query) -> usize {
    q.tables.len()
}
