//! analyze-fixture: path=crates/core/src/fixture.rs expect=unused-waiver
// colt: allow(panic-policy) — nothing on this line or the next can panic
pub fn nothing() {}
