//! analyze-fixture: path=crates/storage/src/fixture.rs expect=clean
// colt: allow(layering) — fixture: transitional shim scheduled for removal
use colt_engine::Query;

pub fn peek(q: &Query) -> usize {
    q.tables.len()
}
