//! analyze-fixture: path=crates/core/src/obs_export.rs expect=decision-kind

pub fn kind_label(kind: &str) -> &'static str {
    match kind {
        "index_create" => "create",
        "index_drop" => "drop",
        _ => "other",
    }
}
