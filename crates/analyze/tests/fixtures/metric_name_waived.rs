//! analyze-fixture: path=crates/engine/src/fixture.rs expect=clean
pub fn run() {
    colt_obs::counter("engine.op.seq_scan", 1);
    colt_obs::span_sim("engine.exec.batch", 2.0);
    // colt: allow(metric-name) — legacy dashboard still scrapes the old flat name
    colt_obs::gauge("fillfactor", 0.5);
}
