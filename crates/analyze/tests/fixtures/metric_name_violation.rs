//! analyze-fixture: path=crates/engine/src/fixture.rs expect=metric-name
pub fn run() {
    // Malformed: single segment, no area.
    colt_obs::counter("rows", 1);
    // Mis-owned: tuner.* belongs to colt-core, not colt-engine.
    colt_obs::span_sim("tuner.budget.spent", 1.0);
    // Unknown area prefix.
    colt_obs::gauge("enginex.cache.fill", 0.5);
    // Literal inside a match arm is still a metric name.
    colt_obs::counter(
        match 1 {
            1 => "engine.op.seq_scan",
            _ => "BadName.Mixed",
        },
        1,
    );
}
