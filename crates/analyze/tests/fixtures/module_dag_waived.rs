//! analyze-fixture: path=crates/storage/src/value.rs expect=clean

// colt: allow(module-dag) — transitional edge while btree keys move here
use crate::btree::BPlusTree;

pub fn lowest_key(t: &BPlusTree) -> u64 {
    t.min_key()
}
