//! analyze-fixture: path=crates/core/src/fixture.rs expect=panic-policy
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
