//! analyze-fixture: path=crates/engine/src/fixture.rs expect=clean
pub fn report(rows: usize) {
    // colt: allow(output-hygiene) — fixture: debugging aid behind a feature gate
    println!("rows: {rows}");
}
