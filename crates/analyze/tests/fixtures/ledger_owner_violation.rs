//! analyze-fixture: path=crates/harness/src/fixture.rs expect=ledger-owner
pub fn forge() {
    // index_create is owned by colt-core's tuner stack.
    colt_obs::decision(colt_obs::DecisionRecord::new("index_create"));
    // Unknown kinds are flagged everywhere.
    colt_obs::decision(colt_obs::DecisionRecord::new("index_ceate"));
}
