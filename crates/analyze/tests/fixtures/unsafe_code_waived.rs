//! analyze-fixture: path=crates/storage/src/fixture.rs expect=clean
pub fn read_raw(x: &u32) -> u32 {
    // colt: allow(unsafe-code) — fixture: sound by &u32 validity; mirrors ptr::read docs
    unsafe { std::ptr::read(x) }
}
