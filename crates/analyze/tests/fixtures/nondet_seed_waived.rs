//! analyze-fixture: path=crates/core/src/fixture.rs expect=clean
// colt: allow(nondet-seed) — fixture: hasher state never observable in results
use std::collections::hash_map::RandomState;

pub fn ambient() -> bool {
    // colt: allow(nondet-seed) — fixture: hasher state never observable in results
    let _state = RandomState::new();
    true
}
