//! analyze-fixture: path=crates/core/src/fixture.rs expect=bad-waiver
// colt: allow(panic-policy)
pub fn nothing() {}
