//! analyze-fixture: path=crates/harness/src/fixture.rs expect=clean
pub fn replay() {
    // colt: allow(ledger-owner) — synthetic record feeding the renderer's golden test helper
    colt_obs::decision(colt_obs::DecisionRecord::new("index_create"));
}
