//! analyze-fixture: path=crates/core/src/fixture.rs expect=clean
pub fn first(xs: &[u32]) -> u32 {
    // colt: allow(panic-policy) — fixture: caller guarantees a non-empty slice
    *xs.first().unwrap()
}
