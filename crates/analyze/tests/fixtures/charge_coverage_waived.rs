//! analyze-fixture: path=crates/storage/src/fixture.rs expect=clean

pub struct HeapFixture {
    rows: Vec<u64>,
}

impl HeapFixture {
    // colt: allow(charge-coverage) — debug accessor, never on a costed path
    pub fn read_row(&self, at: usize) -> Option<&u64> {
        self.rows.get(at)
    }
}
