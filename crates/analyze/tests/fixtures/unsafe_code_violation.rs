//! analyze-fixture: path=crates/storage/src/fixture.rs expect=unsafe-code
pub fn read_raw(x: &u32) -> u32 {
    unsafe { std::ptr::read(x) }
}
