//! analyze-fixture: path=crates/core/src/obs_export.rs expect=clean

pub fn kind_label(kind: &str) -> &'static str {
    match kind {
        // colt: allow(decision-kind) — fixture renders a deliberate subset
        "index_create" => "create",
        _ => "other",
    }
}
