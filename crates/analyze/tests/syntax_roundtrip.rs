//! Parser round-trip over the real corpus: the recovered block tree
//! must brace-balance every `.rs` file in the workspace.
//!
//! The unit tests in `syntax.rs` cover crafted snippets; this test is
//! the adversarial one — the workspace itself is the input. If any
//! source construct (raw string, nested comment, char literal, struct
//! expression) desynchronizes the lexer or the block builder, some
//! file here stops balancing and the failure names it.

use colt_analyze::lexer::{lex, Tok};
use colt_analyze::SyntaxIndex;
use std::path::{Path, PathBuf};

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn block_tree_brace_balances_every_workspace_file() {
    let root = colt_analyze::workspace_root();
    let mut files = Vec::new();
    rust_files(&root, &mut files);
    files.sort();
    assert!(files.len() >= 100, "workspace walk found only {} files — wrong root?", files.len());

    for path in files {
        let src = std::fs::read_to_string(&path).expect("read source");
        let lexed = lex(&src);
        let ix = SyntaxIndex::build(&lexed.tokens);
        let rel = path.strip_prefix(&root).unwrap_or(&path).display().to_string();

        assert!(ix.balanced, "{rel}: block tree did not brace-balance");
        // Every block (bar the synthetic file-root at index 0) pairs a
        // real `{` with a real `}`, in order, and sits strictly inside
        // its parent.
        for (i, b) in ix.blocks.iter().enumerate().skip(1) {
            assert!(
                matches!(lexed.tokens[b.open].tok, Tok::Punct('{')),
                "{rel}: block {i} opens on a non-brace token"
            );
            assert!(
                matches!(lexed.tokens[b.close].tok, Tok::Punct('}')),
                "{rel}: block {i} closes on a non-brace token"
            );
            assert!(b.open < b.close, "{rel}: block {i} is reversed");
            if let Some(p) = b.parent {
                if p != 0 {
                    let par = &ix.blocks[p];
                    assert!(
                        par.open < b.open && b.close < par.close,
                        "{rel}: block {i} escapes its parent {p}"
                    );
                }
            }
        }
        // ...and the tree covers every open brace exactly once — except
        // braces inside `use` trees, which the builder consumes as part
        // of the use declaration rather than as blocks. A missed brace
        // anywhere else means the builder silently skipped a region.
        let mut opens = 0usize;
        let mut in_use = false;
        for t in &lexed.tokens {
            match &t.tok {
                Tok::Ident(s) if s == "use" => in_use = true,
                Tok::Punct(';') => in_use = false,
                Tok::Punct('{') if !in_use => opens += 1,
                _ => {}
            }
        }
        assert_eq!(
            opens,
            ix.blocks.len() - 1,
            "{rel}: {opens} open braces in the token stream but {} non-root blocks in the tree",
            ix.blocks.len() - 1
        );
    }
}
