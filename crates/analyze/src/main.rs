//! CLI for the workspace invariant checker.
//!
//! ```text
//! colt-analyze --check [--json] [--root <path>]   # scan; exit 1 on violations
//! colt-analyze --list                             # lint catalogue
//! colt-analyze --explain <lint>                   # long-form description
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use colt_analyze::rules::Lint;

const USAGE: &str = "\
colt-analyze: workspace invariant checker

USAGE:
    colt-analyze --check [--json] [--root <path>]
    colt-analyze --list
    colt-analyze --explain <lint-name>

MODES:
    --check     Scan every .rs file under the workspace root and report
                violations as `file:line: lint-name: message`.
                Exit code 0 if clean, 1 if violations were found.
    --json      With --check: emit the JSON summary instead of text.
    --root      Override the workspace root (default: inferred from the
                crate's own location).
    --list      Print the lint catalogue (name + one-line summary).
    --explain   Print the long-form description of one lint.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut explain_target: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => mode = Some("check"),
            "--list" => mode = Some("list"),
            "--explain" => {
                mode = Some("explain");
                i += 1;
                match args.get(i) {
                    Some(name) => explain_target = Some(name.clone()),
                    None => {
                        eprintln!("error: --explain requires a lint name\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => json = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --root requires a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    match mode {
        Some("list") => {
            for lint in Lint::all() {
                println!("{:<16} {}", lint.name(), lint.summary());
            }
            ExitCode::SUCCESS
        }
        Some("explain") => {
            let name = explain_target.unwrap_or_default();
            match Lint::by_name(&name) {
                Some(lint) => {
                    println!("{}: {}\n\n{}", lint.name(), lint.summary(), lint.explain());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("error: unknown lint `{name}`; try --list");
                    ExitCode::from(2)
                }
            }
        }
        Some("check") => {
            let root = root.unwrap_or_else(colt_analyze::workspace_root);
            match colt_analyze::check_workspace(&root) {
                Ok(report) => {
                    if json {
                        println!("{}", report.to_json());
                    } else {
                        print!("{}", report.render());
                    }
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: scan of {} failed: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!("error: pick one of --check, --list, --explain\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
