//! CLI for the workspace invariant checker.
//!
//! ```text
//! colt-analyze --check [--json] [--root <path>] [--waivers]
//!              [--sarif <path>] [--github] [--no-cache]
//! colt-analyze --list                             # lint catalogue
//! colt-analyze --explain <lint>                   # long-form description
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use colt_analyze::rules::Lint;

const USAGE: &str = "\
colt-analyze: workspace invariant checker

USAGE:
    colt-analyze --check [--json] [--root <path>] [--waivers]
                 [--sarif <path>] [--github] [--no-cache]
    colt-analyze --list
    colt-analyze --explain <lint-name>

MODES:
    --check     Scan every .rs file under the workspace root and report
                violations as `file:line: lint-name: message`.
                Exit code 0 if clean, 1 if violations were found.
    --json      With --check: emit the JSON summary instead of text.
    --waivers   With --check: also print the per-lint waiver budget
                table and fail (exit 1) when any [waiver-budget] cap
                from colt-analyze.toml is exceeded.
    --sarif     With --check: also write a SARIF 2.1.0 document to the
                given path (for CI code-scanning upload).
    --github    With --check: also emit GitHub `::error` workflow
                annotations for each violation.
    --no-cache  With --check: skip the content-hash incremental cache
                under target/ (a cold scan).
    --root      Override the workspace root (default: inferred from the
                crate's own location).
    --list      Print the lint catalogue (name + one-line summary).
    --explain   Print the long-form description of one lint.
";

/// Escape a value for a GitHub workflow-command message.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut json = false;
    let mut waivers = false;
    let mut github = false;
    let mut no_cache = false;
    let mut sarif: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut explain_target: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => mode = Some("check"),
            "--list" => mode = Some("list"),
            "--explain" => {
                mode = Some("explain");
                i += 1;
                match args.get(i) {
                    Some(name) => explain_target = Some(name.clone()),
                    None => {
                        eprintln!("error: --explain requires a lint name\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => json = true,
            "--waivers" => waivers = true,
            "--github" => github = true,
            "--no-cache" => no_cache = true,
            "--sarif" => {
                i += 1;
                match args.get(i) {
                    Some(p) => sarif = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --sarif requires a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("error: --root requires a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    match mode {
        Some("list") => {
            for lint in Lint::all() {
                println!("{:<18} {}", lint.name(), lint.summary());
            }
            ExitCode::SUCCESS
        }
        Some("explain") => {
            let name = explain_target.unwrap_or_default();
            match Lint::by_name(&name) {
                Some(lint) => {
                    println!("{}: {}\n\n{}", lint.name(), lint.summary(), lint.explain());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("error: unknown lint `{name}`; try --list");
                    ExitCode::from(2)
                }
            }
        }
        Some("check") => {
            let root = root.unwrap_or_else(colt_analyze::workspace_root);
            match colt_analyze::check_workspace_cached(&root, !no_cache) {
                Ok((report, manifest)) => {
                    if json {
                        println!("{}", report.to_json());
                    } else {
                        print!("{}", report.render());
                        println!("{}", report.render_timing());
                    }
                    if let Some(sarif_path) = &sarif {
                        if let Err(e) = std::fs::write(sarif_path, report.to_sarif()) {
                            eprintln!("error: writing SARIF to {}: {e}", sarif_path.display());
                            return ExitCode::from(2);
                        }
                        eprintln!("sarif: wrote {}", sarif_path.display());
                    }
                    if github {
                        for v in &report.violations {
                            println!(
                                "::error file={},line={},title=colt-analyze {}::{}",
                                v.file,
                                v.line,
                                v.lint.name(),
                                gh_escape(&v.message)
                            );
                        }
                    }
                    let mut over_budget = false;
                    if waivers {
                        let (table, over) = report.render_waivers(&manifest);
                        print!("{table}");
                        over_budget = over;
                    }
                    if report.is_clean() && !over_budget {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: scan of {} failed: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!("error: pick one of --check, --list, --explain\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
