//! The lint catalogue and per-file rule checks.
//!
//! Each lint enforces one workspace contract (see DESIGN.md, "Static
//! analysis & invariants"). Rules work on the token stream of
//! [`crate::lexer::lex`] — identifier- and punctuation-level matching,
//! no parsing — so they are fast, dependency-free, and immune to
//! comment/string false positives.

use crate::lexer::{ident, Tok, Token};
use crate::SourceFile;
use std::collections::BTreeSet;

/// A named workspace invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Wall-clock reads outside the observability/harness allowlist.
    WallClock,
    /// Iteration over `HashMap`/`HashSet` in result-producing crates.
    HashIteration,
    /// A `colt_*` import that violates the crate layering DAG.
    Layering,
    /// stdout/stderr writes outside the sanctioned sinks.
    OutputHygiene,
    /// `unwrap`/`expect`/`panic!` in non-test library code.
    PanicPolicy,
    /// Ambient randomness or env-dependent behavior in the kernel.
    NondetSeed,
    /// Any `unsafe` code (the workspace forbids it).
    UnsafeCode,
    /// A waiver annotation without a justification.
    BadWaiver,
    /// A waiver annotation that suppressed nothing.
    UnusedWaiver,
}

impl Lint {
    /// Every lint, in reporting order.
    pub fn all() -> &'static [Lint] {
        &[
            Lint::WallClock,
            Lint::HashIteration,
            Lint::Layering,
            Lint::OutputHygiene,
            Lint::PanicPolicy,
            Lint::NondetSeed,
            Lint::UnsafeCode,
            Lint::BadWaiver,
            Lint::UnusedWaiver,
        ]
    }

    /// The kebab-case name used in reports and waivers.
    pub fn name(self) -> &'static str {
        match self {
            Lint::WallClock => "wall-clock",
            Lint::HashIteration => "hash-iteration",
            Lint::Layering => "layering",
            Lint::OutputHygiene => "output-hygiene",
            Lint::PanicPolicy => "panic-policy",
            Lint::NondetSeed => "nondet-seed",
            Lint::UnsafeCode => "unsafe-code",
            Lint::BadWaiver => "bad-waiver",
            Lint::UnusedWaiver => "unused-waiver",
        }
    }

    /// Look a lint up by its report name.
    pub fn by_name(name: &str) -> Option<Lint> {
        Lint::all().iter().copied().find(|l| l.name() == name)
    }

    /// One-line summary (for `--list`).
    pub fn summary(self) -> &'static str {
        match self {
            Lint::WallClock => "no Instant/SystemTime outside colt-obs, the parallel harness, and colt-bench",
            Lint::HashIteration => "no HashMap/HashSet iteration in colt-core/colt-engine (order is nondeterministic)",
            Lint::Layering => "colt_* imports must follow the DAG obs < storage < catalog < engine < {core, workload, offline} < harness < bench",
            Lint::OutputHygiene => "stdout only in bench bins / harness report; stderr only through the colt-obs sink",
            Lint::PanicPolicy => "no unwrap/expect/panic!/unreachable!/todo! in non-test library code",
            Lint::NondetSeed => "no ambient randomness anywhere; no env reads in the deterministic kernel crates",
            Lint::UnsafeCode => "no unsafe code anywhere in the workspace",
            Lint::BadWaiver => "every waiver must carry a justification after the dash",
            Lint::UnusedWaiver => "a waiver that suppresses nothing is an error (it has rotted)",
        }
    }

    /// Full rationale (for `--explain`).
    pub fn explain(self) -> &'static str {
        match self {
            Lint::WallClock => "The experiment pipeline's headline contract is bit-identical \
artifacts at any thread count and any COLT_OBS level. Reading the wall clock \
(std::time::Instant / SystemTime) inside result-producing code couples output to \
scheduling. Wall-clock reads are confined to colt-obs (span timing), \
colt-harness's parallel driver (cell wall-time, stderr only), and colt-bench \
(micro-benchmark runner). Everything else must use the simulated clock that the \
cost model provides.",
            Lint::HashIteration => "std::collections::HashMap/HashSet iterate in an order that \
depends on the process-random hasher seed, so any result derived from iteration \
order is nondeterministic across runs. In colt-core and colt-engine — the crates \
that produce experiment results — maps that are iterated must be BTreeMap/BTreeSet \
or must sort before iterating, and hash-keyed struct fields (persistent state) are \
flagged even without iteration. Pure point-lookup hash map locals (e.g. a hash-join \
build table) are fine and are not flagged.",
            Lint::Layering => "Crates form a DAG: obs < storage < catalog < engine < \
{core, workload, offline} < harness < bench. A lower layer importing a higher one \
(e.g. colt-engine using colt_core) creates a cycle Cargo may tolerate via dev-deps \
but the architecture does not. The checker flags any colt_* path reference outside \
the importing crate's allowed set. Test code is exempt (dev-dependencies are not \
part of the runtime DAG).",
            Lint::OutputHygiene => "Experiment stdout is a diffable artifact: CI compares it \
byte-for-byte across thread counts and COLT_OBS levels. A stray println! in a \
library crate breaks every exhibit at once. stdout writes are allowed only in \
colt-bench's binaries, colt-analyze's own CLI, and colt_harness::report; stderr \
writes only inside colt-obs's sink (everything else routes diagnostics through \
colt_obs::progress / emit).",
            Lint::PanicPolicy => "Library code must surface failures to the caller, not abort \
the process: a panic inside the tuner kills a whole parallel batch. unwrap(), \
expect(), panic!, unreachable!, todo! and unimplemented! are banned in non-test \
library code unless the line carries a waiver naming the invariant that makes the \
panic unreachable.",
            Lint::NondetSeed => "All randomness flows from colt_core::prng::Prng (or \
colt-storage's local copy) seeded explicitly from configuration, so every run is \
replayable. Ambient sources (RandomState, DefaultHasher, thread_rng, from_entropy) \
are banned everywhere; reading the environment (std::env::var) is banned inside \
the deterministic kernel crates (storage, catalog, engine, core, workload, \
offline) — configuration enters through ColtConfig, not ambient state.",
            Lint::UnsafeCode => "The workspace forbids unsafe code: every library crate carries \
#![forbid(unsafe_code)] (colt-harness #![deny(unsafe_code)], see its lib.rs). The \
static check catches the token early and in files the compiler attributes might \
miss (new crates, build scripts).",
            Lint::BadWaiver => "The single escape hatch for every lint is \
`// colt: allow(<lint>) — <reason>` on the flagged line or the line above. A \
waiver with no reason defeats auditing — the reviewer cannot tell why the \
violation is acceptable.",
            Lint::UnusedWaiver => "Waivers rot: the code they excused gets refactored away and \
the stale annotation then silently licenses a future violation. A waiver that \
suppresses no violation is itself reported, so the waiver set always matches the \
real exception set.",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated lint.
    pub lint: Lint,
    /// Human message.
    pub message: String,
}

impl Violation {
    /// `file:line: lint-name: message` — the CI-greppable format.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.lint.name(), self.message)
    }
}

/// File role within its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Library source (`crates/*/src/**`, root `src/lib.rs`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Tests, benches, examples — exempt from most rules.
    Test,
}

/// Crates whose results must be bit-deterministic (the "kernel").
const KERNEL: &[&str] = &["storage", "catalog", "engine", "core", "workload", "offline"];

/// Every crate in the workspace, by `colt_`-stripped name. Used to tell
/// a real `colt_engine` crate reference apart from an unrelated local
/// identifier that merely starts with `colt_`.
const WORKSPACE_CRATES: &[&str] = &[
    "obs", "storage", "catalog", "engine", "core", "workload", "offline", "harness", "bench",
    "analyze", "repro",
];

/// The layering DAG: which `colt_*` crates each crate may reference.
/// `None` means "any" (the root crate, bench, tests).
fn allowed_deps(krate: &str) -> Option<&'static [&'static str]> {
    match krate {
        "obs" | "analyze" => Some(&[]),
        "storage" => Some(&["obs"]),
        "catalog" => Some(&["obs", "storage"]),
        "engine" => Some(&["obs", "storage", "catalog"]),
        "core" | "workload" | "offline" => Some(&["obs", "storage", "catalog", "engine"]),
        "harness" => {
            Some(&["obs", "storage", "catalog", "engine", "core", "workload", "offline"])
        }
        _ => None, // bench, the root crate: top of the DAG
    }
}

/// Hash-typed iteration methods whose order depends on the hasher seed.
const HASH_ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys", "into_values",
    "drain", "retain",
];

/// Ambient-randomness identifiers banned workspace-wide.
const AMBIENT_RANDOM: &[&str] =
    &["RandomState", "DefaultHasher", "thread_rng", "from_entropy", "SipHasher"];

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Compute `#[cfg(test)]` line regions from the token stream: the
/// attribute plus the item it covers (brace-matched block, or through
/// the terminating `;`).
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 5 < tokens.len() {
        let is_cfg_test = tokens[i].tok == Tok::Punct('#')
            && tokens[i + 1].tok == Tok::Punct('[')
            && ident(&tokens[i + 2]) == Some("cfg")
            && tokens[i + 3].tok == Tok::Punct('(')
            && ident(&tokens[i + 4]) == Some("test")
            && tokens[i + 5].tok == Tok::Punct(')');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the covered item's extent: first `{` opens a
        // brace-matched block; a `;` before any `{` ends the item.
        let mut j = i + 6;
        let mut end_line = start_line;
        let mut depth = 0usize;
        let mut opened = false;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => {
                    depth += 1;
                    opened = true;
                }
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        end_line = tokens[j].line;
                        break;
                    }
                }
                Tok::Punct(';') if !opened => {
                    end_line = tokens[j].line;
                    break;
                }
                _ => {}
            }
            end_line = tokens[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Run every rule over one file, producing raw (pre-waiver) violations.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &file.lexed.tokens;
    let test = |line: u32| file.kind == Kind::Test || in_regions(&file.test_regions, line);
    let push = |out: &mut Vec<Violation>, line: u32, lint: Lint, message: String| {
        out.push(Violation { file: file.rel.clone(), line, lint, message });
    };
    let krate = file.crate_name.as_deref();

    // --- wall-clock ---
    let wall_allowed = matches!(krate, Some("obs") | Some("bench") | Some("analyze"))
        || (krate == Some("harness") && file.rel.ends_with("parallel.rs"));
    // --- hash-iteration: collect hash-typed binding names first ---
    let hash_scope = matches!(krate, Some("core") | Some("engine")) && file.kind == Kind::Lib;
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    if hash_scope {
        for i in 0..toks.len() {
            if matches!(ident(&toks[i]), Some("HashMap") | Some("HashSet")) && i >= 2 {
                let prev = &toks[i - 1].tok;
                if (*prev == Tok::Punct(':') || *prev == Tok::Punct('='))
                    && toks[i - 2].tok != Tok::Punct(':')
                {
                    if let Some(name) = ident(&toks[i - 2]) {
                        hash_names.insert(name);
                        // A hash-keyed *struct field* is persistent kernel
                        // state and is flagged outright: even if lookup-only
                        // today, it is one refactor away from leaking hash
                        // order into results. Locals (build tables etc.) are
                        // only flagged when actually iterated.
                        let field = *prev == Tok::Punct(':')
                            && toks[..i - 1].iter().rev().find_map(|t| match ident(t) {
                                Some("let") | Some("fn") => Some(false),
                                Some("struct") => Some(true),
                                _ => None,
                            }) == Some(true);
                        if field && !(file.kind == Kind::Test || in_regions(&file.test_regions, toks[i].line)) {
                            out.push(Violation {
                                file: file.rel.clone(),
                                line: toks[i].line,
                                lint: Lint::HashIteration,
                                message: format!("hash-keyed struct field `{name}`: persistent state in a kernel crate must be BTreeMap/BTreeSet (hash order leaks into results)"),
                            });
                        }
                    }
                }
            }
        }
    }

    for i in 0..toks.len() {
        let line = toks[i].line;
        if test(line) {
            continue;
        }
        let Some(id) = ident(&toks[i]) else { continue };
        let next = toks.get(i + 1).map(|t| &t.tok);
        let next2 = toks.get(i + 2).map(|t| &t.tok);

        // wall-clock
        if !wall_allowed && (id == "Instant" || id == "SystemTime") {
            push(
                &mut out,
                line,
                Lint::WallClock,
                format!("`{id}` read outside the wall-clock allowlist (colt-obs, harness parallel driver, colt-bench); use the simulated clock"),
            );
        }

        // nondet-seed: ambient randomness (everywhere) and env reads
        // (kernel crates only).
        if AMBIENT_RANDOM.contains(&id) {
            push(
                &mut out,
                line,
                Lint::NondetSeed,
                format!("ambient randomness `{id}`; all randomness must flow from an explicitly seeded Prng"),
            );
        }
        if id == "env"
            && next == Some(&Tok::Punct(':'))
            && next2 == Some(&Tok::Punct(':'))
            && matches!(toks.get(i + 3).and_then(|t| ident(t)), Some("var") | Some("var_os"))
            && krate.is_some_and(|k| KERNEL.contains(&k))
        {
            push(
                &mut out,
                line,
                Lint::NondetSeed,
                "environment read inside a deterministic kernel crate; thread configuration through ColtConfig".to_string(),
            );
        }

        // unsafe-code
        if id == "unsafe" {
            push(&mut out, line, Lint::UnsafeCode, "unsafe code is forbidden workspace-wide".to_string());
        }

        // layering — only identifiers that name an actual workspace
        // crate count; locals like `colt_total` are not crate edges.
        if let Some(target) = id.strip_prefix("colt_").filter(|t| WORKSPACE_CRATES.contains(t)) {
            if file.kind != Kind::Test {
                if let Some(k) = krate {
                    if let Some(allowed) = allowed_deps(k) {
                        if target != k && !allowed.contains(&target) {
                            push(
                                &mut out,
                                line,
                                Lint::Layering,
                                format!("crate colt-{k} must not reference colt_{target}: the layering DAG only allows {{{}}}", allowed.join(", ")),
                            );
                        }
                    }
                }
            }
        }

        // output-hygiene
        let is_macro = next == Some(&Tok::Punct('!'));
        let stdout_allowed = (matches!(krate, Some("bench") | Some("analyze"))
            && file.kind == Kind::Bin)
            || (krate == Some("harness") && file.rel.ends_with("report.rs"));
        let stderr_allowed = stdout_allowed || krate == Some("obs");
        if is_macro && (id == "println" || id == "print") && !stdout_allowed {
            push(
                &mut out,
                line,
                Lint::OutputHygiene,
                format!("`{id}!` outside bench binaries / harness report; stdout is a diffable artifact — route output through the caller or the event sink"),
            );
        }
        if id == "stdout" && next == Some(&Tok::Punct('(')) && !stdout_allowed {
            push(
                &mut out,
                line,
                Lint::OutputHygiene,
                "direct stdout() handle outside bench binaries / harness report".to_string(),
            );
        }
        if is_macro && (id == "eprintln" || id == "eprint" || id == "dbg") && !stderr_allowed {
            push(
                &mut out,
                line,
                Lint::OutputHygiene,
                format!("`{id}!` outside the colt-obs sink; route diagnostics through colt_obs::progress / emit"),
            );
        }

        // panic-policy (library code only; binaries may abort).
        if file.kind == Kind::Lib {
            let method_call = i >= 1
                && toks[i - 1].tok == Tok::Punct('.')
                && next == Some(&Tok::Punct('('));
            if method_call && (id == "unwrap" || id == "expect") {
                // `.expect(...)?` is error propagation through a
                // user-defined Result-returning method (e.g. the parser's
                // `expect(Tok::…)?`), not Option/Result::expect aborting.
                let mut j = i + 2; // first token inside the parens
                let mut depth = 1usize;
                while depth > 0 {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('(')) => depth += 1,
                        Some(Tok::Punct(')')) => depth -= 1,
                        None => break,
                        _ => {}
                    }
                    j += 1;
                }
                let propagated = toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct('?'));
                if !propagated {
                    push(
                        &mut out,
                        line,
                        Lint::PanicPolicy,
                        format!(".{id}() in library code; return an error or waive with the invariant that rules the panic out"),
                    );
                }
            }
            if is_macro
                && matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
            {
                push(
                    &mut out,
                    line,
                    Lint::PanicPolicy,
                    format!("`{id}!` in library code; return an error or waive with the invariant that rules the panic out"),
                );
            }
        }

        // hash-iteration
        if hash_scope {
            let receiver_is_hash = hash_names.contains(id);
            if receiver_is_hash
                && next == Some(&Tok::Punct('.'))
                && toks
                    .get(i + 2)
                    .and_then(|t| ident(t))
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct('('))
            {
                let method = ident(&toks[i + 2]).unwrap_or("");
                push(
                    &mut out,
                    line,
                    Lint::HashIteration,
                    format!("`.{method}()` on hash-typed `{id}`: iteration order is nondeterministic — use BTreeMap/BTreeSet or sort first"),
                );
            }
            // `for x in &name {` / `for (k, v) in name {`
            if id == "in" {
                let mut j = i + 1;
                loop {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('&')) => j += 1,
                        Some(Tok::Ident(s)) if s == "mut" => j += 1,
                        _ => break,
                    }
                }
                let mut last_ident: Option<&str> = None;
                while let Some(t) = toks.get(j) {
                    match &t.tok {
                        Tok::Ident(s) => last_ident = Some(s.as_str()),
                        Tok::Punct('.') => {}
                        Tok::Punct('{') => break,
                        _ => {
                            last_ident = None;
                            break;
                        }
                    }
                    j += 1;
                }
                if let Some(name) = last_ident {
                    if hash_names.contains(name) {
                        push(
                            &mut out,
                            line,
                            Lint::HashIteration,
                            format!("`for … in {name}` iterates a hash map: order is nondeterministic — use BTreeMap/BTreeSet or sort first"),
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_round_trip() {
        for &l in Lint::all() {
            assert_eq!(Lint::by_name(l.name()), Some(l));
            assert!(!l.summary().is_empty());
            assert!(!l.explain().is_empty());
        }
        assert_eq!(Lint::by_name("no-such-lint"), None);
    }

    #[test]
    fn test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lexed = crate::lexer::lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_test_use_statement_region_is_one_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let lexed = crate::lexer::lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(1, 2)]);
    }
}
