//! The lint catalogue and per-file rule checks.
//!
//! Each lint enforces one workspace contract (see DESIGN.md, "Static
//! analysis & invariants"). Token-level rules match identifiers and
//! punctuation straight off [`crate::lexer::lex`]'s stream; the
//! flow-sensitive rules (span-pairing, charge-coverage, module-dag,
//! decision-kind) additionally consult the per-file
//! [`crate::syntax::SyntaxIndex`] and the workspace
//! [`crate::manifest::Manifest`]. Either way the pass stays fast,
//! dependency-free, and immune to comment/string false positives.

use crate::lexer::{ident, str_lit, Tok, Token};
use crate::manifest::Manifest;
use crate::syntax::ExitKind;
use crate::SourceFile;
use std::collections::BTreeSet;

/// A named workspace invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Wall-clock reads outside the observability/harness allowlist.
    WallClock,
    /// Iteration over `HashMap`/`HashSet` in result-producing crates.
    HashIteration,
    /// A `colt_*` import that violates the crate layering DAG.
    Layering,
    /// stdout/stderr writes outside the sanctioned sinks.
    OutputHygiene,
    /// `unwrap`/`expect`/`panic!` in non-test library code.
    PanicPolicy,
    /// Ambient randomness or env-dependent behavior in the kernel.
    NondetSeed,
    /// A metric name literal that breaks the `area.noun[.verb]`
    /// convention or whose area prefix doesn't match the emitting crate.
    MetricName,
    /// A decision-ledger record kind emitted outside its owning crate.
    LedgerOwner,
    /// A `colt_obs::span` guard that is discarded or whose `.sim_ms()`
    /// can be skipped by an early exit.
    SpanPairing,
    /// A public colt-storage fn that touches page state without
    /// charging `IoStats` (and is not on the manifest allowlist).
    ChargeCoverage,
    /// An intra-crate `use crate::…` edge that violates the module
    /// order declared in `colt-analyze.toml`.
    ModuleDag,
    /// A renderer file that fails to name every decision-ledger kind.
    DecisionKind,
    /// Any `unsafe` code (the workspace forbids it).
    UnsafeCode,
    /// A waiver annotation without a justification.
    BadWaiver,
    /// A waiver annotation that suppressed nothing.
    UnusedWaiver,
}

impl Lint {
    /// Every lint, in reporting order.
    pub fn all() -> &'static [Lint] {
        &[
            Lint::WallClock,
            Lint::HashIteration,
            Lint::Layering,
            Lint::OutputHygiene,
            Lint::PanicPolicy,
            Lint::NondetSeed,
            Lint::MetricName,
            Lint::LedgerOwner,
            Lint::SpanPairing,
            Lint::ChargeCoverage,
            Lint::ModuleDag,
            Lint::DecisionKind,
            Lint::UnsafeCode,
            Lint::BadWaiver,
            Lint::UnusedWaiver,
        ]
    }

    /// The kebab-case name used in reports and waivers.
    pub fn name(self) -> &'static str {
        match self {
            Lint::WallClock => "wall-clock",
            Lint::HashIteration => "hash-iteration",
            Lint::Layering => "layering",
            Lint::OutputHygiene => "output-hygiene",
            Lint::PanicPolicy => "panic-policy",
            Lint::NondetSeed => "nondet-seed",
            Lint::MetricName => "metric-name",
            Lint::LedgerOwner => "ledger-owner",
            Lint::SpanPairing => "span-pairing",
            Lint::ChargeCoverage => "charge-coverage",
            Lint::ModuleDag => "module-dag",
            Lint::DecisionKind => "decision-kind",
            Lint::UnsafeCode => "unsafe-code",
            Lint::BadWaiver => "bad-waiver",
            Lint::UnusedWaiver => "unused-waiver",
        }
    }

    /// Look a lint up by its report name.
    pub fn by_name(name: &str) -> Option<Lint> {
        Lint::all().iter().copied().find(|l| l.name() == name)
    }

    /// One-line summary (for `--list`).
    pub fn summary(self) -> &'static str {
        match self {
            Lint::WallClock => "no Instant/SystemTime outside colt-obs, the parallel harness, and colt-bench",
            Lint::HashIteration => "no HashMap/HashSet iteration in colt-core/colt-engine (order is nondeterministic)",
            Lint::Layering => "colt_* imports must follow the DAG obs < storage < catalog < engine < {core, workload, offline} < harness < bench",
            Lint::OutputHygiene => "stdout only in bench bins / harness report; stderr only through the colt-obs sink",
            Lint::PanicPolicy => "no unwrap/expect/panic!/unreachable!/todo! in non-test library code",
            Lint::NondetSeed => "no ambient randomness anywhere; no env reads in the deterministic kernel crates",
            Lint::MetricName => "span/counter/gauge names must be dot-separated `area.noun[.verb]` with an area prefix owned by the emitting crate",
            Lint::LedgerOwner => "decision-ledger record kinds may only be emitted from their owning crate",
            Lint::SpanPairing => "a colt_obs::span guard must be bound (not `_`) and reach its .sim_ms() on every path",
            Lint::ChargeCoverage => "public colt-storage fns touching heap/btree page state must charge IoStats or be allowlisted",
            Lint::ModuleDag => "intra-crate `use crate::…` edges must follow the module order in colt-analyze.toml",
            Lint::DecisionKind => "renderer files must name every decision-ledger kind (no silently dropped records)",
            Lint::UnsafeCode => "no unsafe code anywhere in the workspace",
            Lint::BadWaiver => "every waiver must carry a justification after the dash",
            Lint::UnusedWaiver => "a waiver that suppresses nothing is an error (it has rotted)",
        }
    }

    /// Full rationale (for `--explain`).
    pub fn explain(self) -> &'static str {
        match self {
            Lint::WallClock => "The experiment pipeline's headline contract is bit-identical \
artifacts at any thread count and any COLT_OBS level. Reading the wall clock \
(std::time::Instant / SystemTime) inside result-producing code couples output to \
scheduling. Wall-clock reads are confined to colt-obs (span timing), \
colt-harness's parallel driver (cell wall-time, stderr only), and colt-bench \
(micro-benchmark runner). Everything else must use the simulated clock that the \
cost model provides.",
            Lint::HashIteration => "std::collections::HashMap/HashSet iterate in an order that \
depends on the process-random hasher seed, so any result derived from iteration \
order is nondeterministic across runs. In colt-core and colt-engine — the crates \
that produce experiment results — maps that are iterated must be BTreeMap/BTreeSet \
or must sort before iterating, and hash-keyed struct fields (persistent state) are \
flagged even without iteration. Pure point-lookup hash map locals (e.g. a hash-join \
build table) are fine and are not flagged.",
            Lint::Layering => "Crates form a DAG: obs < storage < catalog < engine < \
{core, workload, offline} < harness < bench. A lower layer importing a higher one \
(e.g. colt-engine using colt_core) creates a cycle Cargo may tolerate via dev-deps \
but the architecture does not. The checker flags any colt_* path reference outside \
the importing crate's allowed set. Test code is exempt (dev-dependencies are not \
part of the runtime DAG).",
            Lint::OutputHygiene => "Experiment stdout is a diffable artifact: CI compares it \
byte-for-byte across thread counts and COLT_OBS levels. A stray println! in a \
library crate breaks every exhibit at once. stdout writes are allowed only in \
colt-bench's binaries, colt-analyze's own CLI, and colt_harness::report; stderr \
writes only inside colt-obs's sink (everything else routes diagnostics through \
colt_obs::progress / emit).",
            Lint::PanicPolicy => "Library code must surface failures to the caller, not abort \
the process: a panic inside the tuner kills a whole parallel batch. unwrap(), \
expect(), panic!, unreachable!, todo! and unimplemented! are banned in non-test \
library code unless the line carries a waiver naming the invariant that makes the \
panic unreachable.",
            Lint::NondetSeed => "All randomness flows from colt_core::prng::Prng (or \
colt-storage's local copy) seeded explicitly from configuration, so every run is \
replayable. Ambient sources (RandomState, DefaultHasher, thread_rng, from_entropy) \
are banned everywhere; reading the environment (std::env::var) is banned inside \
the deterministic kernel crates (storage, catalog, engine, core, workload, \
offline) — configuration enters through ColtConfig, not ambient state.",
            Lint::MetricName => "Counters, spans, and gauges are merged across run cells and \
rendered into exhibit tables by name, so a malformed or mis-prefixed name silently \
fragments a series (`tuner.budget.spent` vs `tunr.budget_spent` never aggregate). \
Every name literal passed to colt_obs::span / counter / gauge / observe must be \
lowercase dot-separated segments (`area.noun` or `area.noun.verb`), and the area \
prefix must belong to the emitting crate: storage/catalog/engine name their own \
crate, `profiler.*`/`organizer.*`/`tuner.*` belong to colt-core, `harness.*` to \
colt-harness, `bench.*` to colt-bench. Progress events (colt_obs::progress) are \
human-facing and exempt.",
            Lint::LedgerOwner => "The decision ledger is the audit trail that explains every \
index the tuner builds or drops. Each record kind has exactly one owning component \
(whatif_probe/cluster_assign/knapsack/index_create/index_drop/budget_change all \
belong to colt-core's tuner stack); a record emitted from anywhere else would \
forge tuner history, so DecisionRecord::new(<kind>) with a known kind is flagged \
outside the owning crate, and unknown kinds are flagged everywhere (they would \
render as unexplained rows in the flight report).",
            Lint::UnsafeCode => "The workspace forbids unsafe code: every library crate carries \
#![forbid(unsafe_code)] (colt-harness #![deny(unsafe_code)], see its lib.rs). The \
static check catches the token early and in files the compiler attributes might \
miss (new crates, build scripts).",
            Lint::BadWaiver => "The single escape hatch for every lint is \
`// colt: allow(<lint>) — <reason>` on the flagged line or the line above. A \
waiver with no reason defeats auditing — the reviewer cannot tell why the \
violation is acceptable.",
            Lint::UnusedWaiver => "Waivers rot: the code they excused gets refactored away and \
the stale annotation then silently licenses a future violation. A waiver that \
suppresses no violation is itself reported, so the waiver set always matches the \
real exception set.",
            Lint::SpanPairing => "A colt_obs::span guard is the unit of both wall-time and \
simulated-cost attribution: the RAII drop records wall time, and an explicit \
.sim_ms(…) call charges simulated cost. Binding the guard to `_` drops it on the \
same statement (the span covers nothing), and a return/break/continue between the \
binding and its .sim_ms(…) silently loses the simulated charge on that path. The \
`?` operator is exempt: error paths carry no simulated cost by design, and the \
RAII drop still records wall time. Guards that never call .sim_ms(…) are \
wall-time-only and are fine as long as they are bound to a named (or `_`-prefixed) \
binding.",
            Lint::ChargeCoverage => "The paper's cost model is enforced by IoStats page \
charging: every heap or B+ tree page touched must be charged, or simulated cost \
drifts from the physical design the tuner reasons about. Any public colt-storage \
fn whose body reaches page state (the heap's `rows`, the tree's `arena`, or the \
page walkers descend/leftmost_leaf) must either take/construct an IoStats or be \
listed in colt-analyze.toml's [charge-coverage] uncharged allowlist — a reviewed, \
documented inventory of zero-I/O accessors — so vectorized fast paths like \
scan_batches/lookup_into cannot silently skip charging.",
            Lint::ModuleDag => "The inter-crate layering lint stops at crate boundaries; \
inside a crate, modules can still tangle into cycles (batch ↔ executor was real). \
colt-analyze.toml declares each crate's [modules.<crate>] order and this lint \
flags any `use crate::<m>` or inline `crate::<m>::…` path that points at a module \
later in (or missing from) the order. lib.rs, main.rs, bins, and test code are \
exempt: the DAG governs the library's internal structure, not its public facade.",
            Lint::DecisionKind => "The flight recorder is only as trustworthy as its \
renderers: a DecisionRecord kind that obs_export's serializer or the report \
renderer does not know is silently dropped from exhibits, which is how audit \
trails rot. Files listed under [decision-kinds] renderers must mention every kind \
in colt_obs::LEDGER_KINDS as a string literal (a match arm, schema row, or table \
entry); adding a kind to the ledger forces the renderers to handle it in the same \
change.",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated lint.
    pub lint: Lint,
    /// Human message.
    pub message: String,
}

impl Violation {
    /// `file:line: lint-name: message` — the CI-greppable format.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.lint.name(), self.message)
    }
}

/// File role within its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Library source (`crates/*/src/**`, root `src/lib.rs`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Tests, benches, examples — exempt from most rules.
    Test,
}

/// Crates whose results must be bit-deterministic (the "kernel").
const KERNEL: &[&str] = &["storage", "catalog", "engine", "core", "workload", "offline"];

/// Every crate in the workspace, by `colt_`-stripped name. Used to tell
/// a real `colt_engine` crate reference apart from an unrelated local
/// identifier that merely starts with `colt_`.
const WORKSPACE_CRATES: &[&str] = &[
    "obs", "storage", "catalog", "engine", "core", "workload", "offline", "harness", "bench",
    "analyze", "repro",
];

/// The layering DAG: which `colt_*` crates each crate may reference.
/// `None` means "any" (the root crate, bench, tests).
fn allowed_deps(krate: &str) -> Option<&'static [&'static str]> {
    match krate {
        "obs" | "analyze" => Some(&[]),
        "storage" => Some(&["obs"]),
        "catalog" => Some(&["obs", "storage"]),
        "engine" => Some(&["obs", "storage", "catalog"]),
        "core" | "workload" | "offline" => Some(&["obs", "storage", "catalog", "engine"]),
        "harness" => {
            Some(&["obs", "storage", "catalog", "engine", "core", "workload", "offline"])
        }
        _ => None, // bench, the root crate: top of the DAG
    }
}

/// Hash-typed iteration methods whose order depends on the hasher seed.
const HASH_ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys", "into_values",
    "drain", "retain",
];

/// Ambient-randomness identifiers banned workspace-wide.
const AMBIENT_RANDOM: &[&str] =
    &["RandomState", "DefaultHasher", "thread_rng", "from_entropy", "SipHasher"];

/// colt-obs entry points whose first argument (and any string literal in
/// the call, e.g. a `match` over access paths) is a merged metric name.
const METRIC_FNS: &[&str] = &["span", "counter", "gauge", "observe", "span_sim"];

/// Decision-ledger record kinds and the crate that owns each (mirrors
/// `colt_obs::LEDGER_KINDS`; colt-analyze depends on nothing, and the
/// obs crate's `every_ledger_kind_names_a_real_crate` test plus the
/// workspace-clean test keep the two tables honest).
const LEDGER_KIND_OWNERS: &[(&str, &str)] = &[
    ("whatif_probe", "core"),
    ("whatif_skip", "core"),
    ("cluster_assign", "core"),
    ("knapsack", "core"),
    ("index_create", "core"),
    ("index_drop", "core"),
    ("budget_change", "core"),
];

/// Metric area prefixes and the crate that owns each.
fn metric_area_owner(prefix: &str) -> Option<&'static str> {
    Some(match prefix {
        "storage" => "storage",
        "catalog" => "catalog",
        "engine" => "engine",
        "profiler" | "organizer" | "tuner" => "core",
        "workload" => "workload",
        "offline" => "offline",
        "harness" => "harness",
        "bench" => "bench",
        "obs" => "obs",
        _ => return None,
    })
}

/// Is `name` a well-formed metric name: at least two non-empty
/// dot-separated segments of `[a-z0-9_]`?
fn well_formed_metric(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Compute `#[cfg(test)]` line regions from the token stream: the
/// attribute plus the item it covers (brace-matched block, or through
/// the terminating `;`).
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 5 < tokens.len() {
        let is_cfg_test = tokens[i].tok == Tok::Punct('#')
            && tokens[i + 1].tok == Tok::Punct('[')
            && ident(&tokens[i + 2]) == Some("cfg")
            && tokens[i + 3].tok == Tok::Punct('(')
            && ident(&tokens[i + 4]) == Some("test")
            && tokens[i + 5].tok == Tok::Punct(')');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the covered item's extent: first `{` opens a
        // brace-matched block; a `;` before any `{` ends the item.
        let mut j = i + 6;
        let mut end_line = start_line;
        let mut depth = 0usize;
        let mut opened = false;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => {
                    depth += 1;
                    opened = true;
                }
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        end_line = tokens[j].line;
                        break;
                    }
                }
                Tok::Punct(';') if !opened => {
                    end_line = tokens[j].line;
                    break;
                }
                _ => {}
            }
            end_line = tokens[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Run every rule over one file, producing raw (pre-waiver) violations.
pub fn check_file(file: &SourceFile, manifest: &Manifest) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &file.lexed.tokens;
    let test = |line: u32| file.kind == Kind::Test || in_regions(&file.test_regions, line);
    let push = |out: &mut Vec<Violation>, line: u32, lint: Lint, message: String| {
        out.push(Violation { file: file.rel.clone(), line, lint, message });
    };
    let krate = file.crate_name.as_deref();

    // --- wall-clock ---
    let wall_allowed = matches!(krate, Some("obs") | Some("bench") | Some("analyze"))
        || (krate == Some("harness") && file.rel.ends_with("parallel.rs"));
    // --- hash-iteration: collect hash-typed binding names first ---
    let hash_scope = matches!(krate, Some("core") | Some("engine")) && file.kind == Kind::Lib;
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    if hash_scope {
        for i in 0..toks.len() {
            if matches!(ident(&toks[i]), Some("HashMap") | Some("HashSet")) && i >= 2 {
                let prev = &toks[i - 1].tok;
                if (*prev == Tok::Punct(':') || *prev == Tok::Punct('='))
                    && toks[i - 2].tok != Tok::Punct(':')
                {
                    if let Some(name) = ident(&toks[i - 2]) {
                        hash_names.insert(name);
                        // A hash-keyed *struct field* is persistent kernel
                        // state and is flagged outright: even if lookup-only
                        // today, it is one refactor away from leaking hash
                        // order into results. Locals (build tables etc.) are
                        // only flagged when actually iterated.
                        let field = *prev == Tok::Punct(':')
                            && toks[..i - 1].iter().rev().find_map(|t| match ident(t) {
                                Some("let") | Some("fn") => Some(false),
                                Some("struct") => Some(true),
                                _ => None,
                            }) == Some(true);
                        if field && !(file.kind == Kind::Test || in_regions(&file.test_regions, toks[i].line)) {
                            out.push(Violation {
                                file: file.rel.clone(),
                                line: toks[i].line,
                                lint: Lint::HashIteration,
                                message: format!("hash-keyed struct field `{name}`: persistent state in a kernel crate must be BTreeMap/BTreeSet (hash order leaks into results)"),
                            });
                        }
                    }
                }
            }
        }
    }

    for i in 0..toks.len() {
        let line = toks[i].line;
        if test(line) {
            continue;
        }
        let Some(id) = ident(&toks[i]) else { continue };
        let next = toks.get(i + 1).map(|t| &t.tok);
        let next2 = toks.get(i + 2).map(|t| &t.tok);

        // wall-clock
        if !wall_allowed && (id == "Instant" || id == "SystemTime") {
            push(
                &mut out,
                line,
                Lint::WallClock,
                format!("`{id}` read outside the wall-clock allowlist (colt-obs, harness parallel driver, colt-bench); use the simulated clock"),
            );
        }

        // nondet-seed: ambient randomness (everywhere) and env reads
        // (kernel crates only).
        if AMBIENT_RANDOM.contains(&id) {
            push(
                &mut out,
                line,
                Lint::NondetSeed,
                format!("ambient randomness `{id}`; all randomness must flow from an explicitly seeded Prng"),
            );
        }
        if id == "env"
            && next == Some(&Tok::Punct(':'))
            && next2 == Some(&Tok::Punct(':'))
            && matches!(toks.get(i + 3).and_then(|t| ident(t)), Some("var") | Some("var_os"))
            && krate.is_some_and(|k| KERNEL.contains(&k))
        {
            push(
                &mut out,
                line,
                Lint::NondetSeed,
                "environment read inside a deterministic kernel crate; thread configuration through ColtConfig".to_string(),
            );
        }

        // unsafe-code
        if id == "unsafe" {
            push(&mut out, line, Lint::UnsafeCode, "unsafe code is forbidden workspace-wide".to_string());
        }

        // metric-name: every string literal inside a
        // colt_obs::{span,counter,gauge,observe,span_sim}(…) call is a
        // merged metric name (the literal may sit inside a `match` over
        // access paths, so the whole argument list is scanned). The obs
        // crate itself is exempt: it defines the API and exercises it
        // with doc-example names.
        let obs_scope = krate.is_some() && !matches!(krate, Some("obs") | Some("analyze"));
        if obs_scope
            && id == "colt_obs"
            && next == Some(&Tok::Punct(':'))
            && next2 == Some(&Tok::Punct(':'))
            && toks
                .get(i + 3)
                .and_then(|t| ident(t))
                .is_some_and(|f| METRIC_FNS.contains(&f))
            && toks.get(i + 4).map(|t| &t.tok) == Some(&Tok::Punct('('))
        {
            let mut j = i + 5;
            let mut depth = 1usize;
            while depth > 0 {
                let Some(t) = toks.get(j) else { break };
                match &t.tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => depth -= 1,
                    Tok::Str(name) => {
                        if !well_formed_metric(name) {
                            push(
                                &mut out,
                                t.line,
                                Lint::MetricName,
                                format!("metric name `{name}` must be dot-separated lowercase `area.noun[.verb]` segments"),
                            );
                        } else {
                            let area = name.split('.').next().unwrap_or("");
                            match metric_area_owner(area) {
                                None => push(
                                    &mut out,
                                    t.line,
                                    Lint::MetricName,
                                    format!("metric name `{name}` has unknown area prefix `{area}`; use the emitting crate's area"),
                                ),
                                Some(owner) if Some(owner) != krate => push(
                                    &mut out,
                                    t.line,
                                    Lint::MetricName,
                                    format!("metric area `{area}.*` belongs to colt-{owner}; crate colt-{} must not emit `{name}`", krate.unwrap_or("?")),
                                ),
                                Some(_) => {}
                            }
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }

        // ledger-owner: DecisionRecord::new(<kind>) with a known kind is
        // only legal in the kind's owning crate; unknown kinds are
        // flagged everywhere.
        if obs_scope
            && id == "DecisionRecord"
            && next == Some(&Tok::Punct(':'))
            && next2 == Some(&Tok::Punct(':'))
            && toks.get(i + 3).and_then(|t| ident(t)) == Some("new")
            && toks.get(i + 4).map(|t| &t.tok) == Some(&Tok::Punct('('))
        {
            if let Some(kind) = toks.get(i + 5).and_then(str_lit) {
                match LEDGER_KIND_OWNERS.iter().find(|(k, _)| *k == kind) {
                    None => push(
                        &mut out,
                        line,
                        Lint::LedgerOwner,
                        format!("unknown decision-ledger record kind `{kind}`; add it to colt_obs::LEDGER_KINDS (and the analyze owner table) first"),
                    ),
                    Some((_, owner)) if Some(*owner) != krate => push(
                        &mut out,
                        line,
                        Lint::LedgerOwner,
                        format!("record kind `{kind}` is owned by colt-{owner}; emitting it from colt-{} would forge tuner history", krate.unwrap_or("?")),
                    ),
                    Some(_) => {}
                }
            }
        }

        // layering — only identifiers that name an actual workspace
        // crate count; locals like `colt_total` are not crate edges.
        if let Some(target) = id.strip_prefix("colt_").filter(|t| WORKSPACE_CRATES.contains(t)) {
            if file.kind != Kind::Test {
                if let Some(k) = krate {
                    if let Some(allowed) = allowed_deps(k) {
                        if target != k && !allowed.contains(&target) {
                            push(
                                &mut out,
                                line,
                                Lint::Layering,
                                format!("crate colt-{k} must not reference colt_{target}: the layering DAG only allows {{{}}}", allowed.join(", ")),
                            );
                        }
                    }
                }
            }
        }

        // output-hygiene
        let is_macro = next == Some(&Tok::Punct('!'));
        let stdout_allowed = (matches!(krate, Some("bench") | Some("analyze"))
            && file.kind == Kind::Bin)
            || (krate == Some("harness") && file.rel.ends_with("report.rs"));
        let stderr_allowed = stdout_allowed || krate == Some("obs");
        if is_macro && (id == "println" || id == "print") && !stdout_allowed {
            push(
                &mut out,
                line,
                Lint::OutputHygiene,
                format!("`{id}!` outside bench binaries / harness report; stdout is a diffable artifact — route output through the caller or the event sink"),
            );
        }
        if id == "stdout" && next == Some(&Tok::Punct('(')) && !stdout_allowed {
            push(
                &mut out,
                line,
                Lint::OutputHygiene,
                "direct stdout() handle outside bench binaries / harness report".to_string(),
            );
        }
        if is_macro && (id == "eprintln" || id == "eprint" || id == "dbg") && !stderr_allowed {
            push(
                &mut out,
                line,
                Lint::OutputHygiene,
                format!("`{id}!` outside the colt-obs sink; route diagnostics through colt_obs::progress / emit"),
            );
        }

        // panic-policy (library code only; binaries may abort).
        if file.kind == Kind::Lib {
            let method_call = i >= 1
                && toks[i - 1].tok == Tok::Punct('.')
                && next == Some(&Tok::Punct('('));
            if method_call && (id == "unwrap" || id == "expect") {
                // `.expect(...)?` is error propagation through a
                // user-defined Result-returning method (e.g. the parser's
                // `expect(Tok::…)?`), not Option/Result::expect aborting.
                let mut j = i + 2; // first token inside the parens
                let mut depth = 1usize;
                while depth > 0 {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('(')) => depth += 1,
                        Some(Tok::Punct(')')) => depth -= 1,
                        None => break,
                        _ => {}
                    }
                    j += 1;
                }
                let propagated = toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct('?'));
                if !propagated {
                    push(
                        &mut out,
                        line,
                        Lint::PanicPolicy,
                        format!(".{id}() in library code; return an error or waive with the invariant that rules the panic out"),
                    );
                }
            }
            if is_macro
                && matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
            {
                push(
                    &mut out,
                    line,
                    Lint::PanicPolicy,
                    format!("`{id}!` in library code; return an error or waive with the invariant that rules the panic out"),
                );
            }
        }

        // hash-iteration
        if hash_scope {
            let receiver_is_hash = hash_names.contains(id);
            if receiver_is_hash
                && next == Some(&Tok::Punct('.'))
                && toks
                    .get(i + 2)
                    .and_then(|t| ident(t))
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct('('))
            {
                let method = ident(&toks[i + 2]).unwrap_or("");
                push(
                    &mut out,
                    line,
                    Lint::HashIteration,
                    format!("`.{method}()` on hash-typed `{id}`: iteration order is nondeterministic — use BTreeMap/BTreeSet or sort first"),
                );
            }
            // `for x in &name {` / `for (k, v) in name {`
            if id == "in" {
                let mut j = i + 1;
                loop {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('&')) => j += 1,
                        Some(Tok::Ident(s)) if s == "mut" => j += 1,
                        _ => break,
                    }
                }
                let mut last_ident: Option<&str> = None;
                while let Some(t) = toks.get(j) {
                    match &t.tok {
                        Tok::Ident(s) => last_ident = Some(s.as_str()),
                        Tok::Punct('.') => {}
                        Tok::Punct('{') => break,
                        _ => {
                            last_ident = None;
                            break;
                        }
                    }
                    j += 1;
                }
                if let Some(name) = last_ident {
                    if hash_names.contains(name) {
                        push(
                            &mut out,
                            line,
                            Lint::HashIteration,
                            format!("`for … in {name}` iterates a hash map: order is nondeterministic — use BTreeMap/BTreeSet or sort first"),
                        );
                    }
                }
            }
        }
    }

    // --- flow-sensitive rules (syntax index + manifest) ---
    check_span_pairing(file, &mut out);
    check_charge_coverage(file, manifest, &mut out);
    check_module_dag(file, manifest, &mut out);
    check_decision_kinds(file, manifest, &mut out);
    out
}

/// Does the token sequence at `i` spell `colt_obs::span(`?
fn span_call_at(toks: &[Token], i: usize) -> bool {
    ident(&toks[i]) == Some("colt_obs")
        && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && toks.get(i + 3).and_then(ident) == Some("span")
        && toks.get(i + 4).map(|t| &t.tok) == Some(&Tok::Punct('('))
}

/// span-pairing: every `colt_obs::span(…)` guard must be bound to a
/// named binding, and any `.sim_ms(…)` on that binding must be
/// reachable on every non-`?` path from the binding.
fn check_span_pairing(file: &SourceFile, out: &mut Vec<Violation>) {
    let krate = file.crate_name.as_deref();
    if !matches!(krate, Some(k) if !matches!(k, "obs" | "analyze")) {
        return;
    }
    let toks = &file.lexed.tokens;
    let ix = &file.syntax;
    let test = |line: u32| file.kind == Kind::Test || in_regions(&file.test_regions, line);
    for i in 0..toks.len() {
        if !span_call_at(toks, i) || test(toks[i].line) {
            continue;
        }
        let line = toks[i].line;
        let metric = toks.get(i + 5).and_then(str_lit).unwrap_or("…");
        let prev = i.checked_sub(1).map(|p| &toks[p].tok);
        // `let _ = colt_obs::span(…)` / `_ = colt_obs::span(…)`: the
        // guard drops before the statement ends.
        if prev == Some(&Tok::Punct('='))
            && i >= 2
            && ident(&toks[i - 2]) == Some("_")
        {
            out.push(Violation {
                file: file.rel.clone(),
                line,
                lint: Lint::SpanPairing,
                message: format!("span guard for `{metric}` is bound to `_` and drops immediately; bind `let _span = …` so the span covers its block"),
            });
            continue;
        }
        // Statement-position call whose guard is never bound:
        // `colt_obs::span(…);`.
        if matches!(prev, None | Some(Tok::Punct(';')) | Some(Tok::Punct('{')) | Some(Tok::Punct('}'))) {
            let mut j = i + 5;
            let mut depth = 1usize;
            while depth > 0 {
                match toks.get(j).map(|t| &t.tok) {
                    Some(Tok::Punct('(')) => depth += 1,
                    Some(Tok::Punct(')')) => depth -= 1,
                    None => break,
                    _ => {}
                }
                j += 1;
            }
            if toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct(';')) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line,
                    lint: Lint::SpanPairing,
                    message: format!("span guard for `{metric}` is dropped at the end of its own statement; bind `let _span = …` so the span covers its block"),
                });
            }
            continue;
        }
        // `let <name> = colt_obs::span(…)`: if the guard later calls
        // `.sim_ms(…)`, no return/break/continue may leave the binding
        // block in between (`?` is exempt: error paths carry no
        // simulated cost, and the RAII drop still records wall time).
        let (Some(&Tok::Punct('=')), true) = (prev, i >= 3) else { continue };
        let Some(name) = ident(&toks[i - 2]) else { continue };
        if ident(&toks[i - 3]) != Some("let") && ident(&toks[i - 3]) != Some("mut") {
            continue;
        }
        let block = ix.block_at(i);
        let block_close = ix.blocks.get(block).map_or(toks.len(), |b| b.close);
        let mut last_sim: Option<usize> = None;
        let mut j = i + 5;
        while j + 3 < toks.len().min(block_close) {
            if ident(&toks[j]) == Some(name)
                && toks[j + 1].tok == Tok::Punct('.')
                && ident(&toks[j + 2]) == Some("sim_ms")
                && toks[j + 3].tok == Tok::Punct('(')
                && ix.within(ix.block_at(j), block)
            {
                last_sim = Some(j);
            }
            j += 1;
        }
        let Some(last_sim) = last_sim else { continue };
        for e in &ix.exits {
            if e.token <= i || e.token >= last_sim || test(toks[e.token].line) {
                continue;
            }
            if matches!(e.kind, ExitKind::Return | ExitKind::Break | ExitKind::Continue)
                && ix.escapes(e, block)
            {
                let kw = match e.kind {
                    ExitKind::Return => "return",
                    ExitKind::Break => "break",
                    _ => "continue",
                };
                out.push(Violation {
                    file: file.rel.clone(),
                    line: toks[e.token].line,
                    lint: Lint::SpanPairing,
                    message: format!("`{kw}` escapes between span guard `{name}` (`{metric}`, line {line}) and its `.sim_ms(…)`; the simulated charge is lost on this path"),
                });
            }
        }
    }
}

/// Heap/btree state fields whose element access means pages are read.
const PAGE_STATE_FIELDS: &[&str] = &["rows", "arena"];

/// Accessors on those fields that read elements (metadata like `len` /
/// `is_empty` and build-side `push` are not page reads).
const PAGE_STATE_ACCESSORS: &[&str] = &[
    "get", "get_mut", "iter", "iter_mut", "chunks", "chunks_exact", "windows", "first", "last",
    "binary_search", "binary_search_by", "binary_search_by_key",
];

/// Private page walkers whose callers must be charging.
const PAGE_WALKERS: &[&str] = &["descend", "leftmost_leaf"];

/// charge-coverage: public colt-storage fns that reach page state must
/// take or construct an `IoStats`, or be allowlisted in the manifest.
fn check_charge_coverage(file: &SourceFile, manifest: &Manifest, out: &mut Vec<Violation>) {
    if file.crate_name.as_deref() != Some("storage") || file.kind != Kind::Lib {
        return;
    }
    let toks = &file.lexed.tokens;
    let ix = &file.syntax;
    let test = |line: u32| in_regions(&file.test_regions, line);
    for f in &ix.fns {
        let Some(body) = f.body else { continue };
        if !f.is_pub || test(f.line) {
            continue;
        }
        let key = match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        };
        if manifest.uncharged.contains(&key) || manifest.uncharged.contains(&f.name) {
            continue;
        }
        let (open, close) = (ix.blocks[body].open, ix.blocks[body].close);
        let mut touched: Option<&str> = None;
        let mut charged = false;
        // The signature (fn keyword to body open) can declare the
        // IoStats parameter; the body can construct one locally.
        for j in f.token..close.min(toks.len()) {
            let Some(id) = ident(&toks[j]) else { continue };
            if id == "IoStats" {
                charged = true;
            }
            if j <= open {
                continue; // the rest are body-only triggers
            }
            let prev_dot = j >= 1 && toks[j - 1].tok == Tok::Punct('.');
            let next = toks.get(j + 1).map(|t| &t.tok);
            if PAGE_STATE_FIELDS.contains(&id) && prev_dot {
                let elem_access = next == Some(&Tok::Punct('['))
                    || (next == Some(&Tok::Punct('.'))
                        && toks
                            .get(j + 2)
                            .and_then(ident)
                            .is_some_and(|m| PAGE_STATE_ACCESSORS.contains(&m)));
                if elem_access {
                    touched = touched.or(Some(id));
                }
            }
            if PAGE_WALKERS.contains(&id) && next == Some(&Tok::Punct('(')) {
                touched = touched.or(Some(id));
            }
        }
        if let (Some(what), false) = (touched, charged) {
            out.push(Violation {
                file: file.rel.clone(),
                line: f.line,
                lint: Lint::ChargeCoverage,
                message: format!("pub fn `{key}` reaches page state (`{what}`) without an IoStats charge; charge io or add it to [charge-coverage] uncharged in colt-analyze.toml"),
            });
        }
    }
}

/// module-dag: intra-crate `crate::<module>` edges must point at
/// earlier modules in the crate's declared order.
fn check_module_dag(file: &SourceFile, manifest: &Manifest, out: &mut Vec<Violation>) {
    let Some(krate) = file.crate_name.as_deref() else { return };
    let Some(order) = manifest.module_order.get(krate) else { return };
    if file.kind != Kind::Lib {
        return;
    }
    let prefix = format!("crates/{krate}/src/");
    let Some(module) = file
        .rel
        .strip_prefix(&prefix)
        .and_then(|m| m.strip_suffix(".rs"))
        .filter(|m| !m.contains('/') && *m != "lib")
    else {
        return;
    };
    let test = |line: u32| in_regions(&file.test_regions, line);
    // Collect edges from expanded use trees and inline `crate::m::…`
    // paths (deduplicated: use decls appear in both sources).
    let mut edges: BTreeSet<(String, u32)> = BTreeSet::new();
    for u in &file.syntax.uses {
        if test(u.line) {
            continue;
        }
        for p in &u.paths {
            if let Some(first) = p.strip_prefix("crate::").and_then(|r| r.split("::").next()) {
                edges.insert((first.to_string(), u.line));
            }
        }
    }
    let toks = &file.lexed.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if ident(&toks[i]) == Some("crate")
            && toks[i + 1].tok == Tok::Punct(':')
            && toks[i + 2].tok == Tok::Punct(':')
            && !test(toks[i].line)
        {
            if let Some(m) = ident(&toks[i + 3]) {
                edges.insert((m.to_string(), toks[i].line));
            }
        }
    }
    let my_ix = order.iter().position(|m| m == module);
    for (target, line) in edges {
        if target == module {
            continue;
        }
        let Some(dep_ix) = order.iter().position(|m| m == &target) else { continue };
        match my_ix {
            None => {
                out.push(Violation {
                    file: file.rel.clone(),
                    line,
                    lint: Lint::ModuleDag,
                    message: format!("module `{module}` uses `crate::{target}` but is not declared in [modules.{krate}] order in colt-analyze.toml"),
                });
                return; // one declaration violation is enough
            }
            Some(mine) if dep_ix >= mine => {
                out.push(Violation {
                    file: file.rel.clone(),
                    line,
                    lint: Lint::ModuleDag,
                    message: format!("module `{module}` may not use `crate::{target}`: [modules.{krate}] in colt-analyze.toml orders `{target}` at or after `{module}` (layering cycle)"),
                });
            }
            Some(_) => {}
        }
    }
}

/// decision-kind: renderer files must mention every ledger kind as a
/// string literal in non-test code.
fn check_decision_kinds(file: &SourceFile, manifest: &Manifest, out: &mut Vec<Violation>) {
    if !manifest.renderers.iter().any(|r| r == &file.rel) {
        return;
    }
    let test = |line: u32| file.kind == Kind::Test || in_regions(&file.test_regions, line);
    let mut named: BTreeSet<&str> = BTreeSet::new();
    let mut anchor: Option<u32> = None;
    for t in &file.lexed.tokens {
        if test(t.line) {
            continue;
        }
        if let Tok::Str(s) = &t.tok {
            anchor = anchor.or(Some(t.line));
            named.insert(s.as_str());
        }
    }
    let missing: Vec<&str> = LEDGER_KIND_OWNERS
        .iter()
        .map(|(k, _)| *k)
        .filter(|k| !named.contains(k))
        .collect();
    if !missing.is_empty() {
        let line = anchor
            .or_else(|| file.lexed.tokens.first().map(|t| t.line))
            .unwrap_or(1);
        out.push(Violation {
            file: file.rel.clone(),
            line,
            lint: Lint::DecisionKind,
            message: format!(
                "renderer does not name decision kind(s) {}: every kind in colt_obs::LEDGER_KINDS must be handled here or its records drop silently",
                missing.iter().map(|k| format!("`{k}`")).collect::<Vec<_>>().join(", ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_round_trip() {
        for &l in Lint::all() {
            assert_eq!(Lint::by_name(l.name()), Some(l));
            assert!(!l.summary().is_empty());
            assert!(!l.explain().is_empty());
        }
        assert_eq!(Lint::by_name("no-such-lint"), None);
    }

    #[test]
    fn test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lexed = crate::lexer::lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_test_use_statement_region_is_one_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let lexed = crate::lexer::lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(1, 2)]);
    }
}
