//! The `colt-analyze.toml` manifest: per-crate module DAGs, the
//! charge-coverage allowlist, decision-kind renderer files, and
//! per-lint waiver budgets.
//!
//! Parsed with a deliberately minimal TOML-subset reader (sections,
//! bare keys, strings, integers, string arrays — nothing else), so the
//! checker stays zero-dependency. The workspace copy at the repo root
//! is embedded at compile time as the default, which keeps fixture and
//! scratch-tree scans (no manifest on disk) behaving like the real
//! workspace scan.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The embedded workspace manifest (compile-time copy of the repo
/// root's `colt-analyze.toml`).
pub const DEFAULT_MANIFEST: &str = include_str!("../../../colt-analyze.toml");

/// Parsed manifest contents.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[modules.<crate>] order = […]`: each crate's module order; a
    /// module may only `use crate::<m>` for modules earlier in the list.
    pub module_order: BTreeMap<String, Vec<String>>,
    /// `[charge-coverage] uncharged = […]`: `Type::fn` (or bare fn)
    /// names allowed to touch page state without an `IoStats` charge.
    pub uncharged: BTreeSet<String>,
    /// `[decision-kinds] renderers = […]`: files that must name every
    /// ledger kind.
    pub renderers: Vec<String>,
    /// `[waiver-budget] <lint> = <cap>`: per-lint waiver caps; lints
    /// not listed have a cap of zero.
    pub waiver_budget: BTreeMap<String, u64>,
    /// The raw manifest text (hashed into the scan cache key).
    pub source: String,
}

impl Manifest {
    /// Parse manifest text. Errors name the offending line.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut m = Manifest { source: text.to_string(), ..Manifest::default() };
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, mut value)) = line.split_once('=').map(|(k, v)| {
                (k.trim().trim_matches('"').to_string(), v.trim().to_string())
            }) else {
                return Err(format!("line {}: expected `key = value`", ln + 1));
            };
            // A multiline array: keep consuming lines until the `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    value.push(' ');
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
            }
            m.apply(&section, &key, &value, ln + 1)?;
        }
        Ok(m)
    }

    fn apply(&mut self, section: &str, key: &str, value: &str, ln: usize) -> Result<(), String> {
        if let Some(krate) = section.strip_prefix("modules.") {
            if key == "order" {
                self.module_order.insert(krate.to_string(), parse_array(value, ln)?);
            }
            return Ok(());
        }
        match (section, key) {
            ("charge-coverage", "uncharged") => {
                self.uncharged = parse_array(value, ln)?.into_iter().collect();
            }
            ("decision-kinds", "renderers") => {
                self.renderers = parse_array(value, ln)?;
            }
            ("waiver-budget", lint) => {
                let cap = value
                    .parse::<u64>()
                    .map_err(|_| format!("line {ln}: `{lint}` cap must be an integer"))?;
                self.waiver_budget.insert(lint.to_string(), cap);
            }
            _ => {} // unknown sections/keys are ignored for forward-compat
        }
        Ok(())
    }

    /// The manifest governing a scan of `root`: the on-disk
    /// `colt-analyze.toml` if present and well-formed, else the
    /// embedded workspace default (scratch trees, fixtures). A present
    /// but malformed manifest is returned as an error so CI fails
    /// loudly instead of silently linting against the default.
    pub fn load(root: &Path) -> Result<Manifest, String> {
        match std::fs::read_to_string(root.join("colt-analyze.toml")) {
            Ok(text) => Manifest::parse(&text).map_err(|e| format!("colt-analyze.toml: {e}")),
            Err(_) => Ok(Manifest::embedded()),
        }
    }

    /// The embedded workspace default.
    pub fn embedded() -> Manifest {
        // The unit test below proves the embedded copy parses; if it
        // ever regresses, fall back to an empty manifest (which turns
        // the manifest-driven lints off rather than aborting scans).
        Manifest::parse(DEFAULT_MANIFEST).unwrap_or_default()
    }

    /// The waiver cap for a lint (zero when unlisted).
    pub fn waiver_cap(&self, lint: &str) -> u64 {
        self.waiver_budget.get(lint).copied().unwrap_or(0)
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `[ "a", "b" ]` into its elements.
fn parse_array(value: &str, ln: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {ln}: expected a `[ … ]` array"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("line {ln}: array elements must be quoted strings"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_manifest_parses_and_is_populated() {
        let m = Manifest::parse(DEFAULT_MANIFEST).expect("embedded manifest must parse");
        assert!(m.module_order.contains_key("storage"), "{:?}", m.module_order.keys());
        assert!(m.module_order.contains_key("engine"));
        assert!(!m.renderers.is_empty());
        assert!(m.waiver_budget.contains_key("panic-policy"));
        // Orders must not contain duplicates.
        for (krate, order) in &m.module_order {
            let set: BTreeSet<&String> = order.iter().collect();
            assert_eq!(set.len(), order.len(), "duplicate module in [modules.{krate}]");
        }
    }

    #[test]
    fn parse_sections_and_values() {
        let m = Manifest::parse(
            "# comment\n[modules.demo]\norder = [\"a\", \"b\"]\n\n[charge-coverage]\nuncharged = [\n  \"T::f\", # why\n  \"g\",\n]\n[decision-kinds]\nrenderers = [\"x.rs\"]\n[waiver-budget]\npanic-policy = 3\n",
        )
        .unwrap();
        assert_eq!(m.module_order["demo"], ["a", "b"]);
        assert!(m.uncharged.contains("T::f") && m.uncharged.contains("g"));
        assert_eq!(m.renderers, ["x.rs"]);
        assert_eq!(m.waiver_cap("panic-policy"), 3);
        assert_eq!(m.waiver_cap("wall-clock"), 0);
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert!(Manifest::parse("[waiver-budget]\npanic-policy = many\n").is_err());
        assert!(Manifest::parse("[modules.x]\norder = 3\n").is_err());
        assert!(Manifest::parse("junk\n").is_err());
    }
}
