//! A lightweight syntax pass over the token stream: item structure
//! (mods, fns, impls, use trees) and a brace-matched block tree with
//! early-exit edges.
//!
//! This is not a Rust parser — it is a recursive-descent *recovery*
//! pass that extracts exactly the structure the flow-sensitive lints
//! need: which block a token lives in, what construct introduced the
//! block (`fn` body, closure, loop), where control can leave a block
//! early (`return` / `?` / `break` / `continue` / `panic!`), which
//! `impl` owns a function, and which modules a `use` declaration
//! reaches. Because the lexer has already stripped comments, strings,
//! and char literals, every `{`/`}` left in the stream is a real brace,
//! so the block tree brace-balances for any valid Rust file (the
//! round-trip test in `tests/` proves this over the whole workspace).

use crate::lexer::{ident, Tok, Token};

/// What construct introduced a block (decides early-exit containment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intro {
    /// A `fn` body: contains `return`.
    Fn,
    /// A closure body: contains `return`.
    Closure,
    /// A `for`/`while`/`loop` body: contains `break`/`continue`.
    Loop,
    /// An `impl` body.
    Impl,
    /// A `mod` body.
    Mod,
    /// Anything else: `if`/`else`/`match` arms, plain blocks, struct
    /// literals — transparent to every exit kind.
    Other,
}

/// One `{ … }` region of the file.
#[derive(Debug, Clone)]
pub struct Block {
    /// Parent block id (`None` only for the virtual file-level root).
    pub parent: Option<usize>,
    /// Token index of the opening `{` (`usize::MAX` for the root).
    pub open: usize,
    /// Token index of the matching `}` (tokens.len() if unclosed).
    pub close: usize,
    /// The construct that introduced the block.
    pub intro: Intro,
}

/// A way control can leave a block before its closing brace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// `return`.
    Return,
    /// The `?` operator.
    Question,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
}

/// One early-exit edge.
#[derive(Debug, Clone, Copy)]
pub struct Exit {
    /// Token index of the exit keyword / operator.
    pub token: usize,
    /// Innermost block containing it.
    pub block: usize,
    /// Which kind of exit.
    pub kind: ExitKind,
}

/// A `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Self type of the innermost enclosing `impl`, if any.
    pub owner: Option<String>,
    /// Token index of the `fn` keyword.
    pub token: usize,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// Declared `pub` (including `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// Body block id (None for trait-method declarations).
    pub body: Option<usize>,
}

/// An `impl` item.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The self type's final identifier (`BPlusTreeOf`, `HeapTable`, …).
    pub self_type: String,
    /// Token index of the `impl` keyword.
    pub token: usize,
    /// Body block id.
    pub body: Option<usize>,
}

/// An inline `mod` item.
#[derive(Debug, Clone)]
pub struct ModItem {
    /// The module name.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// One `use …;` declaration, expanded to its leaf paths
/// (`use crate::{a, b::c};` → `["crate::a", "crate::b::c"]`).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Expanded leaf paths, `::`-joined, aliases dropped.
    pub paths: Vec<String>,
    /// 1-based source line of the `use` keyword.
    pub line: u32,
}

/// The per-file syntax index the flow-sensitive rules consume.
#[derive(Debug, Default)]
pub struct SyntaxIndex {
    /// All blocks; id 0 is the virtual file-level root.
    pub blocks: Vec<Block>,
    /// Early-exit edges, in token order.
    pub exits: Vec<Exit>,
    /// `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// `impl` items, in source order.
    pub impls: Vec<ImplItem>,
    /// Inline `mod` items, in source order.
    pub mods: Vec<ModItem>,
    /// `use` declarations, expanded.
    pub uses: Vec<UseDecl>,
    /// Innermost block id per token index.
    block_of: Vec<usize>,
    /// Every `{`/`}` matched and the stack closed at EOF.
    pub balanced: bool,
}

/// Keywords that decide a block's [`Intro`] when seen on the backward
/// walk from its `{`.
fn intro_of_keyword(kw: &str) -> Option<Intro> {
    Some(match kw {
        "fn" => Intro::Fn,
        "for" | "while" | "loop" => Intro::Loop,
        "impl" => Intro::Impl,
        "mod" => Intro::Mod,
        "trait" | "enum" | "struct" | "union" | "match" | "if" | "else" => Intro::Other,
        _ => return None,
    })
}

impl SyntaxIndex {
    /// Build the index from a lexed token stream.
    pub fn build(toks: &[Token]) -> SyntaxIndex {
        let mut ix = SyntaxIndex {
            blocks: vec![Block { parent: None, open: usize::MAX, close: toks.len(), intro: Intro::Other }],
            block_of: vec![0; toks.len()],
            balanced: true,
            ..SyntaxIndex::default()
        };
        // (block id, self type) for impl bodies, as a parse-time stack.
        let mut impl_stack: Vec<(usize, String)> = Vec::new();
        let mut stack: Vec<usize> = vec![0];
        // fn items whose body block has not opened yet, by `fn` token.
        let mut pending_fns: Vec<usize> = Vec::new();
        let mut pending_impls: Vec<usize> = Vec::new();

        let mut i = 0usize;
        while i < toks.len() {
            let top = *stack.last().unwrap_or(&0);
            ix.block_of[i] = top;
            match &toks[i].tok {
                Tok::Punct('{') => {
                    let (intro, intro_kw) = block_intro(toks, i);
                    let id = ix.blocks.len();
                    ix.blocks.push(Block { parent: Some(top), open: i, close: toks.len(), intro });
                    ix.block_of[i] = id;
                    stack.push(id);
                    // Link the block to the item whose keyword introduced it.
                    if let Some(kw) = intro_kw {
                        if intro == Intro::Fn {
                            if let Some(pos) = pending_fns.iter().position(|&f| ix.fns[f].token == kw) {
                                let f = pending_fns.remove(pos);
                                ix.fns[f].body = Some(id);
                            }
                        } else if intro == Intro::Impl {
                            if let Some(pos) =
                                pending_impls.iter().position(|&p| ix.impls[p].token == kw)
                            {
                                let p = pending_impls.remove(pos);
                                ix.impls[p].body = Some(id);
                                impl_stack.push((id, ix.impls[p].self_type.clone()));
                            }
                        }
                    }
                }
                Tok::Punct('}') => {
                    if stack.len() > 1 {
                        let id = stack.pop().unwrap_or(0);
                        ix.block_of[i] = id;
                        ix.blocks[id].close = i;
                        if impl_stack.last().is_some_and(|&(b, _)| b == id) {
                            impl_stack.pop();
                        }
                    } else {
                        ix.balanced = false;
                    }
                }
                Tok::Punct('?') => {
                    ix.exits.push(Exit { token: i, block: top, kind: ExitKind::Question });
                }
                Tok::Ident(id) => match id.as_str() {
                    "return" => ix.exits.push(Exit { token: i, block: top, kind: ExitKind::Return }),
                    "break" => ix.exits.push(Exit { token: i, block: top, kind: ExitKind::Break }),
                    "continue" => {
                        ix.exits.push(Exit { token: i, block: top, kind: ExitKind::Continue })
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('!')) =>
                    {
                        ix.exits.push(Exit { token: i, block: top, kind: ExitKind::PanicMacro })
                    }
                    "fn" => {
                        if let Some(name) = toks.get(i + 1).and_then(ident) {
                            let owner = impl_stack
                                .iter()
                                .rev()
                                .find(|(b, _)| stack.contains(b))
                                .map(|(_, t)| t.clone());
                            pending_fns.push(ix.fns.len());
                            ix.fns.push(FnItem {
                                name: name.to_string(),
                                owner,
                                token: i,
                                line: toks[i].line,
                                is_pub: has_pub_before(toks, i),
                                body: None,
                            });
                        }
                    }
                    "impl" => {
                        if let Some(self_type) = impl_self_type(toks, i) {
                            pending_impls.push(ix.impls.len());
                            ix.impls.push(ImplItem { self_type, token: i, body: None });
                        }
                    }
                    "mod" => {
                        if let Some(name) = toks.get(i + 1).and_then(ident) {
                            ix.mods.push(ModItem { name: name.to_string(), line: toks[i].line });
                        }
                    }
                    "use" if use_position(toks, i) => {
                        // Consume the whole declaration so use-tree braces
                        // never reach the block tree.
                        let (decl, next) = parse_use(toks, i);
                        for k in i..next.min(toks.len()) {
                            ix.block_of[k] = top;
                        }
                        ix.uses.push(decl);
                        i = next;
                        continue;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        if stack.len() != 1 {
            ix.balanced = false;
        }
        ix
    }

    /// Innermost block containing token `t`.
    pub fn block_at(&self, t: usize) -> usize {
        self.block_of.get(t).copied().unwrap_or(0)
    }

    /// Is block `inner` equal to or nested (transitively) inside `outer`?
    pub fn within(&self, mut inner: usize, outer: usize) -> bool {
        loop {
            if inner == outer {
                return true;
            }
            match self.blocks.get(inner).and_then(|b| b.parent) {
                Some(p) => inner = p,
                None => return false,
            }
        }
    }

    /// Does this exit edge actually leave block `target` (rather than
    /// being absorbed by an intervening loop / closure / nested fn)?
    ///
    /// `?` and panic exits always leave (the value/process is gone);
    /// `return` is absorbed by a closure or nested `fn` body between the
    /// exit and `target`; `break`/`continue` are absorbed by a loop body.
    pub fn escapes(&self, e: &Exit, target: usize) -> bool {
        if !self.within(e.block, target) {
            return false;
        }
        let mut w = e.block;
        while w != target {
            let intro = self.blocks[w].intro;
            let absorbed = match e.kind {
                ExitKind::Return => matches!(intro, Intro::Fn | Intro::Closure),
                ExitKind::Break | ExitKind::Continue => intro == Intro::Loop,
                ExitKind::Question | ExitKind::PanicMacro => false,
            };
            if absorbed {
                return false;
            }
            match self.blocks[w].parent {
                Some(p) => w = p,
                None => return false,
            }
        }
        true
    }
}

/// Decide what introduced the block opening at token `open` by walking
/// backwards to the nearest statement boundary (`{`, `}`, `;`), looking
/// for an introducing keyword. Returns the intro and the keyword's
/// token index, if one was found.
fn block_intro(toks: &[Token], open: usize) -> (Intro, Option<usize>) {
    if open == 0 {
        return (Intro::Other, None);
    }
    // `|…| {` / `move |…| {`: the token just before the brace is the
    // closing `|` of the parameter list.
    if toks[open - 1].tok == Tok::Punct('|') {
        return (Intro::Closure, None);
    }
    let floor = open.saturating_sub(60);
    let mut j = open - 1;
    // A `for` is ambiguous until we know whether an `impl` precedes it
    // in the same header (`impl Trait for Type {` vs `for x in y {`), so
    // hold it and keep walking.
    let mut pending_for: Option<usize> = None;
    loop {
        match &toks[j].tok {
            Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';') => break,
            Tok::Ident(id) => {
                if let Some(intro) = intro_of_keyword(id) {
                    if id == "for" {
                        pending_for = Some(j);
                    } else if intro == Intro::Impl {
                        return (Intro::Impl, Some(j));
                    } else if let Some(f) = pending_for {
                        return (Intro::Loop, Some(f));
                    } else {
                        return (intro, Some(j));
                    }
                }
            }
            _ => {}
        }
        if j == floor || j == 0 {
            break;
        }
        j -= 1;
    }
    match pending_for {
        Some(f) => (Intro::Loop, Some(f)),
        None => (Intro::Other, None),
    }
}

/// Is the token before `fn`/qualifiers a `pub` (with optional
/// `(crate)`/`(super)`/`(in …)` restriction)?
fn has_pub_before(toks: &[Token], fn_tok: usize) -> bool {
    let mut j = fn_tok;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            // Qualifiers between `pub` and `fn`.
            Tok::Ident(q) if matches!(q.as_str(), "const" | "async" | "unsafe" | "extern") => {}
            Tok::Str(_) => {} // extern "C"
            Tok::Punct(')') => {
                // Walk back over a `(crate)` / `(super)` / `(in …)` group.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &toks[j].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
            }
            Tok::Ident(p) => return p == "pub",
            _ => return false,
        }
    }
    false
}

/// Extract the self type of an `impl` header: the identifier after
/// `for` if present (trait impls), else the first type identifier after
/// the generic parameter list.
fn impl_self_type(toks: &[Token], impl_tok: usize) -> Option<String> {
    let mut j = impl_tok + 1;
    // Skip the generic parameter list `<…>` if present.
    if toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct('<')) {
        let mut depth = 0usize;
        while let Some(t) = toks.get(j) {
            match t.tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut first: Option<&str> = None;
    let mut last: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Ident(id) if id == "where" => break,
            Tok::Ident(id) if id == "for" => saw_for = true,
            Tok::Ident(id) => {
                if saw_for && after_for.is_none() {
                    after_for = Some(id);
                }
                if first.is_none() {
                    first = Some(id);
                }
                last = Some(id);
            }
            _ => {}
        }
        j += 1;
    }
    // For path types (`colt_storage::HeapTable`) the final segment names
    // the type; for trait impls the segment after `for` does.
    let _ = last;
    after_for.or(first).map(str::to_string)
}

/// Is this `use` a declaration (statement position) rather than a macro
/// fragment? Accept file start, after `;`, braces, attribute `]`, or a
/// visibility qualifier.
fn use_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match &toks[i - 1].tok {
        Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(']')
        | Tok::Punct(')') => true,
        Tok::Ident(id) => id == "pub",
        _ => false,
    }
}

/// Parse one `use …;` declaration starting at the `use` keyword,
/// expanding the tree into leaf paths. Returns the declaration and the
/// index just past the terminating `;`.
fn parse_use(toks: &[Token], use_tok: usize) -> (UseDecl, usize) {
    let line = toks[use_tok].line;
    let mut j = use_tok + 1;
    let mut paths = Vec::new();
    parse_use_tree(toks, &mut j, "", &mut paths);
    // Advance past the terminating `;` if present.
    while let Some(t) = toks.get(j) {
        j += 1;
        if t.tok == Tok::Punct(';') {
            break;
        }
    }
    (UseDecl { paths, line }, j)
}

/// Recursive use-tree expansion: `prefix` is the `::`-joined path so far.
fn parse_use_tree(toks: &[Token], j: &mut usize, prefix: &str, out: &mut Vec<String>) {
    let mut path = prefix.to_string();
    loop {
        match toks.get(*j).map(|t| &t.tok) {
            Some(Tok::Ident(id)) if id == "as" => {
                // Alias: skip the rename identifier, keep the path.
                *j += 2;
            }
            Some(Tok::Ident(id)) => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push_str(id);
                *j += 1;
            }
            Some(Tok::Punct(':')) => {
                *j += 1; // each `::` arrives as two `:` tokens
            }
            Some(Tok::Punct('*')) => {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push('*');
                *j += 1;
            }
            Some(Tok::Punct('{')) => {
                *j += 1;
                loop {
                    match toks.get(*j).map(|t| &t.tok) {
                        Some(Tok::Punct('}')) | None => {
                            *j += 1;
                            break;
                        }
                        Some(Tok::Punct(',')) => *j += 1,
                        _ => parse_use_tree(toks, j, &path, out),
                    }
                }
                return; // a group is always the final element of its branch
            }
            Some(Tok::Punct(',')) | Some(Tok::Punct('}')) | Some(Tok::Punct(';')) | None => break,
            _ => {
                *j += 1;
            }
        }
    }
    if path.len() > prefix.len() {
        out.push(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> SyntaxIndex {
        SyntaxIndex::build(&lex(src).tokens)
    }

    #[test]
    fn block_tree_nests_and_balances() {
        let ix = index("fn f() { if x { y(); } }");
        assert!(ix.balanced);
        // root + fn body + if block
        assert_eq!(ix.blocks.len(), 3);
        assert_eq!(ix.blocks[1].intro, Intro::Fn);
        assert_eq!(ix.blocks[2].intro, Intro::Other);
        assert_eq!(ix.blocks[2].parent, Some(1));
        assert!(ix.within(2, 1));
        assert!(!ix.within(1, 2));
    }

    #[test]
    fn unbalanced_is_reported() {
        assert!(!index("fn f() { {").balanced);
        assert!(!index("} fn f() {}").balanced);
        assert!(index("fn f() {}").balanced);
    }

    #[test]
    fn loops_and_closures_get_their_intro() {
        let ix = index("fn f() { for x in y { a(); } let c = |q| { b(); }; while z { } loop { } }");
        let intros: Vec<Intro> = ix.blocks[1..].iter().map(|b| b.intro).collect();
        assert_eq!(
            intros,
            [Intro::Fn, Intro::Loop, Intro::Closure, Intro::Loop, Intro::Loop]
        );
    }

    #[test]
    fn early_exits_are_recorded_with_their_block() {
        let ix = index("fn f() -> R { if a { return x; } let v = g()?; loop { break; } panic!(\"n\") }");
        let kinds: Vec<ExitKind> = ix.exits.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [ExitKind::Return, ExitKind::Question, ExitKind::Break, ExitKind::PanicMacro]
        );
        // The break sits in the loop block; return in the if block.
        let ret = ix.exits[0];
        let brk = ix.exits[2];
        assert_eq!(ix.blocks[ret.block].intro, Intro::Other);
        assert_eq!(ix.blocks[brk.block].intro, Intro::Loop);
    }

    #[test]
    fn escape_containment() {
        let ix = index("fn f() { let s = g(); for i in v { if c { continue; } } s.done(); }");
        let body = 1usize;
        let cont = ix.exits.iter().find(|e| e.kind == ExitKind::Continue).unwrap();
        // The continue is absorbed by the for-loop body before reaching
        // the fn body: it does not escape the fn body block.
        assert!(!ix.escapes(cont, body));

        let ix2 = index("fn f() { let s = g(); if c { return; } s.done(); }");
        let ret = ix2.exits.iter().find(|e| e.kind == ExitKind::Return).unwrap();
        assert!(ix2.escapes(ret, 1));

        let ix3 = index("fn f() { let s = g(); let c = || { return 1; }; s.done(); }");
        let ret3 = ix3.exits.iter().find(|e| e.kind == ExitKind::Return).unwrap();
        assert!(!ix3.escapes(ret3, 1), "closure absorbs return");
    }

    #[test]
    fn fn_items_with_owner_and_pub() {
        let src = "
impl HeapTable {
    pub fn fetch(&self) {}
    fn private(&self) {}
    pub(crate) fn crate_fn(&self) {}
}
pub fn free() {}
fn plain() {}
impl fmt::Debug for HeapTable { fn fmt(&self) {} }
";
        let ix = index(src);
        let by_name = |n: &str| ix.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("fetch").is_pub);
        assert_eq!(by_name("fetch").owner.as_deref(), Some("HeapTable"));
        assert!(!by_name("private").is_pub);
        assert!(by_name("crate_fn").is_pub);
        assert!(by_name("free").is_pub);
        assert!(by_name("free").owner.is_none());
        assert!(!by_name("plain").is_pub);
        assert_eq!(by_name("fmt").owner.as_deref(), Some("HeapTable"));
        assert!(by_name("fetch").body.is_some());
    }

    #[test]
    fn impl_generics_are_skipped() {
        let ix = index("impl<K: TreeKey> BPlusTreeOf<K> { pub fn lookup(&self) {} }");
        assert_eq!(ix.impls[0].self_type, "BPlusTreeOf");
        assert_eq!(ix.fns[0].owner.as_deref(), Some("BPlusTreeOf"));
    }

    #[test]
    fn use_trees_expand() {
        let ix = index(
            "use crate::heap::HeapTable;\npub use crate::{btree::BPlusTree, page as p, value::*};\nuse std::fmt;\n",
        );
        let all: Vec<&str> = ix.uses.iter().flat_map(|u| u.paths.iter().map(String::as_str)).collect();
        assert_eq!(
            all,
            [
                "crate::heap::HeapTable",
                "crate::btree::BPlusTree",
                "crate::page",
                "crate::value::*",
                "std::fmt"
            ]
        );
    }

    #[test]
    fn use_tree_braces_stay_out_of_the_block_tree() {
        let ix = index("use crate::{a, b};\nfn f() { g(); }\n");
        assert!(ix.balanced);
        assert_eq!(ix.blocks.len(), 2); // root + fn body only
        assert_eq!(ix.blocks[1].intro, Intro::Fn);
    }

    #[test]
    fn mods_are_recorded() {
        let ix = index("mod tests { fn t() {} }\npub mod api;\n");
        let names: Vec<&str> = ix.mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["tests", "api"]);
    }

    #[test]
    fn block_at_finds_the_innermost_block() {
        let src = "fn f() { if x { y(); } z(); }";
        let ix = index(src);
        let toks = lex(src).tokens;
        let y_tok = toks.iter().position(|t| ident(t) == Some("y")).unwrap();
        let z_tok = toks.iter().position(|t| ident(t) == Some("z")).unwrap();
        assert_eq!(ix.blocks[ix.block_at(y_tok)].intro, Intro::Other);
        assert_eq!(ix.blocks[ix.block_at(z_tok)].intro, Intro::Fn);
    }
}
