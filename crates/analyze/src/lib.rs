//! # colt-analyze
//!
//! Workspace invariant checker: a lightweight, zero-dependency static
//! pass that walks every `.rs` file in the workspace and enforces the
//! project's determinism, layering, and output-hygiene contracts as
//! named lints (see [`rules::Lint`] and DESIGN.md, "Static analysis &
//! invariants").
//!
//! The contracts it guards are the ones CI otherwise checks only by
//! end-to-end diff of one binary at one scale: bit-identical artifacts
//! at 1 vs N threads, byte-identical stdout across `COLT_OBS` levels,
//! and replayable seeding. A stray `HashMap` iteration or `println!` in
//! a library crate breaks every exhibit at once; this pass proves the
//! invariants over the whole tree on every `cargo test`.
//!
//! The single escape hatch for every lint is a waiver comment on the
//! flagged line or the line directly above:
//!
//! ```text
//! // colt: allow(<lint-name>) — <reason>
//! ```
//!
//! Waivers without a reason, and waivers that no longer suppress
//! anything, are themselves errors — the exception set cannot rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod syntax;

pub use lexer::{Lexed, Waiver};
pub use manifest::Manifest;
pub use rules::{Kind, Lint, Violation};
pub use syntax::SyntaxIndex;

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One classified, lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// `crates/<name>/…` → `Some(name)`; root files → `None`.
    pub crate_name: Option<String>,
    /// Library / binary / test role.
    pub kind: Kind,
    /// Lexed tokens and waivers.
    pub lexed: Lexed,
    /// `#[cfg(test)]` line regions.
    pub test_regions: Vec<(u32, u32)>,
    /// Item structure, block tree, and early-exit edges.
    pub syntax: SyntaxIndex,
}

/// One waiver annotation found in non-test code (the unit the waiver
/// budget counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Waived lint name, as written.
    pub lint: String,
}

/// Classify a workspace-relative path into (crate, kind).
pub fn classify(rel: &str) -> (Option<String>, Kind) {
    let mut crate_name = None;
    let mut inner = rel;
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, tail)) = rest.split_once('/') {
            crate_name = Some(name.to_string());
            inner = tail;
        }
    }
    let kind = if inner.starts_with("tests/")
        || inner.starts_with("benches/")
        || inner.starts_with("examples/")
        || inner == "build.rs"
    {
        Kind::Test
    } else if inner.starts_with("src/bin/") || inner == "src/main.rs" {
        Kind::Bin
    } else {
        Kind::Lib
    };
    (crate_name, kind)
}

/// Lex + classify one file's source.
pub fn load_source(rel: &str, src: &str) -> SourceFile {
    let (crate_name, kind) = classify(rel);
    let lexed = lexer::lex(src);
    let test_regions = rules::test_regions(&lexed.tokens);
    let syntax = SyntaxIndex::build(&lexed.tokens);
    SourceFile { rel: rel.to_string(), crate_name, kind, lexed, test_regions, syntax }
}

/// Analyze one file (rules + waiver application) — the unit the fixture
/// corpus exercises. `rel` decides crate and kind, so fixtures can
/// impersonate any location (e.g. `crates/core/src/x.rs`). Uses the
/// embedded workspace manifest.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Violation> {
    analyze_source_with(rel, src, &Manifest::embedded())
}

/// [`analyze_source`] against an explicit manifest.
pub fn analyze_source_with(rel: &str, src: &str, manifest: &Manifest) -> Vec<Violation> {
    let file = load_source(rel, src);
    let raw = rules::check_file(&file, manifest);
    apply_waivers(&file, raw)
}

/// The waiver annotations in one file that count against the budget:
/// everything outside test code (test-region waivers are exempt from
/// unused-waiver and never suppress anything the budget cares about).
fn waiver_sites(file: &SourceFile) -> Vec<WaiverSite> {
    if file.kind == Kind::Test {
        return Vec::new();
    }
    file.lexed
        .waivers
        .iter()
        .filter(|w| !file.test_regions.iter().any(|&(a, b)| w.line >= a && w.line <= b))
        .map(|w| WaiverSite { file: file.rel.clone(), line: w.line, lint: w.lint.clone() })
        .collect()
}

/// Apply the file's waivers to its raw violations: suppress matches,
/// then report bad and unused waivers.
fn apply_waivers(file: &SourceFile, raw: Vec<Violation>) -> Vec<Violation> {
    let in_test = |line: u32| {
        file.kind == Kind::Test
            || file.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    };
    let mut used = vec![false; file.lexed.waivers.len()];
    let mut out = Vec::new();
    for v in raw {
        let mut suppressed = false;
        for (wi, w) in file.lexed.waivers.iter().enumerate() {
            let covers = w.line == v.line || w.line + 1 == v.line;
            if covers && !w.reason.is_empty() && w.lint == v.lint.name() {
                used[wi] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }
    for (wi, w) in file.lexed.waivers.iter().enumerate() {
        if w.reason.is_empty() {
            out.push(Violation {
                file: file.rel.clone(),
                line: w.line,
                lint: Lint::BadWaiver,
                message: format!("waiver for `{}` has no reason; write `// colt: allow({}) — <why>`", w.lint, w.lint),
            });
        } else if Lint::by_name(&w.lint).is_none() {
            out.push(Violation {
                file: file.rel.clone(),
                line: w.line,
                lint: Lint::BadWaiver,
                message: format!("waiver names unknown lint `{}`", w.lint),
            });
        } else if !used[wi] && !in_test(w.line) {
            out.push(Violation {
                file: file.rel.clone(),
                line: w.line,
                lint: Lint::UnusedWaiver,
                message: format!("waiver for `{}` suppresses nothing; remove it", w.lint),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    out
}

/// The outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations after waiver application, sorted by file/line.
    pub violations: Vec<Violation>,
    /// Non-test waiver annotations (the waiver budget's input).
    pub waivers: Vec<WaiverSite>,
    /// Files served from the content-hash cache.
    pub cache_hits: usize,
    /// Files analyzed fresh.
    pub cache_misses: usize,
    /// Wall-clock scan time (colt-analyze is on the wall-clock
    /// allowlist; this never reaches a diffed artifact).
    pub elapsed_ms: u128,
}

impl Report {
    /// No violations?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `file:line: lint: message` lines plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "colt-analyze: {} file(s) scanned, {} violation(s)\n",
            self.files_scanned,
            self.violations.len()
        ));
        out
    }

    /// Machine-readable JSON summary.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut o = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => o.push_str("\\\""),
                    '\\' => o.push_str("\\\\"),
                    '\n' => o.push_str("\\n"),
                    '\t' => o.push_str("\\t"),
                    c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
                    c => o.push(c),
                }
            }
            o
        }
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for v in &self.violations {
            match counts.iter_mut().find(|(n, _)| *n == v.lint.name()) {
                Some((_, c)) => *c += 1,
                None => counts.push((v.lint.name(), 1)),
            }
        }
        counts.sort();
        let counts_json: Vec<String> =
            counts.iter().map(|(n, c)| format!("\"{n}\": {c}")).collect();
        let viols: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
                    esc(&v.file),
                    v.line,
                    v.lint.name(),
                    esc(&v.message)
                )
            })
            .collect();
        format!(
            "{{\n  \"files_scanned\": {},\n  \"violation_count\": {},\n  \"counts\": {{{}}},\n  \"violations\": [{}]\n}}",
            self.files_scanned,
            self.violations.len(),
            counts_json.join(", "),
            if viols.is_empty() { String::new() } else { format!("\n    {}\n  ", viols.join(",\n    ")) }
        )
    }

    /// One line of scan telemetry for the CI log: timing plus cache
    /// hit rate (only meaningful after a cached scan).
    pub fn render_timing(&self) -> String {
        format!(
            "colt-analyze: scan took {} ms (cache: {} hit / {} analyzed)\n",
            self.elapsed_ms, self.cache_hits, self.cache_misses
        )
    }

    /// The per-lint waiver budget table and whether any cap is
    /// exceeded. Caps come from `[waiver-budget]` in the manifest;
    /// unlisted lints cap at zero.
    pub fn render_waivers(&self, manifest: &Manifest) -> (String, bool) {
        let mut counts: Vec<(String, Vec<&WaiverSite>)> = Vec::new();
        for w in &self.waivers {
            match counts.iter_mut().find(|(l, _)| *l == w.lint) {
                Some((_, sites)) => sites.push(w),
                None => counts.push((w.lint.clone(), vec![w])),
            }
        }
        counts.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("## Waiver budget\n\n");
        out.push_str(&format!("{:<18} {:>7} {:>5} {:>9}\n", "lint", "waivers", "cap", "headroom"));
        let mut over = false;
        for (lint, sites) in &counts {
            let cap = manifest.waiver_cap(lint);
            let n = sites.len() as u64;
            let status = if n > cap {
                over = true;
                "OVER".to_string()
            } else {
                (cap - n).to_string()
            };
            out.push_str(&format!("{lint:<18} {n:>7} {cap:>5} {status:>9}\n"));
            if n > cap {
                for s in sites {
                    out.push_str(&format!("    over-cap site: {}:{}\n", s.file, s.line));
                }
            }
        }
        // Caps for lints that currently have no waivers at all are
        // stale headroom: surface them so they get ratcheted to zero.
        for (lint, cap) in &manifest.waiver_budget {
            if *cap > 0 && !counts.iter().any(|(l, _)| l == lint) {
                out.push_str(&format!(
                    "{lint:<18} {0:>7} {cap:>5} {cap:>9}  (cap is stale: ratchet to 0)\n",
                    0
                ));
            }
        }
        out.push_str(&format!("{:<18} {:>7}\n", "total", self.waivers.len()));
        (out, over)
    }

    /// Minimal SARIF 2.1.0 document (one run, one result per
    /// violation) for CI code-scanning upload.
    pub fn to_sarif(&self) -> String {
        fn esc(s: &str) -> String {
            let mut o = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => o.push_str("\\\""),
                    '\\' => o.push_str("\\\\"),
                    '\n' => o.push_str("\\n"),
                    '\t' => o.push_str("\\t"),
                    c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
                    c => o.push(c),
                }
            }
            o
        }
        let rules: Vec<String> = Lint::all()
            .iter()
            .map(|l| {
                format!(
                    "{{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                    l.name(),
                    esc(l.summary())
                )
            })
            .collect();
        let results: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                    v.lint.name(),
                    esc(&v.message),
                    esc(&v.file),
                    v.line
                )
            })
            .collect();
        format!(
            "{{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [{{\n    \"tool\": {{\"driver\": {{\"name\": \"colt-analyze\", \"informationUri\": \"https://example.invalid/colt\", \"rules\": [{}]}}}},\n    \"results\": [{}]\n  }}]\n}}\n",
            rules.join(", "),
            results.join(", ")
        )
    }
}

/// Paths (relative, `/`-separated) never scanned: build output, VCS
/// metadata, and the deliberately-dirty fixture corpus.
fn skip_dir(rel: &str) -> bool {
    rel == "target"
        || rel == ".git"
        || rel.starts_with("target/")
        || rel.ends_with("/target")
        || rel == "crates/analyze/tests/fixtures"
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let rel = rel_of(root, &path);
        if path.is_dir() {
            if !skip_dir(&rel) {
                walk(root, &path, out)?;
            }
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scan the workspace rooted at `root` and run every rule over every
/// `.rs` file. Uncached (the form other crates' test suites call);
/// the CLI uses [`check_workspace_cached`].
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let manifest =
        Manifest::load(root).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    scan_workspace(root, &manifest, false)
}

/// Scan with the content-hash incremental cache under `target/`:
/// unchanged files (same content hash, same manifest + rules revision)
/// are served from the previous scan's results. Returns the governing
/// manifest so callers can render the waiver budget.
pub fn check_workspace_cached(root: &Path, use_cache: bool) -> io::Result<(Report, Manifest)> {
    let manifest =
        Manifest::load(root).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let report = scan_workspace(root, &manifest, use_cache)?;
    Ok((report, manifest))
}

fn scan_workspace(root: &Path, manifest: &Manifest, use_cache: bool) -> io::Result<Report> {
    let start = Instant::now();
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    let cache_path = cache::cache_path(root);
    let key = cache::cache_key(manifest);
    let old = if use_cache { cache::load(&cache_path, key) } else { None };
    let old = old.unwrap_or_default();
    let mut fresh: Vec<(String, cache::Entry)> = Vec::new();
    let mut report = Report::default();
    for path in files {
        let rel = rel_of(root, &path);
        let src = std::fs::read_to_string(&path)?;
        let hash = cache::fnv1a(src.as_bytes());
        report.files_scanned += 1;
        let entry = match old.get(&rel).filter(|e| e.hash == hash) {
            Some(hit) => {
                report.cache_hits += 1;
                hit.clone()
            }
            None => {
                report.cache_misses += 1;
                let file = load_source(&rel, &src);
                let raw = rules::check_file(&file, manifest);
                let violations = apply_waivers(&file, raw);
                cache::Entry { hash, violations, waivers: waiver_sites(&file) }
            }
        };
        report.violations.extend(entry.violations.iter().cloned());
        report.waivers.extend(entry.waivers.iter().cloned());
        fresh.push((rel, entry));
    }
    if use_cache {
        // Best-effort: a read-only target dir must not fail the scan.
        let _ = cache::store(&cache_path, key, &fresh);
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    report.elapsed_ms = start.elapsed().as_millis();
    Ok(report)
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/analyze` → two levels up). Valid both for the CLI and for
/// other crates' test suites that link the library.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/cluster.rs"), (Some("core".into()), Kind::Lib));
        assert_eq!(classify("crates/bench/src/bin/fig3.rs"), (Some("bench".into()), Kind::Bin));
        assert_eq!(classify("crates/bench/benches/btree.rs"), (Some("bench".into()), Kind::Test));
        assert_eq!(classify("crates/catalog/tests/t.rs"), (Some("catalog".into()), Kind::Test));
        assert_eq!(classify("src/lib.rs"), (None, Kind::Lib));
        assert_eq!(classify("src/main.rs"), (None, Kind::Bin));
        assert_eq!(classify("tests/end_to_end.rs"), (None, Kind::Test));
        assert_eq!(classify("examples/quickstart.rs"), (None, Kind::Test));
    }

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    // colt: allow(panic-policy) — caller checked is_some
    x.unwrap()
}
fn g(x: Option<u8>) -> u8 {
    x.unwrap() // colt: allow(panic-policy) — caller checked is_some
}
";
        let v = analyze_source("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waiver_wrong_lint_does_not_suppress() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // colt: allow(wall-clock) — wrong lint\n}\n";
        let v = analyze_source("crates/core/src/x.rs", src);
        let lints: Vec<&str> = v.iter().map(|x| x.lint.name()).collect();
        assert!(lints.contains(&"panic-policy"), "{v:?}");
        assert!(lints.contains(&"unused-waiver"), "{v:?}");
    }

    #[test]
    fn waiver_without_reason_is_bad() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // colt: allow(panic-policy)\n}\n";
        let v = analyze_source("crates/core/src/x.rs", src);
        let lints: Vec<&str> = v.iter().map(|x| x.lint.name()).collect();
        assert!(lints.contains(&"bad-waiver"), "{v:?}");
        assert!(lints.contains(&"panic-policy"), "reasonless waiver must not suppress: {v:?}");
    }

    #[test]
    fn unknown_lint_waiver_is_bad() {
        let src = "// colt: allow(made-up-lint) — whatever\nfn f() {}\n";
        let v = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint, Lint::BadWaiver);
    }

    #[test]
    fn unused_waiver_reported() {
        let src = "// colt: allow(panic-policy) — nothing here panics\nfn f() {}\n";
        let v = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint, Lint::UnusedWaiver);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
fn lib_ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u8> = Some(1);
        x.unwrap();
        println!(\"test output is fine\");
    }
}
";
        let v = analyze_source("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
        let v = analyze_source("crates/core/tests/integration.rs", "fn f(x: Option<u8>) { x.unwrap(); }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn json_summary_shape() {
        let r = Report {
            files_scanned: 2,
            violations: vec![Violation {
                file: "a.rs".into(),
                line: 3,
                lint: Lint::WallClock,
                message: "msg with \"quotes\"".into(),
            }],
            ..Report::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"wall-clock\": 1"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(r.render().contains("a.rs:3: wall-clock:"));
    }
}
