//! A minimal Rust lexer: just enough to walk source without being
//! fooled by comments, strings, raw strings, char literals, or
//! lifetimes.
//!
//! The lints only need identifiers and punctuation with line numbers —
//! no parsing. Comments are scanned (not discarded) so waiver
//! annotations (`// colt: allow(lint) — reason`) are collected during
//! lexing.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`.`, `!`, `:`, `&`, `{`, …).
    Punct(char),
    /// A numeric literal (content irrelevant to every lint).
    Num,
    /// A plain `"…"` string literal, content as written (escapes kept
    /// raw — the metric-name lints only match escape-free literals).
    /// Raw/byte strings lex as no token; no lint inspects them.
    Str(String),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A `// colt: allow(<lint>) — <reason>` annotation found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the annotation starts on.
    pub line: u32,
    /// The waived lint name, as written.
    pub lint: String,
    /// The free-text justification after the dash (may be empty — the
    /// engine reports empty reasons as `bad-waiver`).
    pub reason: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens outside comments/strings, in source order.
    pub tokens: Vec<Token>,
    /// Waiver annotations found in comments.
    pub waivers: Vec<Waiver>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scan a comment body for waiver annotations (there may be several in
/// one block comment).
fn collect_waivers(body: &str, start_line: u32, out: &mut Vec<Waiver>) {
    for (i, line) in body.split('\n').enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("colt: allow(") {
            let after = &rest[pos + "colt: allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let lint = after[..close].trim().to_string();
            let mut reason = after[close + 1..].trim_start();
            // Accept an em-dash or one-or-more ASCII dashes as the
            // lint/reason separator.
            reason = reason.strip_prefix('—').unwrap_or(reason);
            reason = reason.trim_start_matches('-').trim();
            out.push(Waiver {
                line: start_line + i as u32,
                lint,
                reason: reason.to_string(),
            });
            rest = &after[close + 1..];
        }
    }
}

/// Lex one file's source text.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    // Advance over `chars[i]`, bumping the line counter on newlines.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' | ' ' | '\t' | '\r' => bump!(),
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment. Doc comments (`///`, `//!`) are rendered
                // prose — they describe the waiver syntax, they don't
                // grant waivers.
                let start = i;
                let start_line = line;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let is_doc = matches!(chars.get(start + 2), Some('/') | Some('!'));
                if !is_doc {
                    let body: String = chars[start..i].iter().collect();
                    collect_waivers(&body, start_line, &mut out.waivers);
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nested per Rust rules.
                let start = i;
                let start_line = line;
                let mut depth = 0usize;
                while i < n {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        bump!();
                        bump!();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        bump!();
                    }
                }
                let is_doc = matches!(chars.get(start + 2), Some('*') | Some('!'));
                if !is_doc {
                    let body: String = chars[start..i.min(n)].iter().collect();
                    collect_waivers(&body, start_line, &mut out.waivers);
                }
            }
            '"' => {
                // String literal with escapes; captured so lints can
                // validate metric-name / ledger-kind literals.
                let tok_line = line;
                let mut content = String::new();
                bump!();
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        content.push(chars[i]);
                        content.push(chars[i + 1]);
                        bump!();
                        bump!();
                    } else if chars[i] == '"' {
                        bump!();
                        break;
                    } else {
                        content.push(chars[i]);
                        bump!();
                    }
                }
                out.tokens.push(Token { tok: Tok::Str(content), line: tok_line });
            }
            '\'' => {
                // Char literal or lifetime.
                if i + 1 < n && chars[i + 1] == '\\' {
                    // '\n', '\u{..}', … — scan to the closing quote. The
                    // third bump (past the escaped character) is guarded:
                    // a file truncated at `'\` must not index past EOF.
                    bump!();
                    bump!();
                    if i < n {
                        bump!();
                    }
                    while i < n && chars[i] != '\'' {
                        bump!();
                    }
                    if i < n {
                        bump!();
                    }
                } else if i + 1 < n
                    && is_ident_start(chars[i + 1])
                    && (i + 2 >= n || chars[i + 2] != '\'')
                {
                    // Lifetime: 'a, 'static — no closing quote. The EOF
                    // arm matters: `<'a` at end of input is a lifetime,
                    // not an unterminated char literal.
                    bump!();
                    while i < n && is_ident_cont(chars[i]) {
                        bump!();
                    }
                } else {
                    // 'x' or '(' etc.
                    bump!();
                    while i < n && chars[i] != '\'' {
                        bump!();
                    }
                    if i < n {
                        bump!();
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                out.tokens.push(Token { tok: Tok::Num, line });
                while i < n && (is_ident_cont(chars[i]) || chars[i] == '.') {
                    // `0..10` must not swallow the range dots.
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    bump!();
                }
            }
            _ if is_ident_start(c) => {
                // Raw strings (r"…", r#"…"#, br#"…"#) and byte literals
                // (b'…', b"…") start with an identifier character.
                if (c == 'r' || c == 'b') && raw_string_ahead(&chars, i) {
                    i = skip_raw_or_byte(&chars, i, &mut line);
                    continue;
                }
                if c == 'r' && i + 1 < n && chars[i + 1] == '#' && i + 2 < n
                    && is_ident_start(chars[i + 2])
                {
                    // Raw identifier r#type — lex as the plain identifier.
                    i += 2;
                }
                let start = i;
                let tok_line = line;
                while i < n && is_ident_cont(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: tok_line,
                });
            }
            _ => {
                out.tokens.push(Token { tok: Tok::Punct(c), line });
                bump!();
            }
        }
    }
    out
}

/// Does a raw/byte string start at `i` (which holds `r` or `b`)?
fn raw_string_ahead(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i + 1;
    if chars[i] == 'b' && j < n && chars[j] == 'r' {
        j += 1;
    }
    if chars[i] == 'b' && j == i + 1 && j < n && (chars[j] == '"' || chars[j] == '\'') {
        return true; // b"…" or b'…'
    }
    while j < n && chars[j] == '#' {
        j += 1;
    }
    j < n && chars[j] == '"' && (chars[i] == 'r' || (chars[i] == 'b' && chars[i + 1] == 'r'))
}

/// Skip a raw string / byte string / byte char starting at `i`,
/// returning the index just past it.
fn skip_raw_or_byte(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut raw = chars[i] == 'r';
    i += 1; // past r or b
    if i < n && chars[i] == 'r' {
        raw = true;
        i += 1; // br
    }
    if i < n && chars[i] == '\'' {
        // b'x' byte char, possibly escaped.
        i += 1;
        if i < n && chars[i] == '\\' {
            i += 2;
        }
        while i < n && chars[i] != '\'' {
            if chars[i] == '\n' {
                *line += 1;
            }
            i += 1;
        }
        return (i + 1).min(n);
    }
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < n && chars[i] == '"' {
        i += 1;
        // Scan to `"` followed by `hashes` hash marks. Raw strings have
        // no escapes, but plain byte strings (`b"…"`) do — an escaped
        // `\"` there must not close the literal, or every token after
        // it desynchronizes.
        'outer: while i < n {
            if chars[i] == '\n' {
                *line += 1;
            }
            if !raw && chars[i] == '\\' && i + 1 < n {
                if chars[i + 1] == '\n' {
                    *line += 1;
                }
                i += 2;
                continue;
            }
            if chars[i] == '"' {
                let mut k = 0usize;
                while k < hashes {
                    if i + 1 + k >= n || chars[i + 1 + k] != '#' {
                        i += 1;
                        continue 'outer;
                    }
                    k += 1;
                }
                return i + 1 + hashes;
            }
            i += 1;
        }
    }
    i
}

/// Convenience for rules: the identifier text of a token, if any.
pub fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Convenience for rules: the content of a plain string literal, if any.
pub fn str_lit(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| ident(t).map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let ids = idents(r#"let x = "Instant HashMap println!"; use y;"#);
        assert_eq!(ids, ["let", "x", "use", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ids = idents(r###"let s = r#"Instant "quoted" SystemTime"#; done"###);
        assert_eq!(ids, ["let", "s", "done"].map(String::from));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("a /* one /* two Instant */ still comment */ b");
        assert_eq!(ids, ["a", "b"]);
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let ids = idents("x // Instant\n/// SystemTime\ny");
        assert_eq!(ids, ["x", "y"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let ids = idents("let a: &'static str = f('x', '\\n', 'β'); fn g<'a>(v: &'a u8) {}");
        assert!(!ids.contains(&"static".to_string()), "lifetimes are skipped: {ids:?}");
        assert!(ids.contains(&"str".to_string()));
        assert!(!ids.contains(&"x".to_string()), "char literal must not tokenize");
        assert!(ids.contains(&"g".to_string()));
    }

    #[test]
    fn byte_literals() {
        let ids = idents(r##"let a = b'q'; let s = b"Instant"; let r = br#"SystemTime"#; end"##);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"end".to_string()));
    }

    #[test]
    fn line_numbers_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .filter_map(|t| ident(t).map(|s| (s.to_string(), t.line)))
            .collect();
        assert_eq!(lines, [("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]);
    }

    #[test]
    fn waiver_parsed_with_reason() {
        let lexed = lex("foo(); // colt: allow(panic-policy) — index is in bounds by loop bound\n");
        assert_eq!(lexed.waivers.len(), 1);
        let w = &lexed.waivers[0];
        assert_eq!(w.line, 1);
        assert_eq!(w.lint, "panic-policy");
        assert_eq!(w.reason, "index is in bounds by loop bound");
    }

    #[test]
    fn waiver_ascii_dash_and_missing_reason() {
        let lexed = lex("// colt: allow(wall-clock) - bench timing\n// colt: allow(layering)\n");
        assert_eq!(lexed.waivers[0].reason, "bench timing");
        assert_eq!(lexed.waivers[1].lint, "layering");
        assert_eq!(lexed.waivers[1].reason, "");
        assert_eq!(lexed.waivers[1].line, 2);
    }

    #[test]
    fn waiver_inside_string_is_ignored() {
        let lexed = lex(r#"let s = "colt: allow(panic-policy) — nope";"#);
        assert!(lexed.waivers.is_empty());
    }

    #[test]
    fn string_literals_are_captured_with_lines() {
        let lexed = lex("f(\"a.b\");\ng(\"x\\ny\");");
        let strs: Vec<(&str, u32)> =
            lexed.tokens.iter().filter_map(|t| str_lit(t).map(|s| (s, t.line))).collect();
        assert_eq!(strs, [("a.b", 1), ("x\\ny", 2)]);
    }

    #[test]
    fn raw_ident_lexes_as_plain() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn lifetime_at_eof_is_not_a_char_literal() {
        // A file truncated right after a lifetime must still lex the
        // tokens before it and terminate cleanly.
        let ids = idents("use t; struct S<'a");
        assert_eq!(ids, ["use", "t", "struct", "S"].map(String::from));
        // And the escaped-char prefix of a truncated literal must not
        // index past EOF.
        let _ = lex("let c = '\\");
        let _ = lex("'");
    }

    #[test]
    fn byte_string_escapes_do_not_desync() {
        // Before the fix, `\"` closed the byte string early and the
        // rest of the file lexed shifted by one string boundary.
        let ids = idents(r#"let s = b"a\"Instant"; end"#);
        assert!(!ids.contains(&"Instant".to_string()), "leaked from byte string: {ids:?}");
        assert!(ids.contains(&"end".to_string()), "tokens after the literal lost: {ids:?}");
    }

    #[test]
    fn multi_hash_raw_string_with_inner_guard() {
        // `"#` inside an `r##"…"##` literal is content, not a closer.
        let ids = idents(r####"let s = r##"quote "# inside"##; end"####);
        assert!(!ids.contains(&"inside".to_string()));
        assert!(ids.contains(&"end".to_string()));
    }

    #[test]
    fn deeply_nested_and_unterminated_block_comments() {
        let ids = idents("a /* 1 /* 2 /* 3 Instant */ 2 */ 1 */ b");
        assert_eq!(ids, ["a", "b"]);
        // Unterminated at EOF: no hang, and waivers inside are still
        // collected so a truncated file fails loudly on the lint, not
        // silently on the lexer.
        let lexed = lex("x /* colt: allow(panic-policy) — truncated");
        assert_eq!(lexed.waivers.len(), 1);
        assert_eq!(lexed.waivers[0].lint, "panic-policy");
    }

    #[test]
    fn numbers_do_not_produce_identifiers() {
        let ids = idents("let x = 1e3 + 0xFFu32 + 1_000; for i in 0..10 {}");
        assert!(!ids.contains(&"e3".to_string()));
        assert!(!ids.contains(&"xFFu32".to_string()));
        assert!(ids.contains(&"for".to_string()));
    }
}
