//! Content-hash incremental scan cache.
//!
//! One line-oriented file under `target/` maps each scanned path to
//! its FNV-1a content hash plus the post-waiver violations and waiver
//! sites the last scan produced. A file whose hash is unchanged is
//! served from the cache, so a warm full-workspace re-scan is pure
//! hashing (<1s). The cache key folds in the manifest text and a rules
//! revision, so editing `colt-analyze.toml` or shipping new lints
//! invalidates everything at once. Writes go through a
//! temp-file-and-rename so concurrent scans never observe a torn file;
//! any parse mismatch simply degrades to a cold scan.

use crate::rules::{Lint, Violation};
use crate::{Manifest, WaiverSite};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Bump when rule behavior changes so stale caches self-invalidate.
const RULES_REV: u64 = 1;

/// Cached scan results for one file.
#[derive(Debug, Clone)]
pub struct Entry {
    /// FNV-1a 64 hash of the file's bytes.
    pub hash: u64,
    /// Post-waiver violations.
    pub violations: Vec<Violation>,
    /// Non-test waiver sites (budget input).
    pub waivers: Vec<WaiverSite>,
}

/// FNV-1a 64-bit content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache file's location for a workspace root.
pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("colt-analyze-cache.txt")
}

/// The scan-wide cache key: manifest text + rules revision + crate
/// version.
pub fn cache_key(manifest: &Manifest) -> u64 {
    let mut text = manifest.source.clone();
    text.push_str(&format!("\nrules-rev={RULES_REV}\nversion={}", env!("CARGO_PKG_VERSION")));
    fnv1a(text.as_bytes())
}

/// Load the cache, returning `None` on any mismatch (missing file,
/// different key, malformed line) — the scan then runs cold.
pub fn load(path: &Path, key: u64) -> Option<BTreeMap<String, Entry>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("colt-analyze-cache {key:016x}") {
        return None;
    }
    let mut map = BTreeMap::new();
    let mut current: Option<(String, Entry)> = None;
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "F" => {
                if let Some((rel, entry)) = current.take() {
                    map.insert(rel, entry);
                }
                let (hash_hex, rel) = rest.split_once(' ')?;
                let hash = u64::from_str_radix(hash_hex, 16).ok()?;
                current =
                    Some((rel.to_string(), Entry { hash, violations: Vec::new(), waivers: Vec::new() }));
            }
            "V" => {
                let (rel, entry) = current.as_mut()?;
                let mut it = rest.splitn(3, ' ');
                let line_no: u32 = it.next()?.parse().ok()?;
                let lint = Lint::by_name(it.next()?)?;
                let message = it.next()?.to_string();
                entry.violations.push(Violation {
                    file: rel.clone(),
                    line: line_no,
                    lint,
                    message,
                });
            }
            "W" => {
                let (rel, entry) = current.as_mut()?;
                let (line_no, lint) = rest.split_once(' ')?;
                entry.waivers.push(WaiverSite {
                    file: rel.clone(),
                    line: line_no.parse().ok()?,
                    lint: lint.to_string(),
                });
            }
            _ => return None,
        }
    }
    if let Some((rel, entry)) = current.take() {
        map.insert(rel, entry);
    }
    Some(map)
}

/// Persist the cache atomically (temp file + rename). Violation
/// messages never contain newlines (the lexer/rules only emit one-line
/// messages), which keeps the format line-oriented.
pub fn store(path: &Path, key: u64, entries: &[(String, Entry)]) -> std::io::Result<()> {
    let Some(dir) = path.parent() else { return Ok(()) };
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".colt-analyze-cache.{}.tmp", std::process::id()));
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        writeln!(f, "colt-analyze-cache {key:016x}")?;
        for (rel, e) in entries {
            writeln!(f, "F {:016x} {rel}", e.hash)?;
            for v in &e.violations {
                writeln!(f, "V {} {} {}", v.line, v.lint.name(), v.message.replace('\n', " "))?;
            }
            for w in &e.waivers {
                writeln!(f, "W {} {}", w.line, w.lint)?;
            }
        }
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"colt"), fnv1a(b"colt"));
    }

    #[test]
    fn round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("colt-analyze-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        let entries = vec![
            (
                "crates/core/src/x.rs".to_string(),
                Entry {
                    hash: 42,
                    violations: vec![Violation {
                        file: "crates/core/src/x.rs".into(),
                        line: 7,
                        lint: Lint::PanicPolicy,
                        message: "a message with spaces".into(),
                    }],
                    waivers: vec![WaiverSite {
                        file: "crates/core/src/x.rs".into(),
                        line: 3,
                        lint: "panic-policy".into(),
                    }],
                },
            ),
            ("crates/core/src/y.rs".to_string(), Entry { hash: 9, violations: vec![], waivers: vec![] }),
        ];
        store(&path, 0xabc, &entries).unwrap();
        let back = load(&path, 0xabc).unwrap();
        assert_eq!(back.len(), 2);
        let x = &back["crates/core/src/x.rs"];
        assert_eq!(x.hash, 42);
        assert_eq!(x.violations.len(), 1);
        assert_eq!(x.violations[0].line, 7);
        assert_eq!(x.violations[0].message, "a message with spaces");
        assert_eq!(x.waivers[0].line, 3);
        // Key mismatch → cold scan.
        assert!(load(&path, 0xdef).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
