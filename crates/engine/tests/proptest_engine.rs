//! Property tests for the engine: for arbitrary queries and arbitrary
//! physical configurations, plan execution must agree with a trivial
//! reference evaluator, and what-if answers must equal re-optimization
//! cost deltas.

use colt_catalog::{ColRef, Column, Database, IndexOrigin, PhysicalConfig, TableId, TableSchema};
use colt_engine::{Eqo, Executor, IndexSetView, Optimizer, PredicateKind, Query, SelPred};
use colt_storage::{row_from, Value, ValueType};
use proptest::prelude::*;

/// A two-table database whose contents are fully determined by `n`.
fn build_db(n_a: usize, n_b: usize) -> (Database, TableId, TableId) {
    let mut db = Database::new();
    let a = db.add_table(TableSchema::new(
        "a",
        vec![
            Column::new("id", ValueType::Int),
            Column::new("fk", ValueType::Int),
            Column::new("v", ValueType::Int),
        ],
    ));
    let b = db.add_table(TableSchema::new(
        "b",
        vec![Column::new("id", ValueType::Int), Column::new("w", ValueType::Int)],
    ));
    db.insert_rows(
        a,
        (0..n_a as i64).map(|i| {
            row_from(vec![
                Value::Int(i),
                Value::Int(i % n_b.max(1) as i64),
                Value::Int(i * 7 % 23),
            ])
        }),
    );
    db.insert_rows(b, (0..n_b as i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 5)])));
    db.analyze_all();
    (db, a, b)
}

/// Reference evaluation: nested loops + direct predicate checks, for
/// any number of tables.
fn reference(db: &Database, q: &Query) -> usize {
    let eval_table = |t: TableId| -> Vec<Vec<Value>> {
        db.table(t)
            .heap
            .iter()
            .filter(|(_, row)| {
                q.selections_on(t).all(|p| p.matches(&row[p.col.column as usize]))
            })
            .map(|(_, row)| row.to_vec())
            .collect()
    };
    // Cross product of all filtered tables, then apply join predicates.
    let mut combos: Vec<Vec<Vec<Value>>> = vec![Vec::new()];
    for &t in &q.tables {
        let rows = eval_table(t);
        let mut next = Vec::new();
        for combo in &combos {
            for r in &rows {
                let mut c = combo.clone();
                c.push(r.clone());
                next.push(c);
            }
        }
        combos = next;
    }
    combos
        .into_iter()
        .filter(|combo| {
            q.joins.iter().all(|j| {
                let li = q.tables.iter().position(|&t| t == j.left.table).unwrap();
                let ri = q.tables.iter().position(|&t| t == j.right.table).unwrap();
                combo[li][j.left.column as usize] == combo[ri][j.right.column as usize]
            })
        })
        .count()
}

/// Strategy: a random predicate on one of `a`'s three columns.
fn pred(a: TableId) -> impl Strategy<Value = SelPred> {
    (0u32..3, -5i64..30, -5i64..30, 0u8..3).prop_map(move |(col, x, y, kind)| {
        let c = ColRef::new(a, col);
        match kind {
            0 => SelPred::eq(c, x),
            1 => SelPred::between(c, x.min(y), x.max(y)),
            _ => SelPred::ge(c, x),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Single-table queries agree with the reference evaluator under
    /// every index configuration.
    #[test]
    fn single_table_matches_reference(
        n in 1usize..800,
        preds in prop::collection::vec(pred(TableId(0)), 0..3),
        index_mask in 0u8..8,
    ) {
        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let mut cfg = PhysicalConfig::new();
        for col in 0..3u32 {
            if index_mask & (1 << col) != 0 {
                cfg.create_index(&db, ColRef::new(a, col), IndexOrigin::Online);
            }
        }
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan);
        prop_assert_eq!(res.row_count as usize, reference(&db, &q));
    }

    /// Join queries agree with the reference evaluator, with and without
    /// indexes (including the INLJ-enabled optimizer).
    #[test]
    fn join_matches_reference(
        n_a in 1usize..400,
        n_b in 1usize..40,
        preds in prop::collection::vec(pred(TableId(0)), 0..2),
        with_index in any::<bool>(),
        inlj in any::<bool>(),
    ) {
        use colt_engine::{JoinPred, OptimizerOptions};
        let (db, a, b) = build_db(n_a, n_b);
        let q = Query::join(
            vec![a, b],
            vec![JoinPred::new(ColRef::new(a, 1), ColRef::new(b, 0))],
            preds,
        );
        let mut cfg = PhysicalConfig::new();
        if with_index {
            cfg.create_index(&db, ColRef::new(a, 1), IndexOrigin::Online);
        }
        let opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: inlj });
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan);
        prop_assert_eq!(res.row_count as usize, reference(&db, &q), "{}", plan.explain());
    }

    /// What-if gains always equal the cost delta of actually toggling
    /// the index in the view.
    #[test]
    fn whatif_equals_reoptimization_delta(
        n in 50usize..600,
        preds in prop::collection::vec(pred(TableId(0)), 1..3),
        probe_col in 0u32..3,
        materialized in any::<bool>(),
    ) {
        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let col = ColRef::new(a, probe_col);
        let mut cfg = PhysicalConfig::new();
        if materialized {
            cfg.create_index(&db, col, IndexOrigin::Online);
        }
        let mut eqo = Eqo::new(&db);
        let gain = eqo.what_if_optimize(&q, &[col], &cfg)[0].gain;

        // Recompute the delta by brute force on two configs.
        let mut with = PhysicalConfig::new();
        with.create_index(&db, col, IndexOrigin::Online);
        let without = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let c_with = opt.optimize(&q, IndexSetView::real(&with)).est_cost();
        let c_without = opt.optimize(&q, IndexSetView::real(&without)).est_cost();
        prop_assert!((gain - (c_without - c_with).max(0.0)).abs() < 1e-6,
            "gain {gain} vs delta {}", c_without - c_with);
    }

    /// Optimizer plan costs are never higher than the forced-seqscan
    /// plan under the same view (the optimizer must not pessimize).
    #[test]
    fn optimizer_never_pessimizes(
        n in 50usize..600,
        preds in prop::collection::vec(pred(TableId(0)), 1..3),
        index_mask in 0u8..8,
    ) {
        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let mut cfg = PhysicalConfig::new();
        for col in 0..3u32 {
            if index_mask & (1 << col) != 0 {
                cfg.create_index(&db, ColRef::new(a, col), IndexOrigin::Online);
            }
        }
        let opt = Optimizer::new(&db);
        let chosen = opt.optimize(&q, IndexSetView::real(&cfg)).est_cost();
        let bare = opt.optimize(&q, IndexSetView::real(&PhysicalConfig::new())).est_cost();
        prop_assert!(chosen <= bare + 1e-9, "chosen {chosen} vs seq {bare}");
    }

    /// Aggregation counts always match the plain result cardinality.
    #[test]
    fn aggregate_count_matches_rows(
        n in 1usize..500,
        preds in prop::collection::vec(pred(TableId(0)), 0..2),
    ) {
        use colt_engine::{AggExpr, AggSpec};
        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        let exec = Executor::new(&db, &cfg);
        let plain = exec.execute(&q, &plan).row_count;
        let spec = AggSpec { group_by: vec![], exprs: vec![AggExpr::count_star()] };
        let (_, rows) = exec.execute_aggregate(&q, &plan, &spec);
        prop_assert_eq!(rows[0][0].clone(), Value::Int(plain as i64));
    }

    /// SQL parsing of generated statements round-trips the predicate
    /// semantics: executing the parsed query matches the reference.
    #[test]
    fn parsed_sql_matches_reference(
        n in 10usize..400,
        eq in -5i64..30,
        lo in -5i64..15,
        width in 0i64..20,
    ) {
        let (db, _, _) = build_db(n, 7);
        let sql = format!(
            "SELECT * FROM a WHERE v = {eq} AND id BETWEEN {lo} AND {}",
            lo + width
        );
        let parsed = colt_engine::parse_sql(&db, &sql).unwrap();
        prop_assert!(parsed.agg.is_none());
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&parsed.query, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&parsed.query, &plan);
        prop_assert_eq!(res.row_count as usize, reference(&db, &parsed.query));
        // And the parsed predicates have the intended shapes.
        let eq_ok = matches!(parsed.query.selections[0].kind, PredicateKind::Eq(_));
        let range_ok = matches!(parsed.query.selections[1].kind, PredicateKind::Range { .. });
        prop_assert!(eq_ok && range_ok);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Three-table chains agree with the reference for every index
    /// configuration and optimizer option.
    #[test]
    fn three_table_chain_matches_reference(
        n_a in 1usize..150,
        n_b in 1usize..30,
        preds in prop::collection::vec(pred(TableId(0)), 0..2),
        index_mask in 0u8..4,
        inlj in any::<bool>(),
    ) {
        use colt_engine::{JoinPred, OptimizerOptions};
        // Chain: a.fk = b.id, b.w = c.id (c = a small extra table).
        let (mut db, a, b) = build_db(n_a, n_b);
        let c = db.add_table(TableSchema::new(
            "c",
            vec![Column::new("id", ValueType::Int)],
        ));
        db.insert_rows(c, (0..5i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();

        let q = Query::join(
            vec![a, b, c],
            vec![
                JoinPred::new(ColRef::new(a, 1), ColRef::new(b, 0)),
                JoinPred::new(ColRef::new(b, 1), ColRef::new(c, 0)),
            ],
            preds,
        );
        let mut cfg = PhysicalConfig::new();
        if index_mask & 1 != 0 {
            cfg.create_index(&db, ColRef::new(a, 1), IndexOrigin::Online);
        }
        if index_mask & 2 != 0 {
            cfg.create_index(&db, ColRef::new(b, 0), IndexOrigin::Online);
        }
        let opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: inlj });
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan);
        prop_assert_eq!(res.row_count as usize, reference(&db, &q), "{}", plan.explain());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The SQL parser never panics, whatever bytes it is fed.
    #[test]
    fn sql_parser_never_panics(input in "\\PC{0,120}") {
        let (db, _, _) = build_db(10, 5);
        let _ = colt_engine::parse_sql(&db, &input);
    }

    /// Near-miss SQL (valid tokens, scrambled structure) never panics
    /// and either parses or errors cleanly.
    #[test]
    fn sql_token_soup_never_panics(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "select", "from", "where", "and", "between", "group", "by",
                "a", "b", "id", "fk", "v", "w", "*", ",", ".", "(", ")",
                "=", "<", "<=", ">", ">=", "1", "2.5", "'x'", "count", "sum",
            ]),
            0..25,
        ),
    ) {
        let (db, _, _) = build_db(10, 5);
        let input = words.join(" ");
        if let Ok(parsed) = colt_engine::parse_sql(&db, &input) {
            // Anything that parses must be a valid query.
            prop_assert!(parsed.query.validate().is_ok());
        }
    }
}
