//! Randomized property tests for the engine: for arbitrary queries and
//! arbitrary physical configurations, plan execution must agree with a
//! trivial reference evaluator, and what-if answers must equal
//! re-optimization cost deltas. Cases come from the in-repo seeded
//! PRNG, so every run checks the same inputs.

use colt_catalog::{ColRef, Column, Database, IndexOrigin, PhysicalConfig, TableId, TableSchema};
use colt_engine::{
    Collect, Eqo, Executor, IndexSetView, Optimizer, PredicateKind, Query, RowwiseExecutor,
    SelPred,
};
use colt_storage::{row_from, Prng, Value, ValueType};

/// A two-table database whose contents are fully determined by `n`.
fn build_db(n_a: usize, n_b: usize) -> (Database, TableId, TableId) {
    let mut db = Database::new();
    let a = db.add_table(TableSchema::new(
        "a",
        vec![
            Column::new("id", ValueType::Int),
            Column::new("fk", ValueType::Int),
            Column::new("v", ValueType::Int),
        ],
    ));
    let b = db.add_table(TableSchema::new(
        "b",
        vec![Column::new("id", ValueType::Int), Column::new("w", ValueType::Int)],
    ));
    db.insert_rows(
        a,
        (0..n_a as i64).map(|i| {
            row_from(vec![
                Value::Int(i),
                Value::Int(i % n_b.max(1) as i64),
                Value::Int(i * 7 % 23),
            ])
        }),
    );
    db.insert_rows(b, (0..n_b as i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 5)])));
    db.analyze_all();
    (db, a, b)
}

/// Reference evaluation: nested loops + direct predicate checks, for
/// any number of tables.
fn reference(db: &Database, q: &Query) -> usize {
    let eval_table = |t: TableId| -> Vec<Vec<Value>> {
        db.table(t)
            .heap
            .iter()
            .filter(|(_, row)| {
                q.selections_on(t).all(|p| p.matches(&row[p.col.column as usize]))
            })
            .map(|(_, row)| row.to_vec())
            .collect()
    };
    // Cross product of all filtered tables, then apply join predicates.
    let mut combos: Vec<Vec<Vec<Value>>> = vec![Vec::new()];
    for &t in &q.tables {
        let rows = eval_table(t);
        let mut next = Vec::new();
        for combo in &combos {
            for r in &rows {
                let mut c = combo.clone();
                c.push(r.clone());
                next.push(c);
            }
        }
        combos = next;
    }
    combos
        .into_iter()
        .filter(|combo| {
            q.joins.iter().all(|j| {
                let li = q.tables.iter().position(|&t| t == j.left.table).unwrap();
                let ri = q.tables.iter().position(|&t| t == j.right.table).unwrap();
                combo[li][j.left.column as usize] == combo[ri][j.right.column as usize]
            })
        })
        .count()
}

/// A random predicate on one of `a`'s three columns.
fn pred(rng: &mut Prng, a: TableId) -> SelPred {
    let c = ColRef::new(a, rng.below(3) as u32);
    let x = rng.int_range(-5, 29);
    let y = rng.int_range(-5, 29);
    match rng.below(3) {
        0 => SelPred::eq(c, x),
        1 => SelPred::between(c, x.min(y), x.max(y)),
        _ => SelPred::ge(c, x),
    }
}

fn preds(rng: &mut Prng, a: TableId, max: usize) -> Vec<SelPred> {
    (0..rng.below(max + 1)).map(|_| pred(rng, a)).collect()
}

/// Single-table queries agree with the reference evaluator under every
/// index configuration.
#[test]
fn single_table_matches_reference() {
    let mut rng = Prng::new(0xE21E_0001);
    for case in 0..40u64 {
        let n = 1 + rng.below(799);
        let preds = preds(&mut rng, TableId(0), 2);
        let index_mask = rng.below(8) as u8;

        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let mut cfg = PhysicalConfig::new();
        for col in 0..3u32 {
            if index_mask & (1 << col) != 0 {
                cfg.create_index(&db, ColRef::new(a, col), IndexOrigin::Online);
            }
        }
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap();
        assert_eq!(res.row_count() as usize, reference(&db, &q), "case {case}");
    }
}

/// Join queries agree with the reference evaluator, with and without
/// indexes (including the INLJ-enabled optimizer).
#[test]
fn join_matches_reference() {
    use colt_engine::{JoinPred, OptimizerOptions};
    let mut rng = Prng::new(0xE21E_0002);
    for case in 0..40u64 {
        let n_a = 1 + rng.below(399);
        let n_b = 1 + rng.below(39);
        let preds = preds(&mut rng, TableId(0), 1);
        let with_index = rng.chance(0.5);
        let inlj = rng.chance(0.5);

        let (db, a, b) = build_db(n_a, n_b);
        let q = Query::join(
            vec![a, b],
            vec![JoinPred::new(ColRef::new(a, 1), ColRef::new(b, 0))],
            preds,
        );
        let mut cfg = PhysicalConfig::new();
        if with_index {
            cfg.create_index(&db, ColRef::new(a, 1), IndexOrigin::Online);
        }
        let opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: inlj });
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap();
        assert_eq!(
            res.row_count() as usize,
            reference(&db, &q),
            "case {case}: {}",
            plan.explain()
        );
    }
}

/// What-if gains always equal the cost delta of actually toggling the
/// index in the view.
#[test]
fn whatif_equals_reoptimization_delta() {
    let mut rng = Prng::new(0xE21E_0003);
    for case in 0..40u64 {
        let n = 50 + rng.below(550);
        let preds: Vec<SelPred> =
            (0..1 + rng.below(2)).map(|_| pred(&mut rng, TableId(0))).collect();
        let probe_col = rng.below(3) as u32;
        let materialized = rng.chance(0.5);

        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let col = ColRef::new(a, probe_col);
        let mut cfg = PhysicalConfig::new();
        if materialized {
            cfg.create_index(&db, col, IndexOrigin::Online);
        }
        let mut eqo = Eqo::new(&db);
        let gain = eqo.what_if_optimize(&q, &[col], &cfg)[0].gain;

        // Recompute the delta by brute force on two configs.
        let mut with = PhysicalConfig::new();
        with.create_index(&db, col, IndexOrigin::Online);
        let without = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let c_with = opt.optimize(&q, IndexSetView::real(&with)).est_cost();
        let c_without = opt.optimize(&q, IndexSetView::real(&without)).est_cost();
        assert!(
            (gain - (c_without - c_with).max(0.0)).abs() < 1e-6,
            "case {case}: gain {gain} vs delta {}",
            c_without - c_with
        );
    }
}

/// Optimizer plan costs are never higher than the forced-seqscan plan
/// under the same view (the optimizer must not pessimize).
#[test]
fn optimizer_never_pessimizes() {
    let mut rng = Prng::new(0xE21E_0004);
    for case in 0..40u64 {
        let n = 50 + rng.below(550);
        let preds: Vec<SelPred> =
            (0..1 + rng.below(2)).map(|_| pred(&mut rng, TableId(0))).collect();
        let index_mask = rng.below(8) as u8;

        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let mut cfg = PhysicalConfig::new();
        for col in 0..3u32 {
            if index_mask & (1 << col) != 0 {
                cfg.create_index(&db, ColRef::new(a, col), IndexOrigin::Online);
            }
        }
        let opt = Optimizer::new(&db);
        let chosen = opt.optimize(&q, IndexSetView::real(&cfg)).est_cost();
        let bare = opt.optimize(&q, IndexSetView::real(&PhysicalConfig::new())).est_cost();
        assert!(chosen <= bare + 1e-9, "case {case}: chosen {chosen} vs seq {bare}");
    }
}

/// Aggregation counts always match the plain result cardinality.
#[test]
fn aggregate_count_matches_rows() {
    use colt_engine::{AggExpr, AggSpec};
    let mut rng = Prng::new(0xE21E_0005);
    for case in 0..40u64 {
        let n = 1 + rng.below(499);
        let preds = preds(&mut rng, TableId(0), 1);

        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, preds);
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        let exec = Executor::new(&db, &cfg);
        let plain = exec.execute(&q, &plan, Collect::CountOnly).unwrap().row_count();
        let spec = AggSpec { group_by: vec![], exprs: vec![AggExpr::count_star()] };
        let (_, rows) = exec.execute_aggregate(&q, &plan, &spec).unwrap();
        assert_eq!(rows[0][0], Value::Int(plain as i64), "case {case}");
    }
}

/// SQL parsing of generated statements round-trips the predicate
/// semantics: executing the parsed query matches the reference.
#[test]
fn parsed_sql_matches_reference() {
    let mut rng = Prng::new(0xE21E_0006);
    for case in 0..40u64 {
        let n = 10 + rng.below(390);
        let eq = rng.int_range(-5, 29);
        let lo = rng.int_range(-5, 14);
        let width = rng.int_range(0, 19);

        let (db, _, _) = build_db(n, 7);
        let sql = format!(
            "SELECT * FROM a WHERE v = {eq} AND id BETWEEN {lo} AND {}",
            lo + width
        );
        let parsed = colt_engine::parse_sql(&db, &sql).unwrap();
        assert!(parsed.agg.is_none(), "case {case}");
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&parsed.query, IndexSetView::real(&cfg));
        let res =
            Executor::new(&db, &cfg).execute(&parsed.query, &plan, Collect::CountOnly).unwrap();
        assert_eq!(res.row_count() as usize, reference(&db, &parsed.query), "case {case}");
        // And the parsed predicates have the intended shapes.
        let eq_ok = matches!(parsed.query.selections[0].kind, PredicateKind::Eq(_));
        let range_ok = matches!(parsed.query.selections[1].kind, PredicateKind::Range { .. });
        assert!(eq_ok && range_ok, "case {case}");
    }
}

/// Three-table chains agree with the reference for every index
/// configuration and optimizer option.
#[test]
fn three_table_chain_matches_reference() {
    use colt_engine::{JoinPred, OptimizerOptions};
    let mut rng = Prng::new(0xE21E_0007);
    for case in 0..24u64 {
        let n_a = 1 + rng.below(149);
        let n_b = 1 + rng.below(29);
        let preds = preds(&mut rng, TableId(0), 1);
        let index_mask = rng.below(4) as u8;
        let inlj = rng.chance(0.5);

        // Chain: a.fk = b.id, b.w = c.id (c = a small extra table).
        let (mut db, a, b) = build_db(n_a, n_b);
        let c = db.add_table(TableSchema::new("c", vec![Column::new("id", ValueType::Int)]));
        db.insert_rows(c, (0..5i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();

        let q = Query::join(
            vec![a, b, c],
            vec![
                JoinPred::new(ColRef::new(a, 1), ColRef::new(b, 0)),
                JoinPred::new(ColRef::new(b, 1), ColRef::new(c, 0)),
            ],
            preds,
        );
        let mut cfg = PhysicalConfig::new();
        if index_mask & 1 != 0 {
            cfg.create_index(&db, ColRef::new(a, 1), IndexOrigin::Online);
        }
        if index_mask & 2 != 0 {
            cfg.create_index(&db, ColRef::new(b, 0), IndexOrigin::Online);
        }
        let opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: inlj });
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap();
        assert_eq!(
            res.row_count() as usize,
            reference(&db, &q),
            "case {case}: {}",
            plan.explain()
        );
    }
}

/// The vectorized executor is observationally identical to the
/// row-at-a-time reference implementation: same row count, same
/// `IoStats` (and therefore the same simulated clock), same collected
/// rows in the same order, for random queries over random physical
/// configurations and plan shapes.
#[test]
fn vectorized_matches_rowwise_reference() {
    use colt_engine::{JoinPred, OptimizerOptions};
    let mut rng = Prng::new(0xE21E_000A);
    for case in 0..40u64 {
        let n_a = 1 + rng.below(2999);
        let n_b = 1 + rng.below(39);
        let ps = preds(&mut rng, TableId(0), 2);
        let join = rng.chance(0.5);
        let index_mask = rng.below(8) as u8;
        let inlj = rng.chance(0.5);

        let (db, a, b) = build_db(n_a, n_b);
        let q = if join {
            Query::join(
                vec![a, b],
                vec![JoinPred::new(ColRef::new(a, 1), ColRef::new(b, 0))],
                ps,
            )
        } else {
            Query::single(a, ps)
        };
        let mut cfg = PhysicalConfig::new();
        for col in 0..3u32 {
            if index_mask & (1 << col) != 0 {
                cfg.create_index(&db, ColRef::new(a, col), IndexOrigin::Online);
            }
        }
        let opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: inlj });
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let vec_out = Executor::new(&db, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
        let row_out = RowwiseExecutor::new(&db, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
        let ctx = format!("case {case}: {}", plan.explain());
        assert_eq!(vec_out.row_count(), row_out.row_count(), "{ctx}");
        assert_eq!(vec_out.result.io, row_out.result.io, "{ctx}");
        assert_eq!(vec_out.layout, row_out.layout, "{ctx}");
        assert_eq!(vec_out.rows, row_out.rows, "row order must match exactly; {ctx}");
        assert!((vec_out.millis() - row_out.millis()).abs() < 1e-12, "{ctx}");
    }
}

/// Aggregation over both executors folds identically — group order,
/// float accumulation order, and charges included.
#[test]
fn vectorized_aggregate_matches_rowwise_reference() {
    use colt_engine::{AggExpr, AggFunc, AggSpec};
    let mut rng = Prng::new(0xE21E_000B);
    for case in 0..25u64 {
        let n = 1 + rng.below(2999);
        let ps = preds(&mut rng, TableId(0), 1);
        let (db, a, _) = build_db(n, 7);
        let q = Query::single(a, ps);
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        let spec = AggSpec {
            group_by: vec![ColRef::new(a, 1)],
            exprs: vec![
                AggExpr::count_star(),
                AggExpr::over(AggFunc::Sum, ColRef::new(a, 2)),
                AggExpr::over(AggFunc::Avg, ColRef::new(a, 0)),
            ],
        };
        let (vres, vrows) =
            Executor::new(&db, &cfg).execute_aggregate(&q, &plan, &spec).unwrap();
        let (rres, rrows) =
            RowwiseExecutor::new(&db, &cfg).execute_aggregate(&q, &plan, &spec).unwrap();
        assert_eq!(vrows, rrows, "case {case}");
        assert_eq!(vres.io, rres.io, "case {case}");
        assert_eq!(vres.row_count, rres.row_count, "case {case}");
    }
}

/// Selection-vector edge cases: empty input, everything filtered out,
/// and result sets straddling the 1024-row batch boundary all agree
/// between the two executors.
#[test]
fn vectorized_edge_cases_match_rowwise() {
    let (db, a, _) = build_db(2_500, 7);
    let cfg = PhysicalConfig::new();
    let opt = Optimizer::new(&db);
    let queries = [
        // All-filtered: no id is negative.
        Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), -100i64)]),
        // Everything passes: 2500 rows straddle two batch boundaries.
        Query::single(a, vec![]),
        // Selective straddler: ~half the rows survive.
        Query::single(a, vec![SelPred::ge(ColRef::new(a, 0), 1_250i64)]),
    ];
    for (i, q) in queries.iter().enumerate() {
        let plan = opt.optimize(q, IndexSetView::real(&cfg));
        let v = Executor::new(&db, &cfg).execute(q, &plan, Collect::Rows).unwrap();
        let r = RowwiseExecutor::new(&db, &cfg).execute(q, &plan, Collect::Rows).unwrap();
        assert_eq!(v.rows, r.rows, "query {i}");
        assert_eq!(v.result.io, r.result.io, "query {i}");
    }
    // Empty table: zero batches, zero rows, zero charges mismatch.
    let (db0, a0, _) = build_db(0, 1);
    let q = Query::single(a0, vec![SelPred::eq(ColRef::new(a0, 0), 1i64)]);
    let plan = Optimizer::new(&db0).optimize(&q, IndexSetView::real(&cfg));
    let v = Executor::new(&db0, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
    let r = RowwiseExecutor::new(&db0, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
    assert_eq!(v.row_count(), 0);
    assert_eq!(v.rows, r.rows);
    assert_eq!(v.result.io, r.result.io);
}

/// The SQL parser never panics, whatever bytes it is fed.
#[test]
fn sql_parser_never_panics() {
    let mut rng = Prng::new(0xE21E_0008);
    let (db, _, _) = build_db(10, 5);
    for _case in 0..256u64 {
        let len = rng.below(121);
        let input: String = (0..len)
            .map(|_| {
                // Printable ASCII plus a sprinkling of non-ASCII.
                if rng.chance(0.9) {
                    (0x20 + rng.below(0x5f) as u8) as char
                } else {
                    char::from_u32(0xa0 + rng.below(0x2000) as u32).unwrap_or('\u{fffd}')
                }
            })
            .collect();
        let _ = colt_engine::parse_sql(&db, &input);
    }
}

/// Near-miss SQL (valid tokens, scrambled structure) never panics and
/// either parses or errors cleanly.
#[test]
fn sql_token_soup_never_panics() {
    const WORDS: &[&str] = &[
        "select", "from", "where", "and", "between", "group", "by", "a", "b", "id", "fk", "v",
        "w", "*", ",", ".", "(", ")", "=", "<", "<=", ">", ">=", "1", "2.5", "'x'", "count",
        "sum",
    ];
    let mut rng = Prng::new(0xE21E_0009);
    let (db, _, _) = build_db(10, 5);
    for case in 0..256u64 {
        let n = rng.below(25);
        let input =
            (0..n).map(|_| WORDS[rng.below(WORDS.len())]).collect::<Vec<_>>().join(" ");
        if let Ok(parsed) = colt_engine::parse_sql(&db, &input) {
            // Anything that parses must be a valid query.
            assert!(parsed.query.validate().is_ok(), "case {case}: {input}");
        }
    }
}
