//! Hash aggregation over query results.
//!
//! The paper's workloads are `SELECT *` SPJ queries, but the interactive
//! analysis scenario that motivates on-line tuning is full of
//! aggregates. This module adds a grouping/aggregation operator that
//! runs on top of any physical plan: `COUNT`, `SUM`, `AVG`, `MIN`, `MAX`
//! with an optional `GROUP BY` list. Aggregation never changes which
//! indices help a query (it consumes the join result), so it composes
//! with the tuner without touching it.
//!
//! The operator consumes the plan's [`crate::batch::ColumnBatch`]es
//! directly — group keys and aggregate inputs are read column-at-a-time
//! from each batch, without materializing row-major tuples first.

use crate::batch::TableLayout;
use crate::error::ExecError;
use crate::executor::{Executor, QueryResult};
use crate::plan::{Plan, PlanNode};
use crate::query::Query;
use colt_catalog::ColRef;
use colt_storage::{IoStats, Value};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (ignores its column when `None`).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Arithmetic mean of a numeric column.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// One aggregate expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// The aggregated column; `None` only for `COUNT(*)`.
    pub col: Option<ColRef>,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggExpr { func: AggFunc::Count, col: None }
    }

    /// An aggregate over a column.
    pub fn over(func: AggFunc, col: ColRef) -> Self {
        AggExpr { func, col: Some(col) }
    }
}

/// A grouping + aggregation specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Grouping columns (empty for a single global group).
    pub group_by: Vec<ColRef>,
    /// Aggregates to compute per group.
    pub exprs: Vec<AggExpr>,
}

/// Streaming accumulator for one aggregate in one group. Shared with the
/// row-at-a-time reference executor so both paths fold identically.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Count(u64),
    Sum(f64),
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    pub(crate) fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(0.0),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    pub(crate) fn feed(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => *n += 1,
            // colt: allow(panic-policy) — AggExpr::over pairs every non-COUNT function with a column
            Acc::Sum(s) => *s += v.expect("SUM needs a column").as_f64(),
            Acc::Avg { sum, n } => {
                // colt: allow(panic-policy) — AggExpr::over pairs every non-COUNT function with a column
                *sum += v.expect("AVG needs a column").as_f64();
                *n += 1;
            }
            Acc::Min(cur) => {
                // colt: allow(panic-policy) — AggExpr::over pairs every non-COUNT function with a column
                let v = v.expect("MIN needs a column");
                if cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                // colt: allow(panic-policy) — AggExpr::over pairs every non-COUNT function with a column
                let v = v.expect("MAX needs a column");
                if cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n as i64),
            Acc::Sum(s) => Value::Float(s),
            Acc::Avg { sum, n } => Value::Float(if n == 0 { 0.0 } else { sum / n as f64 }),
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Int(0)),
        }
    }
}

/// Resolve a column reference against the plan's output layout,
/// rejecting references the layout cannot satisfy instead of letting
/// them index out of bounds deep inside the fold loop.
fn resolve(
    db: &colt_catalog::Database,
    layout: &TableLayout,
    c: ColRef,
) -> Result<usize, ExecError> {
    let pos =
        layout.col_of(c).ok_or(ExecError::UnknownColRef { operator: "aggregate", col: c })?;
    if c.column as usize >= db.table(c.table).schema.arity() {
        return Err(ExecError::UnknownColRef { operator: "aggregate", col: c });
    }
    Ok(pos)
}

/// Resolve a spec's group-by and aggregate columns against a layout.
#[allow(clippy::type_complexity)]
fn resolve_spec(
    db: &colt_catalog::Database,
    layout: &TableLayout,
    spec: &AggSpec,
) -> Result<(Vec<usize>, Vec<Option<usize>>), ExecError> {
    let group_pos = spec
        .group_by
        .iter()
        .map(|&c| resolve(db, layout, c))
        .collect::<Result<_, ExecError>>()?;
    let agg_pos = spec
        .exprs
        .iter()
        .map(|e| e.col.map(|c| resolve(db, layout, c)).transpose())
        .collect::<Result<_, ExecError>>()?;
    Ok((group_pos, agg_pos))
}

impl<'a> Executor<'a> {
    /// Execute a plan and aggregate its result per `spec`. Output rows
    /// are `group_by` values followed by one value per aggregate, in
    /// deterministic group order. With an empty `group_by`, exactly one
    /// row is produced (even over an empty input, as in SQL).
    pub fn execute_aggregate(
        &self,
        query: &Query,
        plan: &Plan,
        spec: &AggSpec,
    ) -> Result<(QueryResult, Vec<Vec<Value>>), ExecError> {
        let mut io = IoStats::new();
        let db = self.database();
        // A single-scan plan's output layout is known before execution,
        // so the fold's column needs push down as a scan projection:
        // only group-by and aggregate input columns are materialized
        // (scan predicates are evaluated on the heap rows before the
        // gather, so they need no projection entry). Join plans settle
        // their layout during execution — build/probe order is
        // cost-based — so they run unprojected. Charges are identical
        // either way; the projection only skips value clones.
        let (input, group_pos, agg_pos) = match &plan.root {
            PlanNode::Scan { table, path, .. } => {
                let layout = TableLayout::single(db, *table);
                let (group_pos, agg_pos) = resolve_spec(db, &layout, spec)?;
                let mut proj: Vec<usize> =
                    group_pos.iter().copied().chain(agg_pos.iter().flatten().copied()).collect();
                proj.sort_unstable();
                proj.dedup();
                let input = self.run_scan(query, *table, path, &mut io, true, Some(&proj))?;
                (input, group_pos, agg_pos)
            }
            root => {
                let input = self.run(query, root, &mut io, true)?;
                let (group_pos, agg_pos) = resolve_spec(db, &input.layout, spec)?;
                (input, group_pos, agg_pos)
            }
        };

        // Group lookup is hash-based, key column at a time, mirroring the
        // hash-join build phase. Deliberately HashMaps: point-lookup only
        // — never iterated — each maps a key to its index in the `keys` /
        // `groups` side tables, and emission sorts `keys`, so no hash
        // order can reach the result. (colt-analyze's hash-iteration lint
        // verifies the "never iterated" part.) Single-column keys borrow
        // the batch value and skip the per-row key Vec entirely; a group's
        // key is cloned once, on first sight.
        let _batch_span = colt_obs::span("engine.exec.batch");
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<Acc>> = Vec::new();
        if spec.group_by.is_empty() {
            keys.push(Vec::new());
            groups.push(spec.exprs.iter().map(|e| Acc::new(e.func)).collect());
        }
        let mut single: HashMap<&Value, usize> = HashMap::new();
        let mut multi: HashMap<Vec<Value>, usize> = HashMap::new();
        for b in &input.batches {
            for r in b.live() {
                let g = if spec.group_by.is_empty() {
                    0
                } else if let [key_pos] = group_pos[..] {
                    *single.entry(b.val(key_pos, r)).or_insert_with_key(|&v| {
                        keys.push(vec![v.clone()]);
                        groups.push(spec.exprs.iter().map(|e| Acc::new(e.func)).collect());
                        groups.len() - 1
                    })
                } else {
                    let key: Vec<Value> =
                        group_pos.iter().map(|&p| b.val(p, r).clone()).collect();
                    match multi.entry(key) {
                        Entry::Occupied(o) => *o.get(),
                        Entry::Vacant(v) => {
                            keys.push(v.key().clone());
                            groups.push(spec.exprs.iter().map(|e| Acc::new(e.func)).collect());
                            *v.insert(groups.len() - 1)
                        }
                    }
                };
                for (acc, pos) in groups[g].iter_mut().zip(&agg_pos) {
                    acc.feed(pos.map(|p| b.val(p, r)));
                }
                io.cpu_ops += spec.exprs.len() as u64 + 1;
            }
        }

        // Group keys are unique, so sorting the side tables by key gives
        // the same emission order the old BTreeMap fold produced.
        let mut pairs: Vec<(Vec<Value>, Vec<Acc>)> = keys.into_iter().zip(groups).collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let out: Vec<Vec<Value>> = pairs
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.into_iter().map(Acc::finish));
                key
            })
            .collect();
        Ok((
            QueryResult {
                row_count: out.len() as u64,
                millis: db.cost.millis_of(&io),
                io,
            },
            out,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{IndexSetView, Optimizer};
    use crate::query::SelPred;
    use colt_catalog::{Column, Database, PhysicalConfig, TableId, TableSchema};
    use colt_storage::{row_from, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "sales",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("region", ValueType::Int),
                Column::new("amount", ValueType::Float),
            ],
        ));
        db.insert_rows(
            t,
            (0..1_000i64).map(|i| {
                row_from(vec![Value::Int(i), Value::Int(i % 4), Value::Float((i % 10) as f64)])
            }),
        );
        db.analyze_all();
        (db, t)
    }

    fn run(db: &Database, q: &Query, spec: &AggSpec) -> Vec<Vec<Value>> {
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(db).optimize(q, IndexSetView::real(&cfg));
        Executor::new(db, &cfg).execute_aggregate(q, &plan, spec).unwrap().1
    }

    #[test]
    fn count_star_grouped() {
        let (db, t) = setup();
        let q = Query::single(t, vec![]);
        let spec =
            AggSpec { group_by: vec![ColRef::new(t, 1)], exprs: vec![AggExpr::count_star()] };
        let rows = run(&db, &q, &spec);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r[1], Value::Int(250));
        }
    }

    #[test]
    fn sum_avg_min_max() {
        let (db, t) = setup();
        let amount = ColRef::new(t, 2);
        let q = Query::single(t, vec![]);
        let spec = AggSpec {
            group_by: vec![],
            exprs: vec![
                AggExpr::over(AggFunc::Sum, amount),
                AggExpr::over(AggFunc::Avg, amount),
                AggExpr::over(AggFunc::Min, amount),
                AggExpr::over(AggFunc::Max, amount),
            ],
        };
        let rows = run(&db, &q, &spec);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Float(4_500.0));
        assert_eq!(rows[0][1], Value::Float(4.5));
        assert_eq!(rows[0][2], Value::Float(0.0));
        assert_eq!(rows[0][3], Value::Float(9.0));
    }

    #[test]
    fn aggregation_respects_filters() {
        let (db, t) = setup();
        let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 1), 2i64)]);
        let spec = AggSpec { group_by: vec![], exprs: vec![AggExpr::count_star()] };
        let rows = run(&db, &q, &spec);
        assert_eq!(rows[0][0], Value::Int(250));
    }

    #[test]
    fn empty_input_global_group() {
        let (db, t) = setup();
        let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), -1i64)]);
        let spec = AggSpec { group_by: vec![], exprs: vec![AggExpr::count_star()] };
        let rows = run(&db, &q, &spec);
        assert_eq!(rows, vec![vec![Value::Int(0)]], "COUNT(*) over empty input is 0");
        // With grouping, an empty input yields no groups.
        let spec =
            AggSpec { group_by: vec![ColRef::new(t, 1)], exprs: vec![AggExpr::count_star()] };
        assert!(run(&db, &q, &spec).is_empty());
    }

    #[test]
    fn grouped_output_is_sorted_and_deterministic() {
        let (db, t) = setup();
        let q = Query::single(t, vec![]);
        let spec = AggSpec {
            group_by: vec![ColRef::new(t, 1)],
            exprs: vec![AggExpr::over(AggFunc::Max, ColRef::new(t, 0))],
        };
        let a = run(&db, &q, &spec);
        let b = run(&db, &q, &spec);
        assert_eq!(a, b);
        let keys: Vec<&Value> = a.iter().map(|r| &r[0]).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unknown_aggregate_column_is_typed_error() {
        // A spec referencing a table absent from the plan output (or a
        // column past the table's arity) used to panic inside offset
        // resolution; both now surface as ExecError::UnknownColRef.
        let (db, t) = setup();
        let q = Query::single(t, vec![]);
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        let stray = ColRef::new(TableId(99), 0);
        let spec = AggSpec { group_by: vec![stray], exprs: vec![AggExpr::count_star()] };
        let err = Executor::new(&db, &cfg).execute_aggregate(&q, &plan, &spec).unwrap_err();
        assert_eq!(err, ExecError::UnknownColRef { operator: "aggregate", col: stray });
        let wide = ColRef::new(t, 7);
        let spec =
            AggSpec { group_by: vec![], exprs: vec![AggExpr::over(AggFunc::Sum, wide)] };
        let err = Executor::new(&db, &cfg).execute_aggregate(&q, &plan, &spec).unwrap_err();
        assert_eq!(err, ExecError::UnknownColRef { operator: "aggregate", col: wide });
    }
}
