//! Physical plan execution with deterministic I/O accounting.
//!
//! The executor runs plans against the *real* data: sequential scans
//! iterate heap pages, index scans probe the actual B+ trees and fetch
//! rows in sorted rowid order (bitmap-style, deduplicating page reads),
//! and hash joins build and probe real hash tables. Every operator
//! charges [`IoStats`]; [`QueryResult::millis`] converts the total into
//! the simulated wall-clock time that all experiments report.

use crate::plan::{AccessPath, Plan, PlanNode};
use crate::query::{PredicateKind, Query, SelPred};
use colt_catalog::{Database, PhysicalConfig, TableId};
use colt_storage::{IoStats, RowId, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// A plan/input mismatch detected during execution.
///
/// The executor trusts the optimizer for *physical* facts it can check
/// cheaply elsewhere (materialized indexes, sargable predicates), but a
/// join key referencing a table the plan never joined is a structural
/// contradiction a caller can construct by hand — hand-built plans are
/// part of the public API — so it surfaces as a typed error instead of
/// a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// A join predicate references a table absent from the operator's
    /// input batch: the plan's join tree does not cover the predicate.
    JoinKeyTableMissing {
        /// Operator that detected the mismatch.
        operator: &'static str,
        /// The table the join key references.
        table: TableId,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::JoinKeyTableMissing { operator, table } => write!(
                f,
                "{operator}: join key references table t{} absent from the input batch",
                table.0
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of executing one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Number of result rows (the rows themselves are not retained for
    /// multi-table queries to keep memory bounded; see
    /// [`Executor::execute_collect`]).
    pub row_count: u64,
    /// Physical work performed.
    pub io: IoStats,
    /// Simulated execution time in milliseconds.
    pub millis: f64,
}

/// What [`Executor::execute_collect_with_layout`] returns: the cost
/// summary, the collected rows, and the output column layout.
pub type CollectedWithLayout = (QueryResult, Vec<Vec<Value>>, Vec<TableId>);

/// Rows flowing between operators: the source table of each column slice
/// is tracked so join keys can be located.
struct Batch {
    /// Participating tables, in column-slice order.
    tables: Vec<TableId>,
    /// Concatenated rows.
    rows: Vec<Vec<Value>>,
}

/// The executor.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    db: &'a Database,
    config: &'a PhysicalConfig,
}

impl<'a> Executor<'a> {
    /// Create an executor over a database and its physical configuration.
    pub fn new(db: &'a Database, config: &'a PhysicalConfig) -> Self {
        Executor { db, config }
    }

    /// Execute a plan, returning counts and charges only.
    pub fn execute(&self, query: &Query, plan: &Plan) -> Result<QueryResult, ExecError> {
        let span = colt_obs::span("engine.execute");
        let mut io = IoStats::new();
        let batch = self.run(query, &plan.root, &mut io)?;
        let millis = self.db.cost.millis_of(&io);
        span.sim_ms(millis);
        Ok(QueryResult { row_count: batch.rows.len() as u64, millis, io })
    }

    /// Execute a plan and also return the result rows (column-concatenated
    /// in the plan's table order). Intended for examples and tests.
    pub fn execute_collect(
        &self,
        query: &Query,
        plan: &Plan,
    ) -> Result<(QueryResult, Vec<Vec<Value>>), ExecError> {
        let (res, rows, _) = self.execute_collect_with_layout(query, plan)?;
        Ok((res, rows))
    }

    /// Like [`Executor::execute_collect`], additionally returning the
    /// column layout: the result rows are the concatenation of these
    /// tables' columns, in order. Consumers that address columns by
    /// [`colt_catalog::ColRef`] (e.g. aggregation) need the layout
    /// because join operators order their inputs by cost, not by the
    /// query's table list.
    pub fn execute_collect_with_layout(
        &self,
        query: &Query,
        plan: &Plan,
    ) -> Result<CollectedWithLayout, ExecError> {
        let mut io = IoStats::new();
        let batch = self.run(query, &plan.root, &mut io)?;
        Ok((
            QueryResult {
                row_count: batch.rows.len() as u64,
                millis: self.db.cost.millis_of(&io),
                io,
            },
            batch.rows,
            batch.tables,
        ))
    }

    /// The database this executor runs against.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// EXPLAIN ANALYZE: execute the plan and render the operator tree
    /// annotated with *estimated vs actual* rows and the per-node
    /// physical work. The estimation error visible here is exactly the
    /// noise COLT's confidence intervals exist to tolerate.
    pub fn explain_analyze(&self, query: &Query, plan: &Plan) -> Result<(QueryResult, String), ExecError> {
        let mut io = IoStats::new();
        let mut out = String::new();
        let batch = self.analyze_node(query, &plan.root, &mut io, 0, &mut out)?;
        let result = QueryResult {
            row_count: batch.rows.len() as u64,
            millis: self.db.cost.millis_of(&io),
            io,
        };
        out.push_str(&format!(
            "total: {} rows, {:.2} simulated ms ({} seq + {} random pages, {} tuples)\n",
            result.row_count,
            result.millis,
            result.io.seq_pages,
            result.io.random_pages,
            result.io.tuples
        ));
        Ok((result, out))
    }

    /// Execute one node, appending its annotated line (after its
    /// children's, pre-order rendering) to `out`.
    fn analyze_node(
        &self,
        query: &Query,
        node: &PlanNode,
        io: &mut IoStats,
        depth: usize,
        out: &mut String,
    ) -> Result<Batch, ExecError> {
        let pad = "  ".repeat(depth);
        let mut child_text = String::new();
        let (batch, own_io) = match node {
            PlanNode::Scan { table, path, .. } => {
                let before = *io;
                let b = self.run_scan(query, *table, path, io);
                (b, *io - before)
            }
            PlanNode::HashJoin { build, probe, on, .. } => {
                let b = self.analyze_node(query, build, io, depth + 1, &mut child_text)?;
                let p = self.analyze_node(query, probe, io, depth + 1, &mut child_text)?;
                let before = *io;
                let joined = self.hash_join(b, p, on, io)?;
                (joined, *io - before)
            }
            PlanNode::IndexNlJoin { outer, inner, index, probe_on, residual_on, .. } => {
                let o = self.analyze_node(query, outer, io, depth + 1, &mut child_text)?;
                let before = *io;
                let joined =
                    self.index_nl_join(query, o, *inner, *index, *probe_on, residual_on, io)?;
                (joined, *io - before)
            }
        };
        let label = match node {
            PlanNode::Scan { table, path, .. } => match path {
                crate::plan::AccessPath::SeqScan => format!("SeqScan t{}", table.0),
                crate::plan::AccessPath::IndexScan { col } => {
                    format!("IndexScan[{col}] t{}", table.0)
                }
                crate::plan::AccessPath::CompositeScan { key, .. } => {
                    format!("CompositeScan[{key}] t{}", table.0)
                }
            },
            PlanNode::HashJoin { on, .. } => format!("HashJoin on {} preds", on.len()),
            PlanNode::IndexNlJoin { inner, index, .. } => {
                format!("IndexNLJoin inner=t{} via [{index}]", inner.0)
            }
        };
        out.push_str(&format!(
            "{pad}{label} (est rows={:.1}, actual rows={}; pages seq={} rnd={})\n",
            node.est_rows(),
            batch.rows.len(),
            own_io.seq_pages,
            own_io.random_pages,
        ));
        out.push_str(&child_text);
        Ok(batch)
    }

    fn run(&self, query: &Query, node: &PlanNode, io: &mut IoStats) -> Result<Batch, ExecError> {
        match node {
            PlanNode::Scan { table, path, .. } => Ok(self.run_scan(query, *table, path, io)),
            PlanNode::HashJoin { build, probe, on, .. } => {
                colt_obs::counter("engine.op.hash_join", 1);
                let b = self.run(query, build, io)?;
                let p = self.run(query, probe, io)?;
                self.hash_join(b, p, on, io)
            }
            PlanNode::IndexNlJoin { outer, inner, index, probe_on, residual_on, .. } => {
                colt_obs::counter("engine.op.index_nl_join", 1);
                let o = self.run(query, outer, io)?;
                self.index_nl_join(query, o, *inner, *index, *probe_on, residual_on, io)
            }
        }
    }

    /// Index nested-loop join: probe the inner table's B+ tree once per
    /// outer row, fetch matches, and apply the inner table's selection
    /// predicates plus any residual join predicates.
    #[allow(clippy::too_many_arguments)]
    fn index_nl_join(
        &self,
        query: &Query,
        outer: Batch,
        inner: TableId,
        index_col: colt_catalog::ColRef,
        probe_on: crate::query::JoinPred,
        residual_on: &[crate::query::JoinPred],
        io: &mut IoStats,
    ) -> Result<Batch, ExecError> {
        let inner_table = self.db.table(inner);
        let index = self
            .config
            .get(index_col)
            // colt: allow(panic-policy) — the optimizer only emits probe nodes for materialized indexes
            .unwrap_or_else(|| panic!("plan probes unmaterialized index {index_col}"));
        let inner_preds: Vec<&SelPred> = query.selections_on(inner).collect();

        // Locate the outer side of the probe predicate in the batch.
        let outer_side =
            if probe_on.left.table == inner { probe_on.right } else { probe_on.left };
        let col_offset = |batch: &Batch, table: TableId| -> Result<usize, ExecError> {
            let mut off = 0;
            for &t in &batch.tables {
                if t == table {
                    return Ok(off);
                }
                off += self.db.table(t).schema.arity();
            }
            Err(ExecError::JoinKeyTableMissing { operator: "index_nl_join", table })
        };
        let probe_pos = col_offset(&outer, outer_side.table)? + outer_side.column as usize;

        // Residual join predicates: (outer position, inner column).
        let residuals: Vec<(usize, usize)> = residual_on
            .iter()
            .map(|j| {
                let (o, i) = if j.left.table == inner { (j.right, j.left) } else { (j.left, j.right) };
                Ok((col_offset(&outer, o.table)? + o.column as usize, i.column as usize))
            })
            .collect::<Result<_, ExecError>>()?;

        let inner_arity = inner_table.schema.arity();
        let mut out = Vec::new();
        for orow in &outer.rows {
            let key = &orow[probe_pos];
            let mut rowids = index.tree.lookup(key, io);
            let fetched = inner_table.heap.fetch_sorted(&mut rowids, io);
            for irow in fetched {
                io.cpu_ops += (inner_preds.len() + residuals.len()) as u64;
                let sel_ok =
                    inner_preds.iter().all(|p| p.matches(&irow[p.col.column as usize]));
                let res_ok = residuals.iter().all(|&(op, ic)| orow[op] == irow[ic]);
                if sel_ok && res_ok {
                    let mut row = orow.clone();
                    row.extend(irow.iter().cloned());
                    out.push(row);
                }
            }
        }
        io.tuples += out.len() as u64;
        debug_assert!(inner_arity > 0);

        let mut tables = outer.tables;
        tables.push(inner);
        Ok(Batch { tables, rows: out })
    }

    fn run_scan(&self, query: &Query, table: TableId, path: &AccessPath, io: &mut IoStats) -> Batch {
        colt_obs::counter(
            match path {
                AccessPath::SeqScan => "engine.op.seq_scan",
                AccessPath::IndexScan { .. } => "engine.op.index_scan",
                AccessPath::CompositeScan { .. } => "engine.op.composite_scan",
            },
            1,
        );
        let t = self.db.table(table);
        let preds: Vec<&SelPred> = query.selections_on(table).collect();
        let rows: Vec<Vec<Value>> = match path {
            AccessPath::SeqScan => t
                .heap
                .scan(io)
                .filter(|(_, row)| {
                    io.cpu_ops += preds.len() as u64;
                    preds.iter().all(|p| p.matches(&row[p.col.column as usize]))
                })
                .map(|(_, row)| row.to_vec())
                .collect(),
            AccessPath::CompositeScan { key, eq_prefix, range_next } => {
                let index = self
                    .config
                    .get_composite(key)
                    // colt: allow(panic-policy) — the optimizer only emits composite scans for materialized composites
                    .unwrap_or_else(|| panic!("plan uses unmaterialized composite {key}"));
                // Equality values pinning the prefix.
                let prefix: Vec<Value> = key.columns[..*eq_prefix as usize]
                    .iter()
                    .map(|&c| {
                        let pred = preds
                            .iter()
                            .find(|p| {
                                p.col.column == c
                                    && matches!(p.kind, PredicateKind::Eq(_))
                            })
                            // colt: allow(panic-policy) — eq_prefix was chosen from these very predicates
                            .unwrap_or_else(|| panic!("missing eq predicate for composite prefix"));
                        match &pred.kind {
                            PredicateKind::Eq(v) => v.clone(),
                            // colt: allow(panic-policy) — the find above matched PredicateKind::Eq only
                            _ => unreachable!(),
                        }
                    })
                    .collect();
                // Optional range on the next column.
                let next = if *range_next {
                    let c = key.columns[*eq_prefix as usize];
                    let pred = preds
                        .iter()
                        .find(|p| {
                            p.col.column == c && matches!(p.kind, PredicateKind::Range { .. })
                        })
                        // colt: allow(panic-policy) — range_next is set only when such a predicate exists
                        .unwrap_or_else(|| panic!("missing range predicate for composite scan"));
                    // colt: allow(panic-policy) — the find above matched PredicateKind::Range only
                    let PredicateKind::Range { lo, hi } = &pred.kind else { unreachable!() };
                    let map = |b: &Option<crate::query::RangeBound>| match b {
                        Some(rb) if rb.inclusive => Bound::Included(rb.value.clone()),
                        Some(rb) => Bound::Excluded(rb.value.clone()),
                        None => Bound::Unbounded,
                    };
                    Some((map(lo), map(hi)))
                } else {
                    None
                };
                let mut rowids = colt_catalog::prefix_scan(index, &prefix, next, io);
                let fetched = t.heap.fetch_sorted(&mut rowids, io);
                fetched
                    .into_iter()
                    .filter(|row| {
                        io.cpu_ops += preds.len() as u64;
                        preds.iter().all(|p| p.matches(&row[p.col.column as usize]))
                    })
                    .map(|row| row.to_vec())
                    .collect()
            }
            AccessPath::IndexScan { col } => {
                let index = self
                    .config
                    .get(*col)
                    // colt: allow(panic-policy) — the optimizer only emits index scans for materialized indexes
                    .unwrap_or_else(|| panic!("plan uses unmaterialized index {col}"));
                let driver_idx = preds
                    .iter()
                    .position(|p| p.col == *col)
                    // colt: allow(panic-policy) — index scans are only planned on sargable columns
                    .unwrap_or_else(|| panic!("index scan without sargable predicate on {col}"));
                let mut rowids: Vec<RowId> = match &preds[driver_idx].kind {
                    PredicateKind::Eq(v) => index.tree.lookup(v, io),
                    PredicateKind::In(vs) => {
                        // One descent per list element; the sorted fetch
                        // afterwards deduplicates heap pages.
                        vs.iter().flat_map(|v| index.tree.lookup(v, io)).collect()
                    }
                    PredicateKind::Range { lo, hi } => {
                        let map = |b: &Option<crate::query::RangeBound>| match b {
                            Some(rb) if rb.inclusive => Bound::Included(rb.value.clone()),
                            Some(rb) => Bound::Excluded(rb.value.clone()),
                            None => Bound::Unbounded,
                        };
                        index.tree.range(map(lo), map(hi), io)
                    }
                };
                let fetched = t.heap.fetch_sorted(&mut rowids, io);
                fetched
                    .into_iter()
                    .filter(|row| {
                        io.cpu_ops += preds.len() as u64 - 1;
                        // Residual = everything except the one predicate
                        // that drove the scan — a second predicate on the
                        // same column must still be checked.
                        preds
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != driver_idx)
                            .all(|(_, p)| p.matches(&row[p.col.column as usize]))
                    })
                    .map(|row| row.to_vec())
                    .collect()
            }
        };
        Batch { tables: vec![table], rows }
    }

    fn hash_join(
        &self,
        build: Batch,
        probe: Batch,
        on: &[crate::query::JoinPred],
        io: &mut IoStats,
    ) -> Result<Batch, ExecError> {
        // Locate each join key within the concatenated batches.
        let col_offset = |batch: &Batch, table: TableId| -> Result<usize, ExecError> {
            let mut off = 0;
            for &t in &batch.tables {
                if t == table {
                    return Ok(off);
                }
                off += self.db.table(t).schema.arity();
            }
            Err(ExecError::JoinKeyTableMissing { operator: "hash_join", table })
        };
        let key_positions = |batch: &Batch| -> Result<Vec<usize>, ExecError> {
            on.iter()
                .map(|j| {
                    let side = if batch.tables.contains(&j.left.table) { j.left } else { j.right };
                    Ok(col_offset(batch, side.table)? + side.column as usize)
                })
                .collect()
        };

        let build_keys = key_positions(&build)?;
        let probe_keys = key_positions(&probe)?;

        // Build phase. Deliberately a HashMap: it is point-lookup only —
        // never iterated — and output order is fixed by the probe-side
        // row order plus the insertion-ordered Vec<usize> match lists, so
        // no hash order can reach the result. (colt-analyze's
        // hash-iteration lint verifies the "never iterated" part.)
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.rows.len());
        for (i, row) in build.rows.iter().enumerate() {
            let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
            table.entry(key).or_default().push(i);
            io.cpu_ops += 2; // hash + insert
        }

        // Probe phase. Cartesian product when `on` is empty.
        let mut out = Vec::new();
        if on.is_empty() {
            for b in &build.rows {
                for p in &probe.rows {
                    io.cpu_ops += 1;
                    let mut row = b.clone();
                    row.extend(p.iter().cloned());
                    out.push(row);
                }
            }
        } else {
            for p in &probe.rows {
                io.cpu_ops += 1;
                let key: Vec<Value> = probe_keys.iter().map(|&k| p[k].clone()).collect();
                if let Some(matches) = table.get(&key) {
                    for &bi in matches {
                        let mut row = build.rows[bi].clone();
                        row.extend(p.iter().cloned());
                        out.push(row);
                    }
                }
            }
        }
        io.tuples += out.len() as u64;

        let mut tables = build.tables;
        tables.extend(probe.tables);
        Ok(Batch { tables, rows: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{IndexSetView, Optimizer};
    use crate::query::{JoinPred, SelPred};
    use colt_catalog::{ColRef, Column, IndexOrigin, TableSchema};
    use colt_storage::{row_from, ValueType};

    fn db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let fact = db.add_table(TableSchema::new(
            "fact",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("fk", ValueType::Int),
                Column::new("v", ValueType::Int),
            ],
        ));
        let dim = db.add_table(TableSchema::new(
            "dim",
            vec![Column::new("id", ValueType::Int), Column::new("grp", ValueType::Int)],
        ));
        db.insert_rows(
            fact,
            (0..20_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 200), Value::Int(i % 7)])),
        );
        db.insert_rows(dim, (0..200i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 4)])));
        db.analyze_all();
        (db, fact, dim)
    }

    fn plan_and_run(
        db: &Database,
        cfg: &PhysicalConfig,
        q: &Query,
    ) -> (QueryResult, Vec<Vec<Value>>) {
        let opt = Optimizer::new(db);
        let plan = opt.optimize(q, IndexSetView::real(cfg));
        Executor::new(db, cfg).execute_collect(q, &plan).unwrap()
    }

    #[test]
    fn seq_scan_filters_correctly() {
        let (db, fact, _) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::single(fact, vec![SelPred::eq(ColRef::new(fact, 2), 3i64)]);
        let (res, rows) = plan_and_run(&db, &cfg, &q);
        // v = i % 7 == 3 → ~ 20000/7 rows.
        assert_eq!(res.row_count as usize, rows.len());
        assert_eq!(rows.len(), 2857, "count of i%7==3 in 0..20000");
        assert!(rows.iter().all(|r| r[2] == Value::Int(3)));
        assert!(res.millis > 0.0);
        assert!(res.io.seq_pages > 0);
    }

    #[test]
    fn index_scan_and_seq_scan_agree() {
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let q = Query::single(fact, vec![SelPred::between(col, 100i64, 140i64)]);

        let no_index = PhysicalConfig::new();
        let (seq_res, mut seq_rows) = plan_and_run(&db, &no_index, &q);

        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert_eq!(plan.used_indices(), vec![col], "index must be chosen: {}", plan.explain());
        let (idx_res, mut idx_rows) = Executor::new(&db, &cfg).execute_collect(&q, &plan).unwrap();

        seq_rows.sort();
        idx_rows.sort();
        assert_eq!(seq_rows, idx_rows, "same result via both paths");
        assert_eq!(idx_res.row_count, 41);
        // The selective index scan must actually be faster.
        assert!(
            idx_res.millis < seq_res.millis,
            "index {} ms vs seq {} ms",
            idx_res.millis,
            seq_res.millis
        );
    }

    #[test]
    fn in_list_via_index_matches_seq_scan() {
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let q = Query::single(
            fact,
            vec![SelPred::is_in(col, vec![Value::Int(3), Value::Int(500), Value::Int(19_999)])],
        );
        let bare = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let (seq_res, mut seq_rows) =
            Executor::new(&db, &bare).execute_collect(&q, &opt.optimize(&q, IndexSetView::real(&bare))).unwrap();
        assert_eq!(seq_res.row_count, 3);

        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert_eq!(plan.used_indices(), vec![col], "IN must be index-sargable: {}", plan.explain());
        let (idx_res, mut idx_rows) = Executor::new(&db, &cfg).execute_collect(&q, &plan).unwrap();
        seq_rows.sort();
        idx_rows.sort();
        assert_eq!(seq_rows, idx_rows);
        assert!(idx_res.millis < seq_res.millis);
    }

    #[test]
    fn contradictory_predicates_on_driving_column() {
        // Regression: two predicates on the indexed column — only the
        // driver may be skipped as residual; the other must still apply.
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let q = Query::single(
            fact,
            vec![SelPred::eq(col, 5i64), SelPred::eq(col, 7i64)],
        );
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan).unwrap();
        assert_eq!(res.row_count, 0, "id = 5 AND id = 7 matches nothing");
        // Overlapping ranges on the same column must intersect.
        let q = Query::single(
            fact,
            vec![
                SelPred::between(col, 0i64, 100i64),
                SelPred::between(col, 50i64, 200i64),
            ],
        );
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan).unwrap();
        assert_eq!(res.row_count, 51, "intersection [50, 100]");
    }

    #[test]
    fn residual_predicates_applied_on_index_path() {
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let q = Query::single(
            fact,
            vec![SelPred::between(col, 0i64, 999i64), SelPred::eq(ColRef::new(fact, 2), 0i64)],
        );
        let (_, rows) = plan_and_run(&db, &cfg, &q);
        assert!(rows.iter().all(|r| r[2] == Value::Int(0)));
        // 1000 ids, every 7th has v=0 → ceil(1000/7) = 143.
        assert_eq!(rows.len(), 143);
    }

    #[test]
    fn hash_join_matches_nested_reference() {
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::join(
            vec![fact, dim],
            vec![JoinPred::new(ColRef::new(fact, 1), ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 1), 2i64)],
        );
        let (res, rows) = plan_and_run(&db, &cfg, &q);
        // dim rows with grp=2: ids {2,6,10,...198} → 50 ids; each matches
        // 20000/200 = 100 fact rows.
        assert_eq!(res.row_count, 50 * 100);
        // Every output row satisfies the join and the filter.
        // Column layout depends on build/probe order; find offsets.
        assert_eq!(rows.len(), 5000);
    }

    #[test]
    fn composite_scan_matches_seq_scan() {
        use colt_catalog::CompositeKey;
        let (db, fact, _) = db();
        // Composite over (fk, v): eq on both columns matches a prefix.
        let key = CompositeKey::new(fact, vec![1, 2]);
        let mut cfg = PhysicalConfig::new();
        cfg.create_composite(&db, key.clone());

        let q = Query::single(
            fact,
            vec![SelPred::eq(ColRef::new(fact, 1), 7i64), SelPred::eq(ColRef::new(fact, 2), 3i64)],
        );
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(
            matches!(
                &plan.root,
                crate::plan::PlanNode::Scan {
                    path: AccessPath::CompositeScan { eq_prefix: 2, range_next: false, .. },
                    ..
                }
            ),
            "{}",
            plan.explain()
        );
        let (comp_res, mut comp_rows) = Executor::new(&db, &cfg).execute_collect(&q, &plan).unwrap();

        let bare = PhysicalConfig::new();
        let seq_plan = opt.optimize(&q, IndexSetView::real(&bare));
        let (seq_res, mut seq_rows) = Executor::new(&db, &bare).execute_collect(&q, &seq_plan).unwrap();
        comp_rows.sort();
        seq_rows.sort();
        assert_eq!(comp_rows, seq_rows);
        assert_eq!(comp_res.row_count, seq_res.row_count);
        // The two-column equality is far more selective than either
        // single column: the composite must be much faster.
        assert!(comp_res.millis < seq_res.millis / 3.0);
    }

    #[test]
    fn composite_prefix_plus_range_matches_seq_scan() {
        use colt_catalog::CompositeKey;
        let (db, fact, _) = db();
        let key = CompositeKey::new(fact, vec![1, 0]);
        let mut cfg = PhysicalConfig::new();
        cfg.create_composite(&db, key);
        let q = Query::single(
            fact,
            vec![
                SelPred::eq(ColRef::new(fact, 1), 7i64),
                SelPred::between(ColRef::new(fact, 0), 1_000i64, 3_000i64),
            ],
        );
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(
            matches!(
                &plan.root,
                crate::plan::PlanNode::Scan {
                    path: AccessPath::CompositeScan { eq_prefix: 1, range_next: true, .. },
                    ..
                }
            ),
            "{}",
            plan.explain()
        );
        let (res, mut rows) = Executor::new(&db, &cfg).execute_collect(&q, &plan).unwrap();
        let bare = PhysicalConfig::new();
        let seq_plan = opt.optimize(&q, IndexSetView::real(&bare));
        let (_, mut seq_rows) = Executor::new(&db, &bare).execute_collect(&q, &seq_plan).unwrap();
        rows.sort();
        seq_rows.sort();
        assert_eq!(rows, seq_rows);
        assert!(res.row_count > 0, "range must match something");
    }

    #[test]
    fn inl_join_matches_hash_join_results() {
        use crate::optimizer::OptimizerOptions;
        let (db, fact, dim) = db();
        let mut cfg = PhysicalConfig::new();
        let fk = ColRef::new(fact, 1);
        cfg.create_index(&db, fk, IndexOrigin::Online);
        let q = Query::join(
            vec![fact, dim],
            vec![JoinPred::new(fk, ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 0), 7i64), SelPred::eq(ColRef::new(fact, 2), 3i64)],
        );
        let inl_opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: true });
        let inl_plan = inl_opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(
            matches!(inl_plan.root, crate::plan::PlanNode::IndexNlJoin { .. }),
            "{}",
            inl_plan.explain()
        );
        let hash_plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&PhysicalConfig::new()));

        let (inl_res, inl_rows) = Executor::new(&db, &cfg).execute_collect(&q, &inl_plan).unwrap();
        let (hash_res, hash_rows) =
            Executor::new(&db, &PhysicalConfig::new()).execute_collect(&q, &hash_plan).unwrap();
        assert_eq!(inl_res.row_count, hash_res.row_count);
        // Column order differs between the operators (outer-first vs
        // build-first); compare as multisets of sorted rows.
        let canon = |rows: Vec<Vec<Value>>| {
            let mut v: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|mut r| {
                    r.sort();
                    r
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(inl_rows), canon(hash_rows));
        // The two strategies are within the same ballpark here (the
        // single-probe case is a near-tie in this cost model); the I/O
        // profiles must nonetheless differ in the expected direction:
        // INLJ does random probes, the hash join scans sequentially.
        assert!(inl_res.io.random_pages > hash_res.io.random_pages);
        assert!(inl_res.io.seq_pages < hash_res.io.seq_pages);
    }

    #[test]
    fn empty_result_is_fine() {
        let (db, fact, _) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::single(fact, vec![SelPred::eq(ColRef::new(fact, 0), -1i64)]);
        let (res, rows) = plan_and_run(&db, &cfg, &q);
        assert_eq!(res.row_count, 0);
        assert!(rows.is_empty());
    }

    #[test]
    fn explain_analyze_reports_estimates_and_actuals() {
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::join(
            vec![fact, dim],
            vec![JoinPred::new(ColRef::new(fact, 1), ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 1), 2i64)],
        );
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let (res, text) = Executor::new(&db, &cfg).explain_analyze(&q, &plan).unwrap();
        // Same result as plain execution.
        let plain = Executor::new(&db, &cfg).execute(&q, &plan).unwrap();
        assert_eq!(res.row_count, plain.row_count);
        assert_eq!(res.io, plain.io);
        // The rendering mentions each operator with estimates and actuals.
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("SeqScan"), "{text}");
        assert!(text.contains("est rows="), "{text}");
        assert!(text.contains(&format!("actual rows={}", res.row_count)), "{text}");
        assert!(text.contains("total:"), "{text}");
    }

    #[test]
    fn malformed_plan_join_key_is_typed_error_not_panic() {
        // Regression: a hand-built plan whose join predicate references
        // a table the join tree never produced used to panic; it must
        // surface as ExecError so harness callers can propagate it.
        use crate::plan::{AccessPath, PlanNode};
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let stray = TableId(99);
        let scan = |t: TableId| PlanNode::Scan {
            table: t,
            path: AccessPath::SeqScan,
            est_rows: 1.0,
            est_cost: 1.0,
        };
        let plan = Plan {
            root: PlanNode::HashJoin {
                build: Box::new(scan(fact)),
                probe: Box::new(scan(dim)),
                // Predicate between `fact` and a table not in the tree.
                on: vec![JoinPred::new(ColRef::new(fact, 1), ColRef::new(stray, 0))],
                est_rows: 1.0,
                est_cost: 2.0,
            },
        };
        let q = Query::join(vec![fact, dim], vec![], vec![]);
        let err = Executor::new(&db, &cfg).execute(&q, &plan).unwrap_err();
        assert_eq!(
            err,
            ExecError::JoinKeyTableMissing { operator: "hash_join", table: stray }
        );
        assert!(err.to_string().contains("t99"), "{err}");
        // The same contradiction through the INLJ path.
        let mut icfg = PhysicalConfig::new();
        let fk = ColRef::new(fact, 1);
        icfg.create_index(&db, fk, colt_catalog::IndexOrigin::Online);
        let plan = Plan {
            root: PlanNode::IndexNlJoin {
                outer: Box::new(scan(dim)),
                inner: fact,
                index: fk,
                probe_on: JoinPred::new(fk, ColRef::new(stray, 0)),
                residual_on: vec![],
                est_rows: 1.0,
                est_cost: 2.0,
            },
        };
        let err = Executor::new(&db, &icfg).execute(&q, &plan).unwrap_err();
        assert_eq!(
            err,
            ExecError::JoinKeyTableMissing { operator: "index_nl_join", table: stray }
        );
    }

    #[test]
    fn executor_time_tracks_io() {
        let (db, fact, _) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::single(fact, vec![]);
        let (res, _) = plan_and_run(&db, &cfg, &q);
        let expect = db.cost.millis_of(&res.io);
        assert!((res.millis - expect).abs() < 1e-9);
    }
}
