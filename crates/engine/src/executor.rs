//! Vectorized physical plan execution with deterministic I/O accounting.
//!
//! The executor runs plans against the *real* data a batch at a time:
//! sequential scans iterate heap pages in [`BATCH_ROWS`]-row chunks,
//! index scans probe the actual B+ trees and fetch rows in sorted rowid
//! order (bitmap-style, deduplicating page reads), and hash joins build
//! once and probe a key column at a time. Operators exchange
//! [`ColumnBatch`]es (per-column value vectors plus a selection vector;
//! see [`crate::batch`]) instead of row-major `Vec<Value>` rows, and
//! predicates are evaluated over whole column chunks into a selection
//! vector before any value is copied.
//!
//! None of this changes what is *charged*: every operator charges
//! [`IoStats`] per page and per tuple processed, which is invariant to
//! batch grouping, so [`QueryResult::millis`] — the simulated
//! wall-clock time every experiment reports — is byte-identical to the
//! row-at-a-time reference implementation in [`crate::rowwise`].

use crate::batch::{ColumnBatch, TableLayout, BATCH_ROWS};
use crate::error::ExecError;
use crate::plan::{AccessPath, Plan, PlanNode};
use crate::query::{PredicateKind, Query, SelPred};
use colt_catalog::{ColRef, Database, PhysicalConfig, TableId};
use colt_storage::{IoStats, Row, RowId, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// Result of executing one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Number of result rows (the rows themselves are only retained
    /// under [`Collect::Rows`]; see [`ExecOutput::rows`]).
    pub row_count: u64,
    /// Physical work performed.
    pub io: IoStats,
    /// Simulated execution time in milliseconds.
    pub millis: f64,
}

/// What [`Executor::execute`] should retain of the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Collect {
    /// Count rows and charge I/O, but do not keep result values. Scans
    /// and joins at the plan root skip materialization entirely — the
    /// charges are identical either way.
    #[default]
    CountOnly,
    /// Also retain the result rows (column-concatenated per
    /// [`ExecOutput::layout`]).
    Rows,
}

/// Everything [`Executor::execute`] produces, under one roof.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// Counts and charges.
    pub result: QueryResult,
    /// The result rows — empty under [`Collect::CountOnly`].
    pub rows: Vec<Vec<Value>>,
    /// The output column layout: result rows are the concatenation of
    /// these tables' columns, in order. Consumers that address columns
    /// by [`ColRef`] need this because join operators order their
    /// inputs by cost, not by the query's table list.
    pub layout: Vec<TableId>,
}

impl ExecOutput {
    /// Number of result rows.
    pub fn row_count(&self) -> u64 {
        self.result.row_count
    }

    /// Simulated execution time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.result.millis
    }

    /// Physical work performed.
    pub fn io(&self) -> &IoStats {
        &self.result.io
    }
}

/// One operator's output: the layout header, the live row count, and —
/// only when the consumer needs values — the column batches.
pub(crate) struct OpOutput {
    pub(crate) layout: TableLayout,
    pub(crate) batches: Vec<ColumnBatch>,
    pub(crate) count: u64,
}

impl OpOutput {
    /// Concatenate the batches into one dense batch (live rows only).
    fn flatten(self) -> (TableLayout, ColumnBatch) {
        let mut cols: Vec<Vec<Value>> = vec![Vec::new(); self.layout.width()];
        for b in self.batches {
            b.drain_into(&mut cols);
        }
        (self.layout, ColumnBatch::dense(cols))
    }
}

/// The executor.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    db: &'a Database,
    config: &'a PhysicalConfig,
}

impl<'a> Executor<'a> {
    /// Create an executor over a database and its physical configuration.
    pub fn new(db: &'a Database, config: &'a PhysicalConfig) -> Self {
        Executor { db, config }
    }

    /// Execute a plan. `collect` chooses whether result values are
    /// retained ([`Collect::Rows`]) or only counted and charged
    /// ([`Collect::CountOnly`]); the I/O charges are identical.
    pub fn execute(
        &self,
        query: &Query,
        plan: &Plan,
        collect: Collect,
    ) -> Result<ExecOutput, ExecError> {
        let span = colt_obs::span("engine.execute");
        let mut io = IoStats::new();
        let need = collect == Collect::Rows;
        let out = self.run(query, &plan.root, &mut io, need)?;
        let millis = self.db.cost.millis_of(&io);
        span.sim_ms(millis);
        let mut rows = Vec::new();
        if need {
            for b in out.batches {
                b.into_rows(&mut rows);
            }
        }
        Ok(ExecOutput {
            result: QueryResult { row_count: out.count, millis, io },
            rows,
            layout: out.layout.tables().to_vec(),
        })
    }

    /// The database this executor runs against.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// EXPLAIN ANALYZE: execute the plan and render the operator tree
    /// annotated with *estimated vs actual* rows and the per-node
    /// physical work. The estimation error visible here is exactly the
    /// noise COLT's confidence intervals exist to tolerate.
    pub fn explain_analyze(
        &self,
        query: &Query,
        plan: &Plan,
    ) -> Result<(QueryResult, String), ExecError> {
        let mut io = IoStats::new();
        let mut out = String::new();
        let root = self.analyze_node(query, &plan.root, &mut io, 0, &mut out)?;
        let result =
            QueryResult { row_count: root.count, millis: self.db.cost.millis_of(&io), io };
        out.push_str(&format!(
            "total: {} rows, {:.2} simulated ms ({} seq + {} random pages, {} tuples)\n",
            result.row_count,
            result.millis,
            result.io.seq_pages,
            result.io.random_pages,
            result.io.tuples
        ));
        Ok((result, out))
    }

    /// Execute one node, appending its annotated line (after its
    /// children's, pre-order rendering) to `out`.
    fn analyze_node(
        &self,
        query: &Query,
        node: &PlanNode,
        io: &mut IoStats,
        depth: usize,
        out: &mut String,
    ) -> Result<OpOutput, ExecError> {
        let pad = "  ".repeat(depth);
        let mut child_text = String::new();
        let (result, own_io) = match node {
            PlanNode::Scan { table, path, .. } => {
                let before = *io;
                let b = self.run_scan(query, *table, path, io, true, None)?;
                (b, *io - before)
            }
            PlanNode::HashJoin { build, probe, on, .. } => {
                let b = self.analyze_node(query, build, io, depth + 1, &mut child_text)?;
                let p = self.analyze_node(query, probe, io, depth + 1, &mut child_text)?;
                let before = *io;
                let joined = self.hash_join(b, p, on, io, true)?;
                (joined, *io - before)
            }
            PlanNode::IndexNlJoin { outer, inner, index, probe_on, residual_on, .. } => {
                let o = self.analyze_node(query, outer, io, depth + 1, &mut child_text)?;
                let before = *io;
                let joined =
                    self.index_nl_join(query, o, *inner, *index, *probe_on, residual_on, io, true)?;
                (joined, *io - before)
            }
        };
        let label = match node {
            PlanNode::Scan { table, path, .. } => match path {
                AccessPath::SeqScan => format!("SeqScan t{}", table.0),
                AccessPath::IndexScan { col } => {
                    format!("IndexScan[{col}] t{}", table.0)
                }
                AccessPath::CompositeScan { key, .. } => {
                    format!("CompositeScan[{key}] t{}", table.0)
                }
            },
            PlanNode::HashJoin { on, .. } => format!("HashJoin on {} preds", on.len()),
            PlanNode::IndexNlJoin { inner, index, .. } => {
                format!("IndexNLJoin inner=t{} via [{index}]", inner.0)
            }
        };
        out.push_str(&format!(
            "{pad}{label} (est rows={:.1}, actual rows={}; pages seq={} rnd={})\n",
            node.est_rows(),
            result.count,
            own_io.seq_pages,
            own_io.random_pages,
        ));
        out.push_str(&child_text);
        Ok(result)
    }

    /// Execute a subtree. `need` says whether the consumer requires the
    /// output *values*; when false (a [`Collect::CountOnly`] plan root)
    /// operators skip materialization while charging identically.
    pub(crate) fn run(
        &self,
        query: &Query,
        node: &PlanNode,
        io: &mut IoStats,
        need: bool,
    ) -> Result<OpOutput, ExecError> {
        match node {
            PlanNode::Scan { table, path, .. } => {
                self.run_scan(query, *table, path, io, need, None)
            }
            PlanNode::HashJoin { build, probe, on, .. } => {
                colt_obs::counter("engine.op.hash_join", 1);
                let b = self.run(query, build, io, true)?;
                let p = self.run(query, probe, io, true)?;
                self.hash_join(b, p, on, io, need)
            }
            PlanNode::IndexNlJoin { outer, inner, index, probe_on, residual_on, .. } => {
                colt_obs::counter("engine.op.index_nl_join", 1);
                let o = self.run(query, outer, io, true)?;
                self.index_nl_join(query, o, *inner, *index, *probe_on, residual_on, io, need)
            }
        }
    }

    /// Run one scan node. `proj`, when present, lists the only column
    /// offsets whose values the consumer will read: the gather then
    /// materializes just those columns and leaves the rest empty (see
    /// [`ColumnBatch::dense_projected`]). Selection predicates are
    /// evaluated against the heap rows *before* the gather, so predicate
    /// columns never need to appear in `proj`. Charges are identical
    /// with and without a projection — the cost model counts pages and
    /// tuples processed, not values copied.
    pub(crate) fn run_scan(
        &self,
        query: &Query,
        table: TableId,
        path: &AccessPath,
        io: &mut IoStats,
        need: bool,
        proj: Option<&[usize]>,
    ) -> Result<OpOutput, ExecError> {
        colt_obs::counter(
            match path {
                AccessPath::SeqScan => "engine.op.seq_scan",
                AccessPath::IndexScan { .. } => "engine.op.index_scan",
                AccessPath::CompositeScan { .. } => "engine.op.composite_scan",
            },
            1,
        );
        let t = self.db.table(table);
        let layout = TableLayout::single(self.db, table);
        let preds: Vec<&SelPred> = query.selections_on(table).collect();
        check_pred_cols("scan", &preds, layout.width())?;

        let _batch_span = colt_obs::span("engine.exec.batch");
        let mut batches = Vec::new();
        let mut count = 0u64;
        let mut sel: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
        // One closure per chunk shape: evaluate the predicates over the
        // chunk into the selection vector, then gather only survivors.
        match path {
            AccessPath::SeqScan => {
                for (_first, chunk) in t.heap.scan_batches(BATCH_ROWS, io) {
                    io.cpu_ops += (preds.len() * chunk.len()) as u64;
                    select_rows(chunk, &preds, None, &mut sel);
                    count += sel.len() as u64;
                    if need && !sel.is_empty() {
                        batches.push(gather_rows(chunk, &sel, layout.width(), proj));
                    }
                }
            }
            AccessPath::CompositeScan { key, eq_prefix, range_next } => {
                let mut rowids =
                    composite_scan_rowids(self.config, &preds, key, *eq_prefix, *range_next, io)?;
                let fetched = t.heap.fetch_sorted(&mut rowids, io);
                for chunk in fetched.chunks(BATCH_ROWS) {
                    io.cpu_ops += (preds.len() * chunk.len()) as u64;
                    select_rows(chunk, &preds, None, &mut sel);
                    count += sel.len() as u64;
                    if need && !sel.is_empty() {
                        batches.push(gather_rows(chunk, &sel, layout.width(), proj));
                    }
                }
            }
            AccessPath::IndexScan { col } => {
                let (mut rowids, driver_idx) = index_scan_rowids(self.config, &preds, *col, io)?;
                let fetched = t.heap.fetch_sorted(&mut rowids, io);
                for chunk in fetched.chunks(BATCH_ROWS) {
                    // Residual = everything except the one predicate
                    // that drove the scan — a second predicate on the
                    // same column must still be checked.
                    io.cpu_ops += ((preds.len() - 1) * chunk.len()) as u64;
                    select_rows(chunk, &preds, Some(driver_idx), &mut sel);
                    count += sel.len() as u64;
                    if need && !sel.is_empty() {
                        batches.push(gather_rows(chunk, &sel, layout.width(), proj));
                    }
                }
            }
        }
        Ok(OpOutput { layout, batches, count })
    }

    fn hash_join(
        &self,
        build: OpOutput,
        probe: OpOutput,
        on: &[crate::query::JoinPred],
        io: &mut IoStats,
        need: bool,
    ) -> Result<OpOutput, ExecError> {
        // Locate each join key within the concatenated layouts.
        let key_positions = |layout: &TableLayout| -> Result<Vec<usize>, ExecError> {
            on.iter()
                .map(|j| {
                    let side =
                        if layout.start_of(j.left.table).is_some() { j.left } else { j.right };
                    let pos = layout.col_of(side).ok_or(ExecError::JoinKeyTableMissing {
                        operator: "hash_join",
                        table: side.table,
                    })?;
                    if side.column as usize >= self.db.table(side.table).schema.arity() {
                        return Err(ExecError::UnknownColRef { operator: "hash_join", col: side });
                    }
                    Ok(pos)
                })
                .collect()
        };
        let build_keys = key_positions(&build.layout)?;
        let probe_keys = key_positions(&probe.layout)?;

        let _batch_span = colt_obs::span("engine.exec.batch");
        // The build side is consumed as a whole (that is what "build"
        // means), so flatten it into one dense batch up front; the
        // probe side streams through batch by batch.
        let (build_layout, build_flat) = build.flatten();
        let build_rows = build_flat.physical_rows();
        let build_width = build_layout.width();
        let layout = TableLayout::join(&build_layout, &probe.layout);
        let mut acc = OutAcc::new(layout.width(), need);

        if on.is_empty() {
            // Cartesian product, build-major like the reference — which
            // still pays the (degenerate, empty-key) build phase.
            let (_, probe_flat) = probe.flatten();
            let probe_rows = probe_flat.physical_rows();
            io.cpu_ops += 2 * build_rows as u64;
            io.cpu_ops += build_rows as u64 * probe_rows as u64;
            if need {
                for b in 0..build_rows {
                    for p in 0..probe_rows {
                        acc.push_pair(&build_flat, b, build_width, &probe_flat, p);
                    }
                }
            } else {
                acc.count = build_rows as u64 * probe_rows as u64;
            }
            io.tuples += acc.count;
            let (batches, count) = acc.finish();
            return Ok(OpOutput { layout, batches, count });
        }

        // Build phase, one key column at a time. Deliberately HashMaps:
        // point-lookup only — never iterated — and output order is fixed
        // by the probe-side row order plus the insertion-ordered
        // Vec<u32> match lists, so no hash order can reach the result.
        // (colt-analyze's hash-iteration lint verifies the "never
        // iterated" part.) Single-column keys skip the per-row Vec.
        let mut single: HashMap<&Value, Vec<u32>> = HashMap::new();
        let mut multi: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        if let [key_pos] = build_keys[..] {
            single.reserve(build_rows);
            for i in 0..build_rows {
                single.entry(build_flat.val(key_pos, i)).or_default().push(i as u32);
                io.cpu_ops += 2; // hash + insert
            }
        } else {
            multi.reserve(build_rows);
            for i in 0..build_rows {
                let key: Vec<Value> =
                    build_keys.iter().map(|&k| build_flat.val(k, i).clone()).collect();
                multi.entry(key).or_default().push(i as u32);
                io.cpu_ops += 2; // hash + insert
            }
        }

        // Probe phase: key column at a time, batch by batch.
        let mut key_buf: Vec<Value> = Vec::with_capacity(probe_keys.len());
        for pb in &probe.batches {
            for p in pb.live() {
                io.cpu_ops += 1;
                let matches = if let [key_pos] = probe_keys[..] {
                    single.get(pb.val(key_pos, p))
                } else {
                    key_buf.clear();
                    key_buf.extend(probe_keys.iter().map(|&k| pb.val(k, p).clone()));
                    multi.get(&key_buf)
                };
                if let Some(matches) = matches {
                    for &bi in matches {
                        acc.push_pair(&build_flat, bi as usize, build_width, pb, p);
                    }
                }
            }
        }
        io.tuples += acc.count;
        let (batches, count) = acc.finish();
        Ok(OpOutput { layout, batches, count })
    }

    /// Index nested-loop join: probe the inner table's B+ tree once per
    /// outer row, fetch matches, and apply the inner table's selection
    /// predicates plus any residual join predicates.
    #[allow(clippy::too_many_arguments)]
    fn index_nl_join(
        &self,
        query: &Query,
        outer: OpOutput,
        inner: TableId,
        index_col: ColRef,
        probe_on: crate::query::JoinPred,
        residual_on: &[crate::query::JoinPred],
        io: &mut IoStats,
        need: bool,
    ) -> Result<OpOutput, ExecError> {
        let inner_table = self.db.table(inner);
        let index = materialized_index("index_nl_join", self.config, index_col)?;
        let inner_preds: Vec<&SelPred> = query.selections_on(inner).collect();
        let inner_arity = inner_table.schema.arity();
        check_pred_cols("index_nl_join", &inner_preds, inner_arity)?;

        // Locate the outer side of the probe predicate in the layout.
        let locate = |side: ColRef| -> Result<usize, ExecError> {
            let pos = outer.layout.col_of(side).ok_or(ExecError::JoinKeyTableMissing {
                operator: "index_nl_join",
                table: side.table,
            })?;
            if side.column as usize >= self.db.table(side.table).schema.arity() {
                return Err(ExecError::UnknownColRef { operator: "index_nl_join", col: side });
            }
            Ok(pos)
        };
        let outer_side = if probe_on.left.table == inner { probe_on.right } else { probe_on.left };
        let probe_pos = locate(outer_side)?;

        // Residual join predicates: (outer position, inner column).
        let residuals: Vec<(usize, usize)> = residual_on
            .iter()
            .map(|j| {
                let (o, i) =
                    if j.left.table == inner { (j.right, j.left) } else { (j.left, j.right) };
                if i.column as usize >= inner_arity {
                    return Err(ExecError::UnknownColRef { operator: "index_nl_join", col: i });
                }
                Ok((locate(o)?, i.column as usize))
            })
            .collect::<Result<_, ExecError>>()?;

        let _batch_span = colt_obs::span("engine.exec.batch");
        let (outer_layout, outer_flat) = outer.flatten();
        let outer_width = outer_layout.width();
        let layout = TableLayout::join(&outer_layout, &TableLayout::single(self.db, inner));
        let mut acc = OutAcc::new(layout.width(), need);
        // One probe per outer row, reusing the rowid buffer. Page
        // charges deduplicate within one fetch only (per probe), never
        // across probes — merging rowids across outer rows would change
        // `random_pages` relative to the row-at-a-time reference.
        let mut rowids: Vec<RowId> = Vec::new();
        for o in 0..outer_flat.physical_rows() {
            rowids.clear();
            index.tree.lookup_into(outer_flat.val(probe_pos, o), &mut rowids, io);
            let fetched = inner_table.heap.fetch_sorted(&mut rowids, io);
            for irow in fetched {
                io.cpu_ops += (inner_preds.len() + residuals.len()) as u64;
                let sel_ok = inner_preds.iter().all(|p| p.matches(&irow[p.col.column as usize]));
                let res_ok =
                    residuals.iter().all(|&(op, ic)| outer_flat.val(op, o) == &irow[ic]);
                if sel_ok && res_ok {
                    acc.push_row_suffix(&outer_flat, o, outer_width, irow);
                }
            }
        }
        io.tuples += acc.count;
        let (batches, count) = acc.finish();
        Ok(OpOutput { layout, batches, count })
    }
}

/// Output accumulator for join operators: collects result values column
/// by column, emitting a dense [`ColumnBatch`] every [`BATCH_ROWS`]
/// rows. With `need == false` it only counts.
struct OutAcc {
    cols: Vec<Vec<Value>>,
    batches: Vec<ColumnBatch>,
    count: u64,
    pending: usize,
    need: bool,
}

impl OutAcc {
    fn new(width: usize, need: bool) -> Self {
        OutAcc { cols: vec![Vec::new(); width], batches: Vec::new(), count: 0, pending: 0, need }
    }

    /// Append `left`'s physical row `li` followed by `right`'s physical
    /// row `ri`.
    fn push_pair(
        &mut self,
        left: &ColumnBatch,
        li: usize,
        left_width: usize,
        right: &ColumnBatch,
        ri: usize,
    ) {
        self.count += 1;
        if !self.need {
            return;
        }
        for c in 0..left_width {
            self.cols[c].push(left.val(c, li).clone());
        }
        for c in left_width..self.cols.len() {
            self.cols[c].push(right.val(c - left_width, ri).clone());
        }
        self.bump();
    }

    /// Append `left`'s physical row `li` followed by a borrowed row.
    fn push_row_suffix(&mut self, left: &ColumnBatch, li: usize, left_width: usize, row: &Row) {
        self.count += 1;
        if !self.need {
            return;
        }
        for c in 0..left_width {
            self.cols[c].push(left.val(c, li).clone());
        }
        for (c, v) in row.iter().enumerate() {
            self.cols[left_width + c].push(v.clone());
        }
        self.bump();
    }

    fn bump(&mut self) {
        self.pending += 1;
        if self.pending == BATCH_ROWS {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.pending > 0 {
            let width = self.cols.len();
            let full = std::mem::replace(&mut self.cols, vec![Vec::new(); width]);
            self.batches.push(ColumnBatch::dense(full));
            self.pending = 0;
        }
    }

    fn finish(mut self) -> (Vec<ColumnBatch>, u64) {
        self.flush();
        (self.batches, self.count)
    }
}

/// Check every predicate's column against the table arity, surfacing
/// out-of-range references as [`ExecError::UnknownColRef`] instead of
/// an indexing panic inside an operator loop.
pub(crate) fn check_pred_cols(
    operator: &'static str,
    preds: &[&SelPred],
    arity: usize,
) -> Result<(), ExecError> {
    for p in preds {
        if p.col.column as usize >= arity {
            return Err(ExecError::UnknownColRef { operator, col: p.col });
        }
    }
    Ok(())
}

/// Evaluate `preds` (skipping the predicate at `skip`, if any) over a
/// chunk of rows, one predicate at a time over the whole chunk, leaving
/// the matching row indices in `sel` (ascending).
pub(crate) fn select_rows<R: std::borrow::Borrow<Row>>(
    rows: &[R],
    preds: &[&SelPred],
    skip: Option<usize>,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    let mut first = true;
    for (pi, p) in preds.iter().enumerate() {
        if Some(pi) == skip {
            continue;
        }
        let c = p.col.column as usize;
        if first {
            sel.extend(
                rows.iter()
                    .enumerate()
                    .filter(|(_, r)| p.matches(&r.borrow()[c]))
                    .map(|(i, _)| i as u32),
            );
            first = false;
        } else {
            sel.retain(|&i| p.matches(&rows[i as usize].borrow()[c]));
        }
    }
    if first {
        sel.extend(0..rows.len() as u32);
    }
}

/// Gather the selected rows of a chunk into a dense column batch,
/// column by column. With a projection, only the listed column offsets
/// are materialized — the rest stay empty (pruned), which is what makes
/// the aggregate's scan-level projection pay: unread columns (string
/// columns especially) are never cloned at all.
fn gather_rows<R: std::borrow::Borrow<Row>>(
    rows: &[R],
    sel: &[u32],
    width: usize,
    proj: Option<&[usize]>,
) -> ColumnBatch {
    let mut cols: Vec<Vec<Value>> = vec![Vec::new(); width];
    let gather = |col: &mut Vec<Value>, c: usize| {
        col.reserve(sel.len());
        col.extend(sel.iter().map(|&i| rows[i as usize].borrow()[c].clone()));
    };
    match proj {
        None => {
            for (c, col) in cols.iter_mut().enumerate() {
                gather(col, c);
            }
        }
        Some(ps) => {
            for &c in ps {
                gather(&mut cols[c], c);
            }
        }
    }
    ColumnBatch::dense_projected(cols, sel.len())
}

/// The materialized single-column index a plan node refers to, or a
/// typed error when a hand-built plan names one that was never built.
pub(crate) fn materialized_index<'c>(
    operator: &'static str,
    config: &'c PhysicalConfig,
    col: ColRef,
) -> Result<&'c colt_catalog::MaterializedIndex, ExecError> {
    config.get(col).ok_or(ExecError::UnmaterializedIndex { operator, col })
}

/// Collect the rowids an index scan's driving predicate selects, and
/// the driver's position within `preds`. Charges descend/leaf I/O via
/// the tree; the caller fetches the heap rows.
pub(crate) fn index_scan_rowids(
    config: &PhysicalConfig,
    preds: &[&SelPred],
    col: ColRef,
    io: &mut IoStats,
) -> Result<(Vec<RowId>, usize), ExecError> {
    let index = materialized_index("index_scan", config, col)?;
    let driver_idx = preds
        .iter()
        .position(|p| p.col == col)
        .ok_or(ExecError::MissingDriverPredicate { operator: "index_scan", col })?;
    let mut rowids: Vec<RowId> = Vec::new();
    match &preds[driver_idx].kind {
        PredicateKind::Eq(v) => index.tree.lookup_into(v, &mut rowids, io),
        PredicateKind::In(vs) => {
            // One descent per list element; the sorted fetch afterwards
            // deduplicates heap pages.
            for v in vs {
                index.tree.lookup_into(v, &mut rowids, io);
            }
        }
        PredicateKind::Range { lo, hi } => {
            index.tree.range_into(range_bound(lo), range_bound(hi), &mut rowids, io);
        }
    }
    Ok((rowids, driver_idx))
}

/// Collect the rowids a composite scan's prefix (plus optional range on
/// the next key column) selects.
pub(crate) fn composite_scan_rowids(
    config: &PhysicalConfig,
    preds: &[&SelPred],
    key: &colt_catalog::CompositeKey,
    eq_prefix: u32,
    range_next: bool,
    io: &mut IoStats,
) -> Result<Vec<RowId>, ExecError> {
    let index = config
        .get_composite(key)
        .ok_or(ExecError::UnmaterializedComposite { operator: "composite_scan", table: key.table })?;
    // Equality values pinning the prefix. Matching on the predicate
    // kind directly (rather than find-then-unwrap) keeps the "chosen
    // from these very predicates" invariant as a typed error.
    let prefix: Vec<Value> = key.columns[..eq_prefix as usize]
        .iter()
        .map(|&c| {
            preds
                .iter()
                .find_map(|p| match &p.kind {
                    PredicateKind::Eq(v) if p.col.column == c => Some(v.clone()),
                    _ => None,
                })
                .ok_or(ExecError::MissingDriverPredicate {
                    operator: "composite_scan",
                    col: ColRef { table: key.table, column: c },
                })
        })
        .collect::<Result<_, _>>()?;
    // Optional range on the next column.
    let next = if range_next {
        let c = key.columns[eq_prefix as usize];
        let (lo, hi) = preds
            .iter()
            .find_map(|p| match &p.kind {
                PredicateKind::Range { lo, hi } if p.col.column == c => Some((lo, hi)),
                _ => None,
            })
            .ok_or(ExecError::MissingDriverPredicate {
                operator: "composite_scan",
                col: ColRef { table: key.table, column: c },
            })?;
        Some((range_bound(lo), range_bound(hi)))
    } else {
        None
    };
    Ok(colt_catalog::prefix_scan(index, &prefix, next, io))
}

fn range_bound(b: &Option<crate::query::RangeBound>) -> Bound<Value> {
    match b {
        Some(rb) if rb.inclusive => Bound::Included(rb.value.clone()),
        Some(rb) => Bound::Excluded(rb.value.clone()),
        None => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{IndexSetView, Optimizer};
    use crate::query::{JoinPred, SelPred};
    use colt_catalog::{ColRef, Column, IndexOrigin, TableSchema};
    use colt_storage::{row_from, ValueType};

    fn db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let fact = db.add_table(TableSchema::new(
            "fact",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("fk", ValueType::Int),
                Column::new("v", ValueType::Int),
            ],
        ));
        let dim = db.add_table(TableSchema::new(
            "dim",
            vec![Column::new("id", ValueType::Int), Column::new("grp", ValueType::Int)],
        ));
        db.insert_rows(
            fact,
            (0..20_000i64)
                .map(|i| row_from(vec![Value::Int(i), Value::Int(i % 200), Value::Int(i % 7)])),
        );
        db.insert_rows(dim, (0..200i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 4)])));
        db.analyze_all();
        (db, fact, dim)
    }

    fn plan_and_run(
        db: &Database,
        cfg: &PhysicalConfig,
        q: &Query,
    ) -> (QueryResult, Vec<Vec<Value>>) {
        let opt = Optimizer::new(db);
        let plan = opt.optimize(q, IndexSetView::real(cfg));
        let out = Executor::new(db, cfg).execute(q, &plan, Collect::Rows).unwrap();
        (out.result, out.rows)
    }

    #[test]
    fn seq_scan_filters_correctly() {
        let (db, fact, _) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::single(fact, vec![SelPred::eq(ColRef::new(fact, 2), 3i64)]);
        let (res, rows) = plan_and_run(&db, &cfg, &q);
        // v = i % 7 == 3 → ~ 20000/7 rows.
        assert_eq!(res.row_count as usize, rows.len());
        assert_eq!(rows.len(), 2857, "count of i%7==3 in 0..20000");
        assert!(rows.iter().all(|r| r[2] == Value::Int(3)));
        assert!(res.millis > 0.0);
        assert!(res.io.seq_pages > 0);
    }

    #[test]
    fn count_only_charges_like_rows() {
        // Collect::CountOnly skips materialization at the root; the
        // charges (and therefore the simulated clock) must not move.
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let queries = [
            Query::single(fact, vec![SelPred::eq(ColRef::new(fact, 2), 3i64)]),
            Query::join(
                vec![fact, dim],
                vec![JoinPred::new(ColRef::new(fact, 1), ColRef::new(dim, 0))],
                vec![SelPred::eq(ColRef::new(dim, 1), 2i64)],
            ),
        ];
        let opt = Optimizer::new(&db);
        for q in &queries {
            let plan = opt.optimize(q, IndexSetView::real(&cfg));
            let ex = Executor::new(&db, &cfg);
            let counted = ex.execute(q, &plan, Collect::CountOnly).unwrap();
            let collected = ex.execute(q, &plan, Collect::Rows).unwrap();
            assert!(counted.rows.is_empty());
            assert_eq!(counted.row_count(), collected.row_count());
            assert_eq!(counted.result.io, collected.result.io);
            assert_eq!(counted.layout, collected.layout);
        }
    }

    #[test]
    fn results_straddle_batch_boundaries() {
        // 2857 matching rows out of 20000: both the scan input (20000)
        // and its output straddle the 1024-row batch boundary, and the
        // total must be exact.
        let (db, fact, _) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::single(fact, vec![SelPred::eq(ColRef::new(fact, 2), 3i64)]);
        let (res, rows) = plan_and_run(&db, &cfg, &q);
        assert!(res.row_count as usize > BATCH_ROWS * 2);
        assert_eq!(rows.len(), res.row_count as usize);
        // Row order is heap order, across all chunk boundaries.
        let ids: Vec<i64> = rows
            .iter()
            .map(|r| if let Value::Int(i) = r[0] { i } else { unreachable!() })
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn index_scan_and_seq_scan_agree() {
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let q = Query::single(fact, vec![SelPred::between(col, 100i64, 140i64)]);

        let no_index = PhysicalConfig::new();
        let (seq_res, mut seq_rows) = plan_and_run(&db, &no_index, &q);

        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert_eq!(plan.used_indices(), vec![col], "index must be chosen: {}", plan.explain());
        let out = Executor::new(&db, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
        let (idx_res, mut idx_rows) = (out.result, out.rows);

        seq_rows.sort();
        idx_rows.sort();
        assert_eq!(seq_rows, idx_rows, "same result via both paths");
        assert_eq!(idx_res.row_count, 41);
        // The selective index scan must actually be faster.
        assert!(
            idx_res.millis < seq_res.millis,
            "index {} ms vs seq {} ms",
            idx_res.millis,
            seq_res.millis
        );
    }

    #[test]
    fn in_list_via_index_matches_seq_scan() {
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let q = Query::single(
            fact,
            vec![SelPred::is_in(col, vec![Value::Int(3), Value::Int(500), Value::Int(19_999)])],
        );
        let bare = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let out = Executor::new(&db, &bare)
            .execute(&q, &opt.optimize(&q, IndexSetView::real(&bare)), Collect::Rows)
            .unwrap();
        let (seq_res, mut seq_rows) = (out.result, out.rows);
        assert_eq!(seq_res.row_count, 3);

        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert_eq!(plan.used_indices(), vec![col], "IN must be index-sargable: {}", plan.explain());
        let out = Executor::new(&db, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
        let (idx_res, mut idx_rows) = (out.result, out.rows);
        seq_rows.sort();
        idx_rows.sort();
        assert_eq!(seq_rows, idx_rows);
        assert!(idx_res.millis < seq_res.millis);
    }

    #[test]
    fn contradictory_predicates_on_driving_column() {
        // Regression: two predicates on the indexed column — only the
        // driver may be skipped as residual; the other must still apply.
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let q = Query::single(fact, vec![SelPred::eq(col, 5i64), SelPred::eq(col, 7i64)]);
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap();
        assert_eq!(res.row_count(), 0, "id = 5 AND id = 7 matches nothing");
        // Overlapping ranges on the same column must intersect.
        let q = Query::single(
            fact,
            vec![SelPred::between(col, 0i64, 100i64), SelPred::between(col, 50i64, 200i64)],
        );
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap();
        assert_eq!(res.row_count(), 51, "intersection [50, 100]");
    }

    #[test]
    fn residual_predicates_applied_on_index_path() {
        let (db, fact, _) = db();
        let col = ColRef::new(fact, 0);
        let mut cfg = PhysicalConfig::new();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let q = Query::single(
            fact,
            vec![SelPred::between(col, 0i64, 999i64), SelPred::eq(ColRef::new(fact, 2), 0i64)],
        );
        let (_, rows) = plan_and_run(&db, &cfg, &q);
        assert!(rows.iter().all(|r| r[2] == Value::Int(0)));
        // 1000 ids, every 7th has v=0 → ceil(1000/7) = 143.
        assert_eq!(rows.len(), 143);
    }

    #[test]
    fn hash_join_matches_nested_reference() {
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::join(
            vec![fact, dim],
            vec![JoinPred::new(ColRef::new(fact, 1), ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 1), 2i64)],
        );
        let (res, rows) = plan_and_run(&db, &cfg, &q);
        // dim rows with grp=2: ids {2,6,10,...198} → 50 ids; each matches
        // 20000/200 = 100 fact rows.
        assert_eq!(res.row_count, 50 * 100);
        // Every output row satisfies the join and the filter.
        // Column layout depends on build/probe order; find offsets.
        assert_eq!(rows.len(), 5000);
    }

    #[test]
    fn composite_scan_matches_seq_scan() {
        use colt_catalog::CompositeKey;
        let (db, fact, _) = db();
        // Composite over (fk, v): eq on both columns matches a prefix.
        let key = CompositeKey::new(fact, vec![1, 2]);
        let mut cfg = PhysicalConfig::new();
        cfg.create_composite(&db, key.clone());

        let q = Query::single(
            fact,
            vec![SelPred::eq(ColRef::new(fact, 1), 7i64), SelPred::eq(ColRef::new(fact, 2), 3i64)],
        );
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(
            matches!(
                &plan.root,
                crate::plan::PlanNode::Scan {
                    path: AccessPath::CompositeScan { eq_prefix: 2, range_next: false, .. },
                    ..
                }
            ),
            "{}",
            plan.explain()
        );
        let out = Executor::new(&db, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
        let (comp_res, mut comp_rows) = (out.result, out.rows);

        let bare = PhysicalConfig::new();
        let seq_plan = opt.optimize(&q, IndexSetView::real(&bare));
        let out = Executor::new(&db, &bare).execute(&q, &seq_plan, Collect::Rows).unwrap();
        let (seq_res, mut seq_rows) = (out.result, out.rows);
        comp_rows.sort();
        seq_rows.sort();
        assert_eq!(comp_rows, seq_rows);
        assert_eq!(comp_res.row_count, seq_res.row_count);
        // The two-column equality is far more selective than either
        // single column: the composite must be much faster.
        assert!(comp_res.millis < seq_res.millis / 3.0);
    }

    #[test]
    fn composite_prefix_plus_range_matches_seq_scan() {
        use colt_catalog::CompositeKey;
        let (db, fact, _) = db();
        let key = CompositeKey::new(fact, vec![1, 0]);
        let mut cfg = PhysicalConfig::new();
        cfg.create_composite(&db, key);
        let q = Query::single(
            fact,
            vec![
                SelPred::eq(ColRef::new(fact, 1), 7i64),
                SelPred::between(ColRef::new(fact, 0), 1_000i64, 3_000i64),
            ],
        );
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(
            matches!(
                &plan.root,
                crate::plan::PlanNode::Scan {
                    path: AccessPath::CompositeScan { eq_prefix: 1, range_next: true, .. },
                    ..
                }
            ),
            "{}",
            plan.explain()
        );
        let out = Executor::new(&db, &cfg).execute(&q, &plan, Collect::Rows).unwrap();
        let (res, mut rows) = (out.result, out.rows);
        let bare = PhysicalConfig::new();
        let seq_plan = opt.optimize(&q, IndexSetView::real(&bare));
        let out = Executor::new(&db, &bare).execute(&q, &seq_plan, Collect::Rows).unwrap();
        let mut seq_rows = out.rows;
        rows.sort();
        seq_rows.sort();
        assert_eq!(rows, seq_rows);
        assert!(res.row_count > 0, "range must match something");
    }

    #[test]
    fn inl_join_matches_hash_join_results() {
        use crate::optimizer::OptimizerOptions;
        let (db, fact, dim) = db();
        let mut cfg = PhysicalConfig::new();
        let fk = ColRef::new(fact, 1);
        cfg.create_index(&db, fk, IndexOrigin::Online);
        let q = Query::join(
            vec![fact, dim],
            vec![JoinPred::new(fk, ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 0), 7i64), SelPred::eq(ColRef::new(fact, 2), 3i64)],
        );
        let inl_opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: true });
        let inl_plan = inl_opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(
            matches!(inl_plan.root, crate::plan::PlanNode::IndexNlJoin { .. }),
            "{}",
            inl_plan.explain()
        );
        let hash_plan = Optimizer::new(&db).optimize(&q, IndexSetView::real(&PhysicalConfig::new()));

        let inl = Executor::new(&db, &cfg).execute(&q, &inl_plan, Collect::Rows).unwrap();
        let hash = Executor::new(&db, &PhysicalConfig::new())
            .execute(&q, &hash_plan, Collect::Rows)
            .unwrap();
        assert_eq!(inl.row_count(), hash.row_count());
        // Column order differs between the operators (outer-first vs
        // build-first); compare as multisets of sorted rows.
        let canon = |rows: Vec<Vec<Value>>| {
            let mut v: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|mut r| {
                    r.sort();
                    r
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(inl.rows), canon(hash.rows));
        // The two strategies are within the same ballpark here (the
        // single-probe case is a near-tie in this cost model); the I/O
        // profiles must nonetheless differ in the expected direction:
        // INLJ does random probes, the hash join scans sequentially.
        assert!(inl.result.io.random_pages > hash.result.io.random_pages);
        assert!(inl.result.io.seq_pages < hash.result.io.seq_pages);
    }

    #[test]
    fn empty_result_is_fine() {
        let (db, fact, _) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::single(fact, vec![SelPred::eq(ColRef::new(fact, 0), -1i64)]);
        let (res, rows) = plan_and_run(&db, &cfg, &q);
        assert_eq!(res.row_count, 0);
        assert!(rows.is_empty());
    }

    #[test]
    fn explain_analyze_reports_estimates_and_actuals() {
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::join(
            vec![fact, dim],
            vec![JoinPred::new(ColRef::new(fact, 1), ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 1), 2i64)],
        );
        let opt = Optimizer::new(&db);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let (res, text) = Executor::new(&db, &cfg).explain_analyze(&q, &plan).unwrap();
        // Same result as plain execution.
        let plain = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap();
        assert_eq!(res.row_count, plain.row_count());
        assert_eq!(res.io, plain.result.io);
        // The rendering mentions each operator with estimates and actuals.
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("SeqScan"), "{text}");
        assert!(text.contains("est rows="), "{text}");
        assert!(text.contains(&format!("actual rows={}", res.row_count)), "{text}");
        assert!(text.contains("total:"), "{text}");
    }

    #[test]
    fn malformed_plan_join_key_is_typed_error_not_panic() {
        // Regression: a hand-built plan whose join predicate references
        // a table the join tree never produced used to panic; it must
        // surface as ExecError so harness callers can propagate it.
        use crate::plan::{AccessPath, PlanNode};
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let stray = TableId(99);
        let scan = |t: TableId| PlanNode::Scan {
            table: t,
            path: AccessPath::SeqScan,
            est_rows: 1.0,
            est_cost: 1.0,
        };
        let plan = Plan {
            root: PlanNode::HashJoin {
                build: Box::new(scan(fact)),
                probe: Box::new(scan(dim)),
                // Predicate between `fact` and a table not in the tree.
                on: vec![JoinPred::new(ColRef::new(fact, 1), ColRef::new(stray, 0))],
                est_rows: 1.0,
                est_cost: 2.0,
            },
        };
        let q = Query::join(vec![fact, dim], vec![], vec![]);
        let err = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap_err();
        assert_eq!(err, ExecError::JoinKeyTableMissing { operator: "hash_join", table: stray });
        assert!(err.to_string().contains("t99"), "{err}");
        // The same contradiction through the INLJ path.
        let mut icfg = PhysicalConfig::new();
        let fk = ColRef::new(fact, 1);
        icfg.create_index(&db, fk, colt_catalog::IndexOrigin::Online);
        let plan = Plan {
            root: PlanNode::IndexNlJoin {
                outer: Box::new(scan(dim)),
                inner: fact,
                index: fk,
                probe_on: JoinPred::new(fk, ColRef::new(stray, 0)),
                residual_on: vec![],
                est_rows: 1.0,
                est_cost: 2.0,
            },
        };
        let err = Executor::new(&db, &icfg).execute(&q, &plan, Collect::CountOnly).unwrap_err();
        assert_eq!(
            err,
            ExecError::JoinKeyTableMissing { operator: "index_nl_join", table: stray }
        );
    }

    #[test]
    fn out_of_range_column_is_typed_error_not_panic() {
        // A predicate (or join key) referencing a column beyond the
        // table's arity used to be an unchecked indexing panic inside
        // the operator loop; it must surface as ExecError::UnknownColRef
        // at the batch boundary.
        use crate::plan::{AccessPath, PlanNode};
        let (db, fact, dim) = db();
        let cfg = PhysicalConfig::new();
        let bad = ColRef::new(fact, 9);
        let q = Query::single(fact, vec![SelPred::eq(bad, 1i64)]);
        let scan = |t: TableId| PlanNode::Scan {
            table: t,
            path: AccessPath::SeqScan,
            est_rows: 1.0,
            est_cost: 1.0,
        };
        let plan = Plan { root: scan(fact) };
        let err = Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).unwrap_err();
        assert_eq!(err, ExecError::UnknownColRef { operator: "scan", col: bad });
        assert!(err.to_string().contains("input"), "{err}");
        // Through a hand-built join key.
        let plan = Plan {
            root: PlanNode::HashJoin {
                build: Box::new(scan(fact)),
                probe: Box::new(scan(dim)),
                on: vec![JoinPred::new(bad, ColRef::new(dim, 0))],
                est_rows: 1.0,
                est_cost: 2.0,
            },
        };
        let jq = Query::join(vec![fact, dim], vec![], vec![]);
        let err = Executor::new(&db, &cfg).execute(&jq, &plan, Collect::CountOnly).unwrap_err();
        assert_eq!(err, ExecError::UnknownColRef { operator: "hash_join", col: bad });
    }

    #[test]
    fn executor_time_tracks_io() {
        let (db, fact, _) = db();
        let cfg = PhysicalConfig::new();
        let q = Query::single(fact, vec![]);
        let (res, _) = plan_and_run(&db, &cfg, &q);
        let expect = db.cost.millis_of(&res.io);
        assert!((res.millis - expect).abs() < 1e-9);
    }
}
