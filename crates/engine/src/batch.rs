//! Columnar batches flowing between vectorized operators.
//!
//! The executor processes rows a batch at a time (MonetDB/X100 style):
//! every operator produces [`ColumnBatch`]es of up to [`BATCH_ROWS`]
//! rows, stored as one `Vec<Value>` per output column, together with a
//! [`TableLayout`] header mapping each participating table to its
//! column range. A batch optionally carries a *selection vector* — the
//! sorted physical row indices that are still live after filtering —
//! so a filter can drop rows without moving any column data; every
//! consumer iterates [`ColumnBatch::live`] and therefore honors it.
//!
//! None of this affects the cost model: [`colt_storage::IoStats`] is
//! charged per page and per tuple *processed*, which is invariant to
//! how processed rows are grouped into batches (see DESIGN.md,
//! "Vectorized execution").

use crate::error::ExecError;
use colt_catalog::{ColRef, Database, TableId};
use colt_storage::Value;

/// Target rows per batch. Large enough to amortize per-batch dispatch,
/// small enough that a batch's columns stay cache-resident.
pub const BATCH_ROWS: usize = 1024;

/// A batch of rows in columnar form, with an optional selection vector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnBatch {
    /// One vector per column; all the same length.
    columns: Vec<Vec<Value>>,
    /// Physical row count (the length of every column).
    rows: usize,
    /// Live physical row indices, sorted ascending; `None` = all live.
    sel: Option<Vec<u32>>,
}

impl ColumnBatch {
    /// A batch from pre-built columns, all fully live. Returns
    /// [`ExecError::ColumnArityMismatch`] unless every column has the
    /// same length.
    pub fn from_columns(columns: Vec<Vec<Value>>) -> Result<Self, ExecError> {
        let rows = columns.first().map_or(0, Vec::len);
        for c in &columns {
            if c.len() != rows {
                return Err(ExecError::ColumnArityMismatch {
                    operator: "batch",
                    expected: rows,
                    got: c.len(),
                });
            }
        }
        Ok(ColumnBatch { columns, rows, sel: None })
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Physical rows stored (live or not).
    pub fn physical_rows(&self) -> usize {
        self.rows
    }

    /// Rows still live under the selection vector.
    pub fn live_rows(&self) -> usize {
        self.sel.as_ref().map_or(self.rows, Vec::len)
    }

    /// The selection vector, when one is present.
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// One column's values (physical order; apply [`ColumnBatch::live`]
    /// to read only live rows). `None` when out of range.
    pub fn column(&self, col: usize) -> Option<&[Value]> {
        self.columns.get(col).map(Vec::as_slice)
    }

    /// One value by (column, physical row). `None` when out of range.
    pub fn value(&self, col: usize, row: usize) -> Option<&Value> {
        self.columns.get(col).and_then(|c| c.get(row))
    }

    /// Iterate the live physical row indices, in ascending order.
    pub fn live(&self) -> impl Iterator<Item = usize> + '_ {
        // Chain the two representations into one iterator shape.
        let (dense, selected) = match &self.sel {
            None => (0..self.rows, [].iter()),
            Some(s) => (0..0, s.iter()),
        };
        dense.chain(selected.map(|&i| i as usize))
    }

    /// Refine the selection vector: keep only live rows for which
    /// `keep(physical_row)` holds. This is the vectorized filter
    /// primitive — no column data moves.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        match &mut self.sel {
            Some(s) => s.retain(|&i| keep(i as usize)),
            None => {
                let s: Vec<u32> = (0..self.rows as u32).filter(|&i| keep(i as usize)).collect();
                if s.len() != self.rows {
                    self.sel = Some(s);
                }
            }
        }
    }

    /// Append every live row to `out` as a row-major `Vec<Value>`.
    pub fn extend_rows(&self, out: &mut Vec<Vec<Value>>) {
        out.reserve(self.live_rows());
        for r in self.live() {
            out.push(self.columns.iter().map(|c| c[r].clone()).collect());
        }
    }

    /// Consume the batch, appending every live row to `out` as a
    /// row-major `Vec<Value>`. Dense batches *move* their values out
    /// (one pass of column iterators, no clones); selected batches
    /// clone only the live rows.
    pub fn into_rows(self, out: &mut Vec<Vec<Value>>) {
        out.reserve(self.live_rows());
        match self.sel {
            None => {
                let mut iters: Vec<_> = self.columns.into_iter().map(Vec::into_iter).collect();
                for _ in 0..self.rows {
                    // colt: allow(panic-policy) — every column holds `rows` values by construction
                    out.push(iters.iter_mut().map(|it| it.next().expect("column length")).collect());
                }
            }
            Some(s) => {
                for &i in &s {
                    out.push(self.columns.iter().map(|c| c[i as usize].clone()).collect());
                }
            }
        }
    }

    /// Internal: one value by (column, physical row), for operator inner
    /// loops whose offsets were validated at the batch boundary.
    pub(crate) fn val(&self, col: usize, row: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Internal: a dense batch whose columns are known equal-length by
    /// construction (operators build all columns in lockstep).
    pub(crate) fn dense(columns: Vec<Vec<Value>>) -> Self {
        let rows = columns.first().map_or(0, Vec::len);
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        ColumnBatch { columns, rows, sel: None }
    }

    /// Internal: a dense batch with an explicit row count whose
    /// non-materialized columns are left *empty* (a scan-level
    /// projection). Only valid when every consumer reads materialized
    /// columns exclusively — the aggregate fold over a single-scan plan
    /// guarantees this by projecting exactly the columns it touches.
    /// Reading a pruned column via [`ColumnBatch::val`] panics, loudly,
    /// instead of returning wrong data.
    pub(crate) fn dense_projected(columns: Vec<Vec<Value>>, rows: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.is_empty() || c.len() == rows));
        ColumnBatch { columns, rows, sel: None }
    }

    /// Internal: move this batch's live rows onto the end of `cols`
    /// (one target vector per column). Dense batches move their column
    /// vectors wholesale; selected batches copy only live rows.
    pub(crate) fn drain_into(mut self, cols: &mut [Vec<Value>]) {
        debug_assert_eq!(cols.len(), self.columns.len());
        match self.sel {
            None => {
                for (dst, src) in cols.iter_mut().zip(self.columns.iter_mut()) {
                    if dst.is_empty() {
                        std::mem::swap(dst, src);
                    } else {
                        dst.append(src);
                    }
                }
            }
            Some(ref s) => {
                for (dst, src) in cols.iter_mut().zip(self.columns.iter()) {
                    dst.extend(s.iter().map(|&i| src[i as usize].clone()));
                }
            }
        }
    }
}

/// The column layout of an operator's output: which tables participate,
/// in column-slice order, with each table's starting column offset
/// precomputed so join keys and aggregate columns resolve in O(tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableLayout {
    tables: Vec<TableId>,
    starts: Vec<usize>,
    width: usize,
}

impl TableLayout {
    /// The layout of a single table's scan output.
    pub fn single(db: &Database, table: TableId) -> Self {
        TableLayout {
            tables: vec![table],
            starts: vec![0],
            width: db.table(table).schema.arity(),
        }
    }

    /// The layout of several tables' concatenated columns, in order.
    pub fn of_tables(db: &Database, tables: &[TableId]) -> Self {
        let mut names = Vec::with_capacity(tables.len());
        let mut starts = Vec::with_capacity(tables.len());
        let mut width = 0;
        for &t in tables {
            names.push(t);
            starts.push(width);
            width += db.table(t).schema.arity();
        }
        TableLayout { tables: names, starts, width }
    }

    /// The layout of a join output: `left`'s columns then `right`'s.
    pub fn join(left: &TableLayout, right: &TableLayout) -> Self {
        let mut tables = left.tables.clone();
        tables.extend_from_slice(&right.tables);
        let mut starts = left.starts.clone();
        starts.extend(right.starts.iter().map(|s| s + left.width));
        TableLayout { tables, starts, width: left.width + right.width }
    }

    /// Participating tables in column-slice order.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// Total column count.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The starting column offset of `table`, when present.
    pub fn start_of(&self, table: TableId) -> Option<usize> {
        self.tables.iter().position(|&t| t == table).map(|i| self.starts[i])
    }

    /// Resolve a column reference to its offset in this layout.
    pub fn col_of(&self, col: ColRef) -> Option<usize> {
        self.start_of(col.table).map(|s| s + col.column as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize) -> ColumnBatch {
        ColumnBatch::from_columns(vec![
            (0..n as i64).map(Value::Int).collect(),
            (0..n as i64).map(|i| Value::Int(i * 10)).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn arity_mismatch_is_typed_error() {
        let err = ColumnBatch::from_columns(vec![vec![Value::Int(1)], vec![]]).unwrap_err();
        assert_eq!(
            err,
            ExecError::ColumnArityMismatch { operator: "batch", expected: 1, got: 0 }
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let b = ColumnBatch::from_columns(vec![]).unwrap();
        assert_eq!(b.live_rows(), 0);
        assert_eq!(b.live().count(), 0);
        let b = batch(0);
        assert_eq!(b.live_rows(), 0);
        assert_eq!(b.width(), 2);
    }

    #[test]
    fn retain_refines_selection() {
        let mut b = batch(10);
        assert!(b.sel().is_none());
        b.retain(|r| r % 2 == 0); // 0,2,4,6,8
        assert_eq!(b.live_rows(), 5);
        assert_eq!(b.physical_rows(), 10, "no data moved");
        b.retain(|r| r >= 4); // 4,6,8
        assert_eq!(b.live().collect::<Vec<_>>(), vec![4, 6, 8]);
        // All-filtered is a live but empty selection.
        b.retain(|_| false);
        assert_eq!(b.live_rows(), 0);
        assert_eq!(b.sel(), Some(&[][..]));
    }

    #[test]
    fn retain_keeping_everything_stays_dense() {
        let mut b = batch(4);
        b.retain(|_| true);
        assert!(b.sel().is_none(), "full selection stays implicit");
    }

    #[test]
    fn extend_rows_honors_selection() {
        let mut b = batch(4);
        b.retain(|r| r == 1 || r == 3);
        let mut rows = Vec::new();
        b.extend_rows(&mut rows);
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(3), Value::Int(30)],
            ]
        );
    }

    #[test]
    fn into_rows_matches_extend_rows() {
        for selected in [false, true] {
            let mut b = batch(5);
            if selected {
                b.retain(|r| r % 2 == 1);
            }
            let mut cloned = Vec::new();
            b.extend_rows(&mut cloned);
            let mut moved = Vec::new();
            b.into_rows(&mut moved);
            assert_eq!(moved, cloned, "selected={selected}");
        }
    }

    #[test]
    fn drain_into_moves_dense_and_gathers_selected() {
        let mut cols = vec![Vec::new(), Vec::new()];
        batch(3).drain_into(&mut cols);
        let mut b = batch(3);
        b.retain(|r| r == 2);
        b.drain_into(&mut cols);
        assert_eq!(cols[0], vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(2)]);
        assert_eq!(cols[1].len(), 4);
    }
}
