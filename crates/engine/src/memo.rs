//! What-if memo cache: epoch-scoped reuse of per-query derivations.
//!
//! COLT's profiler answers many `WhatIfOptimize` probes per epoch, and
//! shifting workloads repeat templates: the same (query, candidate)
//! pair is probed again and again while the physical configuration and
//! statistics stand still. This module caches the expensive parts of
//! those derivations — the optimized plan, the base access-path vector
//! the what-if interface perturbs, and each per-candidate gain — keyed
//! by the full [`Query`] structure, literals included.
//!
//! **Lookup cost.** A cached probe must be cheaper than re-deriving it,
//! and at small scales a derivation is well under a microsecond, so the
//! memo cannot afford ordered-map lookups that compare whole `Query`
//! structures at every tree level. A query is therefore resolved once
//! per call: an FNV-1a fingerprint of the query finds the entry id
//! through a fingerprint index (full structural equality is checked
//! exactly once, guarding against colliding fingerprints), and all
//! per-probe reads and writes go through the dense `u64` id. The
//! fingerprint is a pure function of the query — no random hasher
//! state — so the memo's shape is reproducible run to run.
//!
//! **Invalidation is incremental, never a blanket clear.** Each entry
//! carries a [`TableSnap`] per referenced table recording exactly the
//! inputs the optimizer reads: the materialized single-column set, the
//! materialized composite set, the table's statistics version, and its
//! row count. A lookup re-validates its own snapshots and rebuilds only
//! itself when stale; the epoch-boundary sweep walks all entries and
//! drops only those whose snapshots no longer hold. An entry about
//! table `A` survives a create/drop/analyze on table `B` untouched.
//!
//! **Determinism.** A cached value is the value the derivation would
//! produce: gains and plans are pure functions of (query, materialized
//! sets, statistics), and the snapshots pin all of those inputs. The
//! cache therefore changes wall-clock time only — simulated costs,
//! gains, counters of what-if calls, and every figure's stdout are
//! byte-identical with the memo hot, cold, or disabled. Entry ids are
//! insertion-ordered, eviction is FIFO (smallest id first), and all
//! maps are ordered, so even the hit/miss counters are reproducible at
//! any thread count.

use crate::optimizer::ScanChoice;
use crate::plan::Plan;
use crate::query::Query;
use colt_catalog::{ColRef, CompositeKey, Database, PhysicalConfig, TableId};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Default entry bound before FIFO eviction kicks in. Sized to hold
/// every distinct template of a busy epoch; one entry is a plan, a scan
/// vector, and a handful of gains — a few kilobytes at most.
pub const DEFAULT_CAPACITY: usize = 4096;

/// FNV-1a, fixed offset basis and prime: a deterministic, dependency-
/// free 64-bit structural fingerprint (the standard library's default
/// hasher makes no cross-version stability promise).
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn fingerprint(query: &Query) -> u64 {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    query.hash(&mut h);
    h.finish()
}

/// Everything the optimizer reads about one table, pinned at caching
/// time. An entry is served only while every snapshot still holds.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TableSnap {
    /// The table this snapshot pins.
    table: TableId,
    /// Materialized single-column indices on the table, in order.
    mat_cols: Vec<ColRef>,
    /// Materialized composite indices on the table, in order.
    composites: Vec<CompositeKey>,
    /// [`colt_catalog::Table::stats_version`] at caching time.
    stats_version: u64,
    /// Heap row count at caching time (catches inserts between
    /// analyzes, which shift scan costs immediately).
    row_count: u64,
}

impl TableSnap {
    fn capture(db: &Database, config: &PhysicalConfig, table: TableId) -> Self {
        let t = db.table(table);
        TableSnap {
            table,
            mat_cols: config.columns().filter(|c| c.table == table).collect(),
            composites: config.composites_on(table).map(|m| m.key.clone()).collect(),
            stats_version: t.stats_version(),
            row_count: t.heap.row_count() as u64,
        }
    }

    fn holds(&self, db: &Database, config: &PhysicalConfig) -> bool {
        let t = db.table(self.table);
        t.stats_version() == self.stats_version
            && t.heap.row_count() as u64 == self.row_count
            && config.columns().filter(|c| c.table == self.table).eq(self.mat_cols.iter().copied())
            && config.composites_on(self.table).map(|m| &m.key).eq(self.composites.iter())
    }
}

/// Cached derivations for one query template.
#[derive(Debug)]
struct MemoEntry {
    /// Fingerprint of the owning query (for index maintenance).
    fp: u64,
    /// One snapshot per table the query references.
    snaps: Vec<TableSnap>,
    /// The plan `optimize` produced under the snapshotted inputs.
    plan: Option<Plan>,
    /// The what-if base derivation: per-table best scans under the real
    /// configuration and the resulting join-order cost.
    base: Option<(Vec<ScanChoice>, f64)>,
    /// Per-candidate gains already derived for this query.
    gains: BTreeMap<ColRef, f64>,
}

impl MemoEntry {
    fn holds(&self, db: &Database, config: &PhysicalConfig) -> bool {
        self.snaps.iter().all(|s| s.holds(db, config))
    }
}

/// A validated handle to one memo entry, returned by
/// [`WhatIfMemo::resolve`] and consumed by the per-probe accessors.
/// Handles are only meaningful until the next `resolve`/`sweep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoHandle(u64);

/// The memo cache itself. Owned by [`crate::Eqo`]; all maps are ordered
/// and ids are insertion-ordered, so iteration, eviction, and therefore
/// hit/miss accounting are deterministic.
#[derive(Debug)]
pub struct WhatIfMemo {
    /// Entry bound; reaching it evicts the oldest entry (FIFO).
    capacity: usize,
    /// Entries by insertion id; the smallest id is the oldest entry.
    entries: BTreeMap<u64, MemoEntry>,
    /// Fingerprint → (query, id) pairs; the vector resolves fingerprint
    /// collisions by full structural equality (almost always length 1).
    index: BTreeMap<u64, Vec<(Query, u64)>>,
    /// Next entry id.
    next_id: u64,
    /// Entries dropped by FIFO pressure (never by invalidation). An
    /// eviction silently forgets a live template, so it must be
    /// observable: `Eqo` exports this as `engine.whatif.memo_eviction`.
    evicted: u64,
}

impl Default for WhatIfMemo {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl WhatIfMemo {
    /// An empty memo with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty memo bounded at `capacity` entries (min 1). Tests lower
    /// the bound to exercise eviction pressure without 4096 templates.
    pub fn with_capacity(capacity: usize) -> Self {
        WhatIfMemo {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            index: BTreeMap::new(),
            next_id: 0,
            evicted: 0,
        }
    }

    /// Entries dropped by FIFO pressure since construction.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// Number of live entries (for tests and introspection).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve `query` to a validated entry, creating or rebuilding it
    /// as needed. The flag reports whether a previously cached entry
    /// had gone stale and was discarded (its replacement starts empty);
    /// creating a first-time entry is not an invalidation.
    pub fn resolve(
        &mut self,
        db: &Database,
        config: &PhysicalConfig,
        query: &Query,
    ) -> (MemoHandle, bool) {
        let fp = fingerprint(query);
        let existing = self
            .index
            .get(&fp)
            .and_then(|slot| slot.iter().find(|(q, _)| q == query))
            .map(|&(_, id)| id);
        let mut invalidated = false;
        if let Some(id) = existing {
            match self.entries.get(&id) {
                Some(e) if e.holds(db, config) => return (MemoHandle(id), false),
                _ => {
                    self.remove(fp, id);
                    invalidated = true;
                }
            }
        }
        if self.entries.len() >= self.capacity {
            // FIFO: ids are insertion-ordered, so the first key is the
            // oldest entry.
            if let Some((&oldest, e)) = self.entries.iter().next() {
                let old_fp = e.fp;
                self.remove(old_fp, oldest);
                self.evicted += 1;
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let snaps = query.tables.iter().map(|&t| TableSnap::capture(db, config, t)).collect();
        self.entries.insert(
            id,
            MemoEntry { fp, snaps, plan: None, base: None, gains: BTreeMap::new() },
        );
        self.index.entry(fp).or_default().push((query.clone(), id));
        (MemoHandle(id), invalidated)
    }

    /// The live, still-valid entry for `query`, without creating,
    /// rebuilding, or evicting anything — the side-effect-free read
    /// path behind [`crate::Eqo::gain_upper_bound`]. A stale entry is
    /// left in place for `resolve` to count and rebuild.
    pub fn peek(&self, db: &Database, config: &PhysicalConfig, query: &Query) -> Option<MemoHandle> {
        let fp = fingerprint(query);
        let id =
            self.index.get(&fp)?.iter().find(|(q, _)| q == query).map(|&(_, id)| id)?;
        let entry = self.entries.get(&id)?;
        if entry.holds(db, config) {
            Some(MemoHandle(id))
        } else {
            None
        }
    }

    fn remove(&mut self, fp: u64, id: u64) {
        self.entries.remove(&id);
        if let Some(slot) = self.index.get_mut(&fp) {
            slot.retain(|&(_, i)| i != id);
            if slot.is_empty() {
                self.index.remove(&fp);
            }
        }
    }

    /// Drop every entry whose snapshots no longer hold; keep the rest.
    /// Called at epoch boundaries. Returns how many entries were
    /// dropped.
    pub fn sweep(&mut self, db: &Database, config: &PhysicalConfig) -> u64 {
        let stale: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.holds(db, config))
            .map(|(&id, e)| (e.fp, id))
            .collect();
        for &(fp, id) in &stale {
            self.remove(fp, id);
        }
        stale.len() as u64
    }

    /// The cached plan behind a handle, if any.
    pub fn plan(&self, h: MemoHandle) -> Option<Plan> {
        self.entries.get(&h.0).and_then(|e| e.plan.clone())
    }

    /// Cache the plan behind a handle (no-op on a dead handle).
    pub fn store_plan(&mut self, h: MemoHandle, plan: &Plan) {
        if let Some(e) = self.entries.get_mut(&h.0) {
            e.plan = Some(plan.clone());
        }
    }

    /// The cached what-if base derivation behind a handle, if any.
    pub fn base(&self, h: MemoHandle) -> Option<(Vec<ScanChoice>, f64)> {
        self.entries.get(&h.0).and_then(|e| e.base.clone())
    }

    /// Cache the base derivation behind a handle.
    pub fn store_base(&mut self, h: MemoHandle, scans: &[ScanChoice], cost: f64) {
        if let Some(e) = self.entries.get_mut(&h.0) {
            e.base = Some((scans.to_vec(), cost));
        }
    }

    /// The cached gain of probing `col`, if any.
    pub fn gain(&self, h: MemoHandle, col: ColRef) -> Option<f64> {
        self.entries.get(&h.0).and_then(|e| e.gains.get(&col).copied())
    }

    /// Cache the gain of probing `col`.
    pub fn store_gain(&mut self, h: MemoHandle, col: ColRef, gain: f64) {
        if let Some(e) = self.entries.get_mut(&h.0) {
            e.gains.insert(col, gain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SelPred;
    use colt_catalog::{Column, IndexOrigin, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    fn db2() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let a = db.add_table(TableSchema::new(
            "a",
            vec![Column::new("x", ValueType::Int), Column::new("y", ValueType::Int)],
        ));
        let b = db.add_table(TableSchema::new("b", vec![Column::new("z", ValueType::Int)]));
        db.insert_rows(a, (0..1_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 7)])));
        db.insert_rows(b, (0..1_000i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();
        (db, a, b)
    }

    #[test]
    fn resolve_distinguishes_fresh_valid_and_stale() {
        let (db, a, _) = db2();
        let mut cfg = PhysicalConfig::new();
        let q = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 5i64)]);
        let mut memo = WhatIfMemo::new();
        let (h1, inv) = memo.resolve(&db, &cfg, &q);
        assert!(!inv, "first sight is a plain miss");
        let (h2, inv) = memo.resolve(&db, &cfg, &q);
        assert!(!inv, "unchanged world revalidates");
        assert_eq!(h1, h2, "revalidation keeps the same entry");
        cfg.create_index(&db, ColRef::new(a, 1), IndexOrigin::Online);
        let (h3, inv) = memo.resolve(&db, &cfg, &q);
        assert!(inv, "materialized-set change invalidates");
        assert_ne!(h1, h3, "the stale entry was replaced");
        assert!(!memo.resolve(&db, &cfg, &q).1);
    }

    #[test]
    fn invalidation_is_scoped_to_the_touched_table() {
        let (db, a, b) = db2();
        let mut cfg = PhysicalConfig::new();
        let qa = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 5i64)]);
        let qb = Query::single(b, vec![SelPred::eq(ColRef::new(b, 0), 5i64)]);
        let mut memo = WhatIfMemo::new();
        let (ha, _) = memo.resolve(&db, &cfg, &qa);
        let (hb, _) = memo.resolve(&db, &cfg, &qb);
        memo.store_gain(ha, ColRef::new(a, 0), 1.5);
        memo.store_gain(hb, ColRef::new(b, 0), 2.5);
        // An index on table `a` must not disturb table `b`'s entry.
        cfg.create_index(&db, ColRef::new(a, 1), IndexOrigin::Online);
        assert_eq!(memo.sweep(&db, &cfg), 1, "exactly the table-a entry drops");
        assert_eq!(memo.gain(hb, ColRef::new(b, 0)), Some(2.5), "table-b gain survives");
        assert_eq!(memo.gain(ha, ColRef::new(a, 0)), None, "table-a handle is dead");
        let (hb2, inv) = memo.resolve(&db, &cfg, &qb);
        assert!(!inv);
        assert_eq!(hb2, hb, "table-b entry still live after the sweep");
    }

    #[test]
    fn stats_and_row_count_changes_invalidate() {
        let (mut db, a, _) = db2();
        let cfg = PhysicalConfig::new();
        let q = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 5i64)]);
        let mut memo = WhatIfMemo::new();
        memo.resolve(&db, &cfg, &q);
        db.table_mut(a).analyze();
        assert!(memo.resolve(&db, &cfg, &q).1, "analyze bumps stats_version");
        db.insert_rows(a, std::iter::once(row_from(vec![Value::Int(-1), Value::Int(0)])));
        assert!(memo.resolve(&db, &cfg, &q).1, "bare insert (no analyze) still invalidates");
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let (db, a, _) = db2();
        let cfg = PhysicalConfig::new();
        let mut memo = WhatIfMemo::new();
        let col = ColRef::new(a, 0);
        let query_for = |i: i64| Query::single(a, vec![SelPred::eq(col, i)]);
        let mut handles = Vec::new();
        for i in 0..(DEFAULT_CAPACITY as i64 + 3) {
            let (h, _) = memo.resolve(&db, &cfg, &query_for(i));
            memo.store_gain(h, col, i as f64);
            handles.push(h);
        }
        assert_eq!(memo.len(), DEFAULT_CAPACITY);
        assert_eq!(memo.evictions(), 3, "every FIFO drop is counted");
        // The three oldest templates were evicted, the newest survive.
        for (i, &h) in handles.iter().take(3).enumerate() {
            assert_eq!(memo.gain(h, col), None, "entry {i} evicted first");
        }
        let last = DEFAULT_CAPACITY + 2;
        assert_eq!(memo.gain(handles[last], col), Some(last as f64));
        // Re-resolving an evicted template is a plain miss, not an
        // invalidation, and the cache stays bounded.
        assert!(!memo.resolve(&db, &cfg, &query_for(0)).1);
        assert_eq!(memo.len(), DEFAULT_CAPACITY);
        assert_eq!(memo.evictions(), 4);
    }

    #[test]
    fn lowered_capacity_evicts_under_pressure() {
        let (db, a, _) = db2();
        let cfg = PhysicalConfig::new();
        let mut memo = WhatIfMemo::with_capacity(2);
        let col = ColRef::new(a, 0);
        for i in 0..5i64 {
            let (h, _) = memo.resolve(&db, &cfg, &Query::single(a, vec![SelPred::eq(col, i)]));
            memo.store_gain(h, col, i as f64);
        }
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.evictions(), 3);
    }

    #[test]
    fn fingerprint_is_stable_and_structural() {
        let (_, a, b) = db2();
        let q1 = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 5i64)]);
        let q2 = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 5i64)]);
        let q3 = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 6i64)]);
        let q4 = Query::single(b, vec![SelPred::eq(ColRef::new(b, 0), 5i64)]);
        assert_eq!(fingerprint(&q1), fingerprint(&q2), "equal queries, equal fingerprints");
        assert_ne!(fingerprint(&q1), fingerprint(&q3), "literals are part of the key");
        assert_ne!(fingerprint(&q1), fingerprint(&q4));
    }
}
