//! The Extended Query Optimizer (EQO): normal optimization plus the
//! `WhatIfOptimize(q, P)` interface of the paper (§3).
//!
//! For every probed index `I ∈ P`, the EQO reports the *query gain*
//!
//! ```text
//! QueryGain(q, I) = QueryCost(q, M − {I}) − QueryCost(q, M ∪ {I})
//! ```
//!
//! i.e. the savings of having `I` materialized relative to not having it,
//! with every other materialized index untouched. For an index that is
//! not materialized the EQO pretends it exists; for a materialized index
//! it pretends it does not (the reverse probe the paper describes for
//! `QueryGain_M`).
//!
//! As in the paper's PostgreSQL prototype, the EQO reuses intermediate
//! solutions from the initial optimization of the query: the chosen
//! access path of every table the probed index does not touch is reused
//! verbatim, and only the affected table is re-priced before re-running
//! the (cheap) join-ordering DP.

use crate::optimizer::{IndexSetView, Optimizer, ScanChoice};
use crate::plan::Plan;
use crate::query::Query;
use colt_catalog::{ColRef, Database, PhysicalConfig};
use std::collections::BTreeSet;

/// Gain of one probed index for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexGain {
    /// The probed index.
    pub col: ColRef,
    /// `QueryCost(q, M − {I}) − QueryCost(q, M ∪ {I})`, in cost units.
    /// Non-negative up to cost-model monotonicity.
    pub gain: f64,
}

/// Running counters of optimizer work, used to audit the tuning
/// overhead (Figure 5 of the paper counts what-if calls per epoch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqoCounters {
    /// Normal (non-what-if) optimizations.
    pub optimizations: u64,
    /// Individual index probes answered through the what-if interface.
    pub whatif_calls: u64,
}

/// The extended query optimizer.
///
/// # Examples
///
/// ```
/// use colt_catalog::{ColRef, Column, Database, PhysicalConfig, TableSchema};
/// use colt_engine::{Eqo, Query, SelPred};
/// use colt_storage::{row_from, Value, ValueType};
///
/// let mut db = Database::new();
/// let t = db.add_table(TableSchema::new("t", vec![Column::new("k", ValueType::Int)]));
/// db.insert_rows(t, (0..10_000i64).map(|i| row_from(vec![Value::Int(i)])));
/// db.analyze_all();
///
/// let config = PhysicalConfig::new();
/// let mut eqo = Eqo::new(&db);
/// let col = ColRef::new(t, 0);
/// let q = Query::single(t, vec![SelPred::eq(col, 42i64)]);
///
/// // Normal optimization prices the best plan under the real config…
/// let plan = eqo.optimize(&q, &config);
/// // …and a what-if probe reports how much a hypothetical index on
/// // `k` would save, without building anything.
/// let gains = eqo.what_if_optimize(&q, &[col], &config);
/// assert!(gains[0].gain > 0.0);
/// assert!(gains[0].gain <= plan.est_cost());
/// assert_eq!(eqo.counters().whatif_calls, 1);
/// ```
#[derive(Debug)]
pub struct Eqo<'a> {
    opt: Optimizer<'a>,
    counters: EqoCounters,
}

impl<'a> Eqo<'a> {
    /// Create an EQO over a database.
    pub fn new(db: &'a Database) -> Self {
        Eqo { opt: Optimizer::new(db), counters: EqoCounters::default() }
    }

    /// Work counters so far.
    pub fn counters(&self) -> EqoCounters {
        self.counters
    }

    /// Normal query optimization under the real configuration.
    pub fn optimize(&mut self, query: &Query, config: &PhysicalConfig) -> Plan {
        let _span = colt_obs::span("engine.optimize");
        self.counters.optimizations += 1;
        self.opt.optimize(query, IndexSetView::real(config))
    }

    /// `WhatIfOptimize(q, P)`: per-index query gains, one what-if call
    /// charged per probed index.
    pub fn what_if_optimize(
        &mut self,
        query: &Query,
        probes: &[ColRef],
        config: &PhysicalConfig,
    ) -> Vec<IndexGain> {
        if probes.is_empty() {
            return Vec::new();
        }
        let _span = colt_obs::span("engine.whatif");
        colt_obs::counter("engine.whatif_calls", probes.len() as u64);
        self.counters.whatif_calls += probes.len() as u64;

        // Memoized per-table access paths under the unmodified view.
        let base_view = IndexSetView::real(config);
        let base_scans: Vec<ScanChoice> =
            query.tables.iter().map(|&t| self.opt.best_scan(query, t, base_view)).collect();
        let base_cost = self.opt.join_order(query, base_scans.clone(), base_view).est_cost();

        probes
            .iter()
            .map(|&col| {
                let materialized = config.contains(col);
                let (plus, minus) = if materialized {
                    (BTreeSet::new(), single(col))
                } else {
                    (single(col), BTreeSet::new())
                };
                let view = IndexSetView::hypothetical(config, &plus, &minus);

                // Reuse every scan except those on the probed table.
                let scans: Vec<ScanChoice> = query
                    .tables
                    .iter()
                    .zip(&base_scans)
                    .map(|(&t, cached)| {
                        if t == col.table {
                            self.opt.best_scan(query, t, view)
                        } else {
                            cached.clone()
                        }
                    })
                    .collect();
                let probe_cost = self.opt.join_order(query, scans, view).est_cost();

                let gain = if materialized {
                    // probe_cost = cost without I; base has I.
                    probe_cost - base_cost
                } else {
                    // base = cost without I; probe has I.
                    base_cost - probe_cost
                };
                IndexGain { col, gain: gain.max(0.0) }
            })
            .collect()
    }
}

fn single(col: ColRef) -> BTreeSet<ColRef> {
    BTreeSet::from([col])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SelPred;
    use colt_catalog::{Column, IndexOrigin, TableId, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    fn db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("grp", ValueType::Int),
                Column::new("wide", ValueType::Int),
            ],
        ));
        db.insert_rows(
            t,
            (0..40_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 50), Value::Int(i % 4)])),
        );
        db.analyze_all();
        (db, t)
    }

    #[test]
    fn whatif_gain_positive_for_selective_index() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let gains = eqo.what_if_optimize(&q, &[col], &cfg);
        assert_eq!(gains.len(), 1);
        assert!(gains[0].gain > 0.0, "selective index must show gain");
        assert_eq!(eqo.counters().whatif_calls, 1);
    }

    #[test]
    fn whatif_gain_zero_for_irrelevant_index() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), 7i64)]);
        // Index on a column the query does not restrict.
        let gains = eqo.what_if_optimize(&q, &[ColRef::new(t, 2)], &cfg);
        assert_eq!(gains[0].gain, 0.0);
    }

    #[test]
    fn whatif_matches_brute_force_cost_difference() {
        let (db, t) = db();
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let mut eqo = Eqo::new(&db);

        // Non-materialized probe must equal cost(M) − cost(M ∪ I).
        let gains = eqo.what_if_optimize(&q, &[col], &cfg);
        let without = eqo.optimize(&q, &cfg).est_cost();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let with = eqo.optimize(&q, &cfg).est_cost();
        assert!((gains[0].gain - (without - with)).abs() < 1e-9);

        // Materialized probe (reverse what-if) must report the same gain.
        let gains_m = eqo.what_if_optimize(&q, &[col], &cfg);
        assert!((gains_m[0].gain - gains[0].gain).abs() < 1e-9);
    }

    #[test]
    fn whatif_multiple_probes_counted_individually() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let q = Query::single(
            t,
            vec![SelPred::eq(ColRef::new(t, 0), 7i64), SelPred::eq(ColRef::new(t, 1), 3i64)],
        );
        let gains = eqo.what_if_optimize(&q, &[ColRef::new(t, 0), ColRef::new(t, 1)], &cfg);
        assert_eq!(gains.len(), 2);
        assert_eq!(eqo.counters().whatif_calls, 2);
        // The unique-column index must gain at least as much as the
        // 50-distinct one.
        assert!(gains[0].gain >= gains[1].gain);
    }

    #[test]
    fn empty_probe_set_is_free() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let q = Query::single(t, vec![]);
        assert!(eqo.what_if_optimize(&q, &[], &cfg).is_empty());
        assert_eq!(eqo.counters().whatif_calls, 0);
    }
}
