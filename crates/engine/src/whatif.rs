//! The Extended Query Optimizer (EQO): normal optimization plus the
//! `WhatIfOptimize(q, P)` interface of the paper (§3).
//!
//! For every probed index `I ∈ P`, the EQO reports the *query gain*
//!
//! ```text
//! QueryGain(q, I) = QueryCost(q, M − {I}) − QueryCost(q, M ∪ {I})
//! ```
//!
//! i.e. the savings of having `I` materialized relative to not having it,
//! with every other materialized index untouched. For an index that is
//! not materialized the EQO pretends it exists; for a materialized index
//! it pretends it does not (the reverse probe the paper describes for
//! `QueryGain_M`).
//!
//! As in the paper's PostgreSQL prototype, the EQO reuses intermediate
//! solutions from the initial optimization of the query: the chosen
//! access path of every table the probed index does not touch is reused
//! verbatim, and only the affected table is re-priced before re-running
//! the (cheap) join-ordering DP.

use crate::memo::WhatIfMemo;
use crate::optimizer::{IndexSetView, Optimizer, ScanChoice};
use crate::plan::Plan;
use crate::query::Query;
use colt_catalog::{ColRef, Database, PhysicalConfig};
use std::collections::BTreeSet;

/// Gain of one probed index for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexGain {
    /// The probed index.
    pub col: ColRef,
    /// `QueryCost(q, M − {I}) − QueryCost(q, M ∪ {I})`, in cost units.
    /// Non-negative up to cost-model monotonicity.
    pub gain: f64,
}

/// Running counters of optimizer work, used to audit the tuning
/// overhead (Figure 5 of the paper counts what-if calls per epoch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqoCounters {
    /// Normal (non-what-if) optimizations.
    pub optimizations: u64,
    /// Individual index probes answered through the what-if interface.
    pub whatif_calls: u64,
    /// What-if derivations served from the memo cache instead of being
    /// re-derived. Every served probe still counts in `whatif_calls`:
    /// the memo changes how fast a probe is answered, never whether it
    /// happened.
    pub memo_hits: u64,
    /// What-if derivations the memo had to compute (and then cached).
    pub memo_misses: u64,
    /// Memo entries discarded because their snapshot went stale (the
    /// materialized set, statistics, or row count of a referenced table
    /// changed, or an epoch sweep found them expired).
    pub memo_invalidations: u64,
    /// Memo entries dropped by FIFO capacity pressure — a silent loss
    /// of a still-valid template. Hits + misses stays equal to
    /// whatif_calls + optimizations regardless (an evicted template is
    /// simply re-derived as a miss), but sustained evictions mean the
    /// memo is undersized for the workload's template count.
    pub memo_evictions: u64,
}

/// The extended query optimizer.
///
/// # Examples
///
/// ```
/// use colt_catalog::{ColRef, Column, Database, PhysicalConfig, TableSchema};
/// use colt_engine::{Eqo, Query, SelPred};
/// use colt_storage::{row_from, Value, ValueType};
///
/// let mut db = Database::new();
/// let t = db.add_table(TableSchema::new("t", vec![Column::new("k", ValueType::Int)]));
/// db.insert_rows(t, (0..10_000i64).map(|i| row_from(vec![Value::Int(i)])));
/// db.analyze_all();
///
/// let config = PhysicalConfig::new();
/// let mut eqo = Eqo::new(&db);
/// let col = ColRef::new(t, 0);
/// let q = Query::single(t, vec![SelPred::eq(col, 42i64)]);
///
/// // Normal optimization prices the best plan under the real config…
/// let plan = eqo.optimize(&q, &config);
/// // …and a what-if probe reports how much a hypothetical index on
/// // `k` would save, without building anything.
/// let gains = eqo.what_if_optimize(&q, &[col], &config);
/// assert!(gains[0].gain > 0.0);
/// assert!(gains[0].gain <= plan.est_cost());
/// assert_eq!(eqo.counters().whatif_calls, 1);
/// ```
#[derive(Debug)]
pub struct Eqo<'a> {
    opt: Optimizer<'a>,
    db: &'a Database,
    memo: WhatIfMemo,
    counters: EqoCounters,
}

impl<'a> Eqo<'a> {
    /// Create an EQO over a database.
    pub fn new(db: &'a Database) -> Self {
        Eqo {
            opt: Optimizer::new(db),
            db,
            memo: WhatIfMemo::new(),
            counters: EqoCounters::default(),
        }
    }

    /// An EQO whose what-if memo is bounded at `capacity` entries.
    /// Tests lower the bound to put the memo under eviction pressure
    /// without thousands of distinct templates.
    pub fn with_memo_capacity(db: &'a Database, capacity: usize) -> Self {
        Eqo {
            opt: Optimizer::new(db),
            db,
            memo: WhatIfMemo::with_capacity(capacity),
            counters: EqoCounters::default(),
        }
    }

    /// Work counters so far.
    pub fn counters(&self) -> EqoCounters {
        self.counters
    }

    /// Number of live what-if memo entries (introspection for tests and
    /// experiments).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Epoch boundary: sweep the memo, dropping only entries whose
    /// snapshots went stale (the scheduler's creates/drops and any
    /// re-analyzes have been applied by now). Valid entries survive
    /// into the next epoch — invalidation is incremental, never a
    /// blanket clear.
    pub fn end_epoch(&mut self, config: &PhysicalConfig) {
        let dropped = self.memo.sweep(self.db, config);
        if dropped > 0 {
            self.counters.memo_invalidations += dropped;
            colt_obs::counter("engine.whatif.memo_invalidate", dropped);
        }
    }

    /// Bookkeeping shared by the memoized lookups: resolve the entry
    /// for `query`, counting a lazily detected stale entry.
    fn resolve_memo(
        &mut self,
        query: &Query,
        config: &PhysicalConfig,
    ) -> crate::memo::MemoHandle {
        let (handle, invalidated) = self.memo.resolve(self.db, config, query);
        if invalidated {
            self.counters.memo_invalidations += 1;
            colt_obs::counter("engine.whatif.memo_invalidate", 1);
        }
        let evicted = self.memo.evictions();
        if evicted > self.counters.memo_evictions {
            colt_obs::counter("engine.whatif.memo_evictions", evicted - self.counters.memo_evictions);
            self.counters.memo_evictions = evicted;
        }
        handle
    }

    /// An upper bound on `QueryGain(query, col)` read from the memoized
    /// base access-path derivation, charging no what-if call.
    ///
    /// A hypothetical index can only *remove* cost from the base plan
    /// (`gain = base_cost − probe_cost` with `probe_cost ≥ 0`), so the
    /// memoized base cost bounds every forward probe from above; when
    /// the exact gain is already memoized it is returned instead (a
    /// zero-width interval). `None` when the template's base derivation
    /// is not cached under the current configuration (the probe itself
    /// will warm it) or when the candidate is materialized — a reverse
    /// probe prices the cost of *losing* the index, which the base
    /// vector cannot bound.
    pub fn gain_upper_bound(
        &self,
        query: &Query,
        col: ColRef,
        config: &PhysicalConfig,
    ) -> Option<f64> {
        if config.contains(col) {
            return None;
        }
        let handle = self.memo.peek(self.db, config, query)?;
        if let Some(gain) = self.memo.gain(handle, col) {
            return Some(gain);
        }
        self.memo.base(handle).map(|(_, base_cost)| base_cost.max(0.0))
    }

    /// Normal query optimization under the real configuration.
    pub fn optimize(&mut self, query: &Query, config: &PhysicalConfig) -> Plan {
        let _span = colt_obs::span("engine.optimize");
        self.counters.optimizations += 1;
        let handle = self.resolve_memo(query, config);
        if let Some(plan) = self.memo.plan(handle) {
            self.counters.memo_hits += 1;
            colt_obs::counter("engine.whatif.memo_hit", 1);
            return plan;
        }
        self.counters.memo_misses += 1;
        colt_obs::counter("engine.whatif.memo_miss", 1);
        let plan = self.opt.optimize(query, IndexSetView::real(config));
        self.memo.store_plan(handle, &plan);
        plan
    }

    /// `WhatIfOptimize(q, P)`: per-index query gains, one what-if call
    /// charged per probed index.
    ///
    /// Derivations are served through the what-if memo when the
    /// physical configuration and statistics of the query's tables are
    /// unchanged since they were cached; cached and freshly computed
    /// gains are identical by construction (see [`crate::memo`]). Every
    /// probe counts in [`EqoCounters::whatif_calls`] either way.
    pub fn what_if_optimize(
        &mut self,
        query: &Query,
        probes: &[ColRef],
        config: &PhysicalConfig,
    ) -> Vec<IndexGain> {
        if probes.is_empty() {
            return Vec::new();
        }
        let _span = colt_obs::span("engine.whatif");
        colt_obs::counter("engine.whatif_calls", probes.len() as u64);
        self.counters.whatif_calls += probes.len() as u64;
        let handle = self.resolve_memo(query, config);

        let cached: Vec<Option<f64>> =
            probes.iter().map(|&col| self.memo.gain(handle, col)).collect();
        let hits = cached.iter().filter(|g| g.is_some()).count() as u64;
        let misses = probes.len() as u64 - hits;
        if hits > 0 {
            self.counters.memo_hits += hits;
            colt_obs::counter("engine.whatif.memo_hit", hits);
        }
        if misses == 0 {
            return probes
                .iter()
                .zip(cached)
                .map(|(&col, g)| IndexGain { col, gain: g.unwrap_or(0.0) })
                .collect();
        }
        self.counters.memo_misses += misses;
        colt_obs::counter("engine.whatif.memo_miss", misses);

        // Memoized per-table access paths under the unmodified view,
        // reused across probes of this call and — through the memo —
        // across calls within the epoch.
        let base_view = IndexSetView::real(config);
        let (base_scans, base_cost) = match self.memo.base(handle) {
            Some(b) => b,
            None => {
                let scans: Vec<ScanChoice> = query
                    .tables
                    .iter()
                    .map(|&t| self.opt.best_scan(query, t, base_view))
                    .collect();
                let cost = self.opt.join_order(query, scans.clone(), base_view).est_cost();
                self.memo.store_base(handle, &scans, cost);
                (scans, cost)
            }
        };

        probes
            .iter()
            .zip(cached)
            .map(|(&col, known)| {
                if let Some(gain) = known {
                    return IndexGain { col, gain };
                }
                let materialized = config.contains(col);
                let (plus, minus) = if materialized {
                    (BTreeSet::new(), single(col))
                } else {
                    (single(col), BTreeSet::new())
                };
                let view = IndexSetView::hypothetical(config, &plus, &minus);

                // Reuse every scan except those on the probed table.
                let scans: Vec<ScanChoice> = query
                    .tables
                    .iter()
                    .zip(&base_scans)
                    .map(|(&t, cached)| {
                        if t == col.table {
                            self.opt.best_scan(query, t, view)
                        } else {
                            cached.clone()
                        }
                    })
                    .collect();
                let probe_cost = self.opt.join_order(query, scans, view).est_cost();

                let gain = if materialized {
                    // probe_cost = cost without I; base has I.
                    probe_cost - base_cost
                } else {
                    // base = cost without I; probe has I.
                    base_cost - probe_cost
                };
                let gain = gain.max(0.0);
                self.memo.store_gain(handle, col, gain);
                IndexGain { col, gain }
            })
            .collect()
    }
}

fn single(col: ColRef) -> BTreeSet<ColRef> {
    BTreeSet::from([col])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SelPred;
    use colt_catalog::{Column, IndexOrigin, TableId, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    fn db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("grp", ValueType::Int),
                Column::new("wide", ValueType::Int),
            ],
        ));
        db.insert_rows(
            t,
            (0..40_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 50), Value::Int(i % 4)])),
        );
        db.analyze_all();
        (db, t)
    }

    #[test]
    fn whatif_gain_positive_for_selective_index() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let gains = eqo.what_if_optimize(&q, &[col], &cfg);
        assert_eq!(gains.len(), 1);
        assert!(gains[0].gain > 0.0, "selective index must show gain");
        assert_eq!(eqo.counters().whatif_calls, 1);
    }

    #[test]
    fn whatif_gain_zero_for_irrelevant_index() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), 7i64)]);
        // Index on a column the query does not restrict.
        let gains = eqo.what_if_optimize(&q, &[ColRef::new(t, 2)], &cfg);
        assert_eq!(gains[0].gain, 0.0);
    }

    #[test]
    fn whatif_matches_brute_force_cost_difference() {
        let (db, t) = db();
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(t, 0);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64)]);
        let mut eqo = Eqo::new(&db);

        // Non-materialized probe must equal cost(M) − cost(M ∪ I).
        let gains = eqo.what_if_optimize(&q, &[col], &cfg);
        let without = eqo.optimize(&q, &cfg).est_cost();
        cfg.create_index(&db, col, IndexOrigin::Online);
        let with = eqo.optimize(&q, &cfg).est_cost();
        assert!((gains[0].gain - (without - with)).abs() < 1e-9);

        // Materialized probe (reverse what-if) must report the same gain.
        let gains_m = eqo.what_if_optimize(&q, &[col], &cfg);
        assert!((gains_m[0].gain - gains[0].gain).abs() < 1e-9);
    }

    #[test]
    fn whatif_multiple_probes_counted_individually() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let q = Query::single(
            t,
            vec![SelPred::eq(ColRef::new(t, 0), 7i64), SelPred::eq(ColRef::new(t, 1), 3i64)],
        );
        let gains = eqo.what_if_optimize(&q, &[ColRef::new(t, 0), ColRef::new(t, 1)], &cfg);
        assert_eq!(gains.len(), 2);
        assert_eq!(eqo.counters().whatif_calls, 2);
        // The unique-column index must gain at least as much as the
        // 50-distinct one.
        assert!(gains[0].gain >= gains[1].gain);
    }

    #[test]
    fn empty_probe_set_is_free() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let q = Query::single(t, vec![]);
        assert!(eqo.what_if_optimize(&q, &[], &cfg).is_empty());
        assert_eq!(eqo.counters().whatif_calls, 0);
    }

    #[test]
    fn memo_counters_account_for_every_derivation() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let probes = [ColRef::new(t, 0), ColRef::new(t, 1)];
        for i in 0..5i64 {
            let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), i % 2)]);
            eqo.optimize(&q, &cfg);
            eqo.what_if_optimize(&q, &probes, &cfg);
        }
        let c = eqo.counters();
        // Every memo-mediated derivation — one per optimize call, one
        // per probe — is either a hit or a miss, never both or neither.
        assert_eq!(c.memo_hits + c.memo_misses, c.whatif_calls + c.optimizations);
        // Two distinct templates cycled five times: rounds 2+ are pure
        // hits, so hits strictly dominate.
        assert!(c.memo_hits > c.memo_misses, "counters: {c:?}");
        assert_eq!(c.memo_invalidations, 0, "nothing changed, nothing invalidates");
    }

    #[test]
    fn memo_accounting_holds_under_eviction_pressure() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::with_memo_capacity(&db, 2);
        let probes = [ColRef::new(t, 0)];
        // Five distinct templates cycled through a two-entry memo: FIFO
        // keeps evicting, so later rounds re-derive instead of hitting.
        for _ in 0..2 {
            for i in 0..5i64 {
                let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), i)]);
                eqo.what_if_optimize(&q, &probes, &cfg);
            }
        }
        let c = eqo.counters();
        assert!(c.memo_evictions > 0, "a 2-entry memo must evict: {c:?}");
        assert_eq!(
            c.memo_hits + c.memo_misses,
            c.whatif_calls + c.optimizations,
            "every derivation is a hit or a miss even when entries are evicted: {c:?}"
        );
        assert_eq!(eqo.memo_len(), 2, "the memo stays bounded");
    }

    #[test]
    fn gain_upper_bound_is_sound_and_charges_nothing() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let col = ColRef::new(t, 0);
        let other = ColRef::new(t, 1);
        let q = Query::single(t, vec![SelPred::eq(col, 7i64), SelPred::eq(other, 3i64)]);
        // Unseen template: nothing memoized, no bound.
        assert_eq!(eqo.gain_upper_bound(&q, col, &cfg), None);
        let gains = eqo.what_if_optimize(&q, &[col], &cfg);
        let calls = eqo.counters().whatif_calls;
        // Already-probed candidate: the exact memoized gain comes back.
        assert_eq!(eqo.gain_upper_bound(&q, col, &cfg), Some(gains[0].gain));
        // Unprobed candidate: the memoized base cost bounds its gain.
        let bound = eqo.gain_upper_bound(&q, other, &cfg).expect("base is memoized");
        let true_gain = eqo.what_if_optimize(&q, &[other], &cfg)[0].gain;
        assert!(true_gain <= bound + 1e-9, "bound {bound} must dominate gain {true_gain}");
        // Bound reads spend no what-if budget.
        assert_eq!(eqo.counters().whatif_calls, calls + 1);
        // Materialized candidates (reverse probes) have no bound.
        let mut cfg2 = PhysicalConfig::new();
        cfg2.create_index(&db, col, IndexOrigin::Online);
        assert_eq!(eqo.gain_upper_bound(&q, col, &cfg2), None);
    }

    #[test]
    fn repeated_probes_are_served_from_the_memo_identically() {
        let (db, t) = db();
        let cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), 7i64)]);
        let probes = [ColRef::new(t, 0), ColRef::new(t, 1), ColRef::new(t, 2)];
        let cold = eqo.what_if_optimize(&q, &probes, &cfg);
        let before = eqo.counters();
        assert_eq!(before.memo_misses, probes.len() as u64);
        let warm = eqo.what_if_optimize(&q, &probes, &cfg);
        let after = eqo.counters();
        assert_eq!(warm, cold, "cached gains must be bit-identical");
        assert_eq!(after.memo_hits - before.memo_hits, probes.len() as u64);
        assert_eq!(after.memo_misses, before.memo_misses, "no re-derivation on the warm call");
        // A warmed memo must also agree with a completely fresh EQO.
        let fresh = Eqo::new(&db).what_if_optimize(&q, &probes, &cfg);
        assert_eq!(fresh, warm);
        let plan_warm = eqo.optimize(&q, &cfg);
        let plan_fresh = Eqo::new(&db).optimize(&q, &cfg);
        assert_eq!(plan_warm, plan_fresh, "cached plan must equal a fresh derivation");
    }

    #[test]
    fn configuration_change_invalidates_only_lazily_and_scoped() {
        let mut db = Database::new();
        let a = db.add_table(TableSchema::new(
            "a",
            vec![Column::new("x", ValueType::Int)],
        ));
        let b = db.add_table(TableSchema::new(
            "b",
            vec![Column::new("z", ValueType::Int)],
        ));
        db.insert_rows(a, (0..10_000i64).map(|i| row_from(vec![Value::Int(i)])));
        db.insert_rows(b, (0..10_000i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();
        let mut cfg = PhysicalConfig::new();
        let mut eqo = Eqo::new(&db);
        let qa = Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), 7i64)]);
        let qb = Query::single(b, vec![SelPred::eq(ColRef::new(b, 0), 7i64)]);
        let gains_a = eqo.what_if_optimize(&qa, &[ColRef::new(a, 0)], &cfg);
        eqo.what_if_optimize(&qb, &[ColRef::new(b, 0)], &cfg);
        assert_eq!(eqo.memo_len(), 2);

        // Materialize the probed index on `a` mid-epoch: the next probe
        // of `qa` detects the stale snapshot lazily and re-derives; the
        // reverse probe must agree with the forward one.
        cfg.create_index(&db, ColRef::new(a, 0), IndexOrigin::Online);
        let gains_a2 = eqo.what_if_optimize(&qa, &[ColRef::new(a, 0)], &cfg);
        assert_eq!(eqo.counters().memo_invalidations, 1);
        assert!((gains_a2[0].gain - gains_a[0].gain).abs() < 1e-9);
        // Table `b`'s entry was untouched: its probe is a pure hit.
        let hits_before = eqo.counters().memo_hits;
        eqo.what_if_optimize(&qb, &[ColRef::new(b, 0)], &cfg);
        assert_eq!(eqo.counters().memo_hits, hits_before + 1);
        assert_eq!(eqo.counters().memo_invalidations, 1, "b was never invalidated");

        // The epoch sweep keeps both (now-consistent) entries.
        eqo.end_epoch(&cfg);
        assert_eq!(eqo.memo_len(), 2);
        assert_eq!(eqo.counters().memo_invalidations, 1);
    }
}
