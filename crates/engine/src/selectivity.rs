//! Selectivity estimation from catalog statistics.
//!
//! Estimates follow the classical System-R conventions: equality uses the
//! uniform-within-distinct assumption, ranges interpolate within
//! equi-depth histogram buckets, conjunctions assume independence, and
//! equi-joins use `1 / max(ndv_left, ndv_right)`.

use crate::query::{PredicateKind, Query, SelPred};
use colt_catalog::{Database, TableId};

/// Floor applied to every estimate so plans never see a zero cardinality.
pub const MIN_SELECTIVITY: f64 = 1e-9;

/// Estimated fraction of a table's rows satisfying one predicate.
pub fn predicate_selectivity(db: &Database, pred: &SelPred) -> f64 {
    let table = db.table(pred.col.table);
    if table.stats.is_empty() {
        // No statistics: fall back to textbook defaults.
        return match &pred.kind {
            PredicateKind::Eq(_) => 0.005,
            PredicateKind::In(vs) => (0.005 * vs.len() as f64).min(1.0),
            PredicateKind::Range { .. } => 0.25,
        };
    }
    let stats = table.column_stats(pred.col.column);
    let sel = match &pred.kind {
        PredicateKind::Eq(v) => stats.selectivity_eq(v),
        PredicateKind::In(vs) => vs.iter().map(|v| stats.selectivity_eq(v)).sum(),
        PredicateKind::Range { lo, hi } => {
            // The histogram gives closed-open `[lo, hi)` fractions; add
            // back the boundary point for inclusive bounds.
            let mut sel = stats.selectivity_range(
                lo.as_ref().map(|b| &b.value),
                hi.as_ref().map(|b| &b.value),
            );
            if let Some(b) = lo {
                if b.inclusive {
                    sel += stats.selectivity_eq(&b.value);
                }
            }
            if let Some(b) = hi {
                if b.inclusive {
                    sel += stats.selectivity_eq(&b.value);
                }
            }
            sel
        }
    };
    sel.clamp(MIN_SELECTIVITY, 1.0)
}

/// Combined selectivity of all of a query's predicates on one table,
/// under the independence assumption.
pub fn table_selectivity(db: &Database, query: &Query, table: TableId) -> f64 {
    query
        .selections_on(table)
        .map(|p| predicate_selectivity(db, p))
        .product::<f64>()
        .clamp(MIN_SELECTIVITY, 1.0)
}

/// Estimated output cardinality of an equi-join between two inputs of
/// `left_rows` and `right_rows` rows, joining on columns with the given
/// distinct counts.
pub fn join_cardinality(left_rows: f64, right_rows: f64, ndv_left: f64, ndv_right: f64) -> f64 {
    let d = ndv_left.max(ndv_right).max(1.0);
    (left_rows * right_rows / d).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{ColRef, Column, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    fn db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("k", ValueType::Int), Column::new("g", ValueType::Int)],
        ));
        db.insert_rows(t, (0..10_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 100)])));
        db.analyze_all();
        (db, t)
    }

    #[test]
    fn eq_on_unique_column_is_tiny() {
        let (db, t) = db();
        let sel = predicate_selectivity(&db, &SelPred::eq(ColRef::new(t, 0), 5i64));
        assert!((sel - 1e-4).abs() < 1e-6, "got {sel}");
    }

    #[test]
    fn eq_on_grouped_column() {
        let (db, t) = db();
        let sel = predicate_selectivity(&db, &SelPred::eq(ColRef::new(t, 1), 5i64));
        assert!((sel - 0.01).abs() < 1e-6, "got {sel}");
    }

    #[test]
    fn range_selectivity_tracks_width() {
        let (db, t) = db();
        let narrow = predicate_selectivity(&db, &SelPred::between(ColRef::new(t, 0), 0i64, 99i64));
        let wide = predicate_selectivity(&db, &SelPred::between(ColRef::new(t, 0), 0i64, 4999i64));
        assert!((narrow - 0.01).abs() < 0.01, "narrow {narrow}");
        assert!((wide - 0.5).abs() < 0.05, "wide {wide}");
        assert!(narrow < wide);
    }

    #[test]
    fn conjunction_multiplies() {
        let (db, t) = db();
        let q = Query::single(
            t,
            vec![SelPred::between(ColRef::new(t, 0), 0i64, 4999i64), SelPred::eq(ColRef::new(t, 1), 3i64)],
        );
        let sel = table_selectivity(&db, &q, t);
        assert!((sel - 0.5 * 0.01).abs() < 0.002, "got {sel}");
    }

    #[test]
    fn in_selectivity_sums_equalities() {
        let (db, t) = db();
        let sel = predicate_selectivity(
            &db,
            &SelPred::is_in(ColRef::new(t, 1), vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        );
        assert!((sel - 0.03).abs() < 1e-6, "3 of 100 groups: got {sel}");
    }

    #[test]
    fn no_stats_fallback() {
        let mut raw = Database::new();
        let t = raw.add_table(TableSchema::new("u", vec![Column::new("a", ValueType::Int)]));
        let sel = predicate_selectivity(&raw, &SelPred::eq(ColRef::new(t, 0), 1i64));
        assert_eq!(sel, 0.005);
        let sel = predicate_selectivity(&raw, &SelPred::ge(ColRef::new(t, 0), 1i64));
        assert_eq!(sel, 0.25);
    }

    #[test]
    fn join_cardinality_formula() {
        assert_eq!(join_cardinality(1000.0, 100.0, 100.0, 10.0), 1000.0);
        assert_eq!(join_cardinality(10.0, 10.0, 0.0, 0.0), 100.0);
    }

    #[test]
    fn selectivity_never_zero() {
        let (db, t) = db();
        let sel = predicate_selectivity(&db, &SelPred::eq(ColRef::new(t, 0), -999i64));
        assert!(sel >= MIN_SELECTIVITY);
    }
}
