//! Typed execution errors, shared by every operator module.
//!
//! The executor trusts the optimizer for *physical* facts it can check
//! cheaply elsewhere, but hand-built plans are part of the public API,
//! so every structural contradiction a caller can construct by hand
//! surfaces as a typed error instead of a panic: join keys referencing
//! absent tables, column references beyond a table's arity, ragged
//! column batches, and plan nodes that name indexes or composites the
//! physical configuration has not materialized. A panic inside the
//! tuner would kill a whole parallel batch; an `ExecError` propagates
//! to the harness cell that issued the query.

use colt_catalog::{ColRef, TableId};

/// A plan/input mismatch detected during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// A join predicate references a table absent from the operator's
    /// input batch: the plan's join tree does not cover the predicate.
    JoinKeyTableMissing {
        /// Operator that detected the mismatch.
        operator: &'static str,
        /// The table the join key references.
        table: TableId,
    },
    /// A column batch was assembled from columns of unequal length —
    /// the batch boundary check for ragged operator output.
    ColumnArityMismatch {
        /// Operator that detected the mismatch.
        operator: &'static str,
        /// Rows in the batch's first column.
        expected: usize,
        /// Rows in the offending column.
        got: usize,
    },
    /// A predicate, join key, or aggregate references a column beyond
    /// its table's arity (or a table absent from the output layout).
    UnknownColRef {
        /// Operator that detected the mismatch.
        operator: &'static str,
        /// The out-of-range column reference.
        col: ColRef,
    },
    /// The plan scans or probes a single-column index the physical
    /// configuration has not materialized.
    UnmaterializedIndex {
        /// Operator that detected the mismatch.
        operator: &'static str,
        /// The index column the plan names.
        col: ColRef,
    },
    /// The plan scans a composite index the physical configuration has
    /// not materialized.
    UnmaterializedComposite {
        /// Operator that detected the mismatch.
        operator: &'static str,
        /// The composite's owning table.
        table: TableId,
    },
    /// An index or composite scan node carries no predicate of the kind
    /// that justified choosing that access path (equality/range driver).
    MissingDriverPredicate {
        /// Operator that detected the mismatch.
        operator: &'static str,
        /// The column the scan was supposed to be driven by.
        col: ColRef,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::JoinKeyTableMissing { operator, table } => write!(
                f,
                "{operator}: join key references table t{} absent from the input batch",
                table.0
            ),
            ExecError::ColumnArityMismatch { operator, expected, got } => write!(
                f,
                "{operator}: ragged column batch ({got} rows in a column, expected {expected})"
            ),
            ExecError::UnknownColRef { operator, col } => {
                write!(f, "{operator}: column {col} is not part of the operator's input")
            }
            ExecError::UnmaterializedIndex { operator, col } => {
                write!(f, "{operator}: plan uses unmaterialized index {col}")
            }
            ExecError::UnmaterializedComposite { operator, table } => {
                write!(f, "{operator}: plan uses an unmaterialized composite on t{}", table.0)
            }
            ExecError::MissingDriverPredicate { operator, col } => {
                write!(f, "{operator}: scan on {col} has no driving predicate of the planned kind")
            }
        }
    }
}

impl std::error::Error for ExecError {}
